//! Linked medical data as world-set decompositions (§10).
//!
//! Medical knowledge comes with clusters of interdependent facts: a
//! medication is only compatible with some diagnoses, procedures are
//! prescribed for some diseases and forbidden for others.  An incompletely
//! specified patient record therefore describes a *set* of possible worlds in
//! which the interdependent fields (diagnosis, medication) must be chosen
//! jointly while unrelated fields stay independent.  Following the paper's
//! suggestion, interrelated values are wrapped into one WSD component (one
//! component per linked cluster) and everything else into per-field
//! components.

use std::collections::BTreeMap;

use ws_core::{confidence, ops, Component, FieldId, Result, WsError, Wsd};
use ws_relational::{Predicate, RaExpr, Value};

/// The relation name used for patient records.
pub const PATIENT_RELATION: &str = "Patient";

/// The attributes of the patient relation.
pub const PATIENT_ATTRS: [&str; 3] = ["PID", "DIAGNOSIS", "MEDICATION"];

/// A compatibility knowledge base: which medications may be prescribed for
/// which diagnosis.
#[derive(Clone, Debug, Default)]
pub struct MedicalScenario {
    compatibility: BTreeMap<String, Vec<String>>,
}

impl MedicalScenario {
    /// An empty knowledge base.
    pub fn new() -> Self {
        MedicalScenario::default()
    }

    /// A small built-in knowledge base used by the example and the tests.
    pub fn demo() -> Self {
        let mut s = MedicalScenario::new();
        s.add_compatibility("flu", ["oseltamivir", "paracetamol"]);
        s.add_compatibility("migraine", ["ibuprofen", "triptan"]);
        s.add_compatibility("hypertension", ["lisinopril", "amlodipine"]);
        s.add_compatibility("angina", ["nitroglycerin", "amlodipine"]);
        s
    }

    /// Declare (or extend) the medications compatible with a diagnosis.
    pub fn add_compatibility<S: Into<String>>(
        &mut self,
        diagnosis: impl Into<String>,
        medications: impl IntoIterator<Item = S>,
    ) {
        let entry = self.compatibility.entry(diagnosis.into()).or_default();
        for m in medications {
            let m = m.into();
            if !entry.contains(&m) {
                entry.push(m);
            }
        }
    }

    /// The known diagnoses.
    pub fn diagnoses(&self) -> Vec<&str> {
        self.compatibility.keys().map(String::as_str).collect()
    }

    /// The medications compatible with a diagnosis (empty if unknown).
    pub fn compatible_medications(&self, diagnosis: &str) -> &[String] {
        self.compatibility
            .get(diagnosis)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Build the WSD of a set of (possibly incomplete) patient records.
    pub fn build_wsd(&self, patients: &[PatientRecord]) -> Result<Wsd> {
        let mut wsd = Wsd::new();
        wsd.register_relation(PATIENT_RELATION, &PATIENT_ATTRS, patients.len())?;
        for (t, patient) in patients.iter().enumerate() {
            wsd.set_certain(
                FieldId::new(PATIENT_RELATION, t, "PID"),
                Value::int(patient.id),
            )?;
            let pairs = patient.admissible_pairs(self);
            if pairs.is_empty() {
                return Err(WsError::invalid(format!(
                    "patient {} has no admissible (diagnosis, medication) pair",
                    patient.id
                )));
            }
            let mut component = Component::new(vec![
                FieldId::new(PATIENT_RELATION, t, "DIAGNOSIS"),
                FieldId::new(PATIENT_RELATION, t, "MEDICATION"),
            ]);
            let prob = 1.0 / pairs.len() as f64;
            for (diagnosis, medication) in pairs {
                component.push_row(vec![Value::text(diagnosis), Value::text(medication)], prob)?;
            }
            wsd.add_component(component)?;
        }
        wsd.validate()?;
        Ok(wsd)
    }
}

/// An incompletely specified patient record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatientRecord {
    /// Patient identifier.
    pub id: i64,
    /// The candidate diagnoses (empty means "any known diagnosis").
    pub candidate_diagnoses: Vec<String>,
    /// The medication observed on the chart, if any; `None` leaves every
    /// compatible medication possible.
    pub observed_medication: Option<String>,
}

impl PatientRecord {
    /// A record with unrestricted diagnosis and medication.
    pub fn unknown(id: i64) -> Self {
        PatientRecord {
            id,
            candidate_diagnoses: Vec::new(),
            observed_medication: None,
        }
    }

    /// A record with a set of candidate diagnoses.
    pub fn with_candidates<S: Into<String>>(
        id: i64,
        candidates: impl IntoIterator<Item = S>,
    ) -> Self {
        PatientRecord {
            id,
            candidate_diagnoses: candidates.into_iter().map(Into::into).collect(),
            observed_medication: None,
        }
    }

    /// Restrict the record to an observed medication.
    pub fn observed(mut self, medication: impl Into<String>) -> Self {
        self.observed_medication = Some(medication.into());
        self
    }

    /// The (diagnosis, medication) pairs admissible for this record under the
    /// knowledge base: candidate diagnoses × compatible medications, filtered
    /// by the observed medication if present.
    pub fn admissible_pairs(&self, scenario: &MedicalScenario) -> Vec<(String, String)> {
        let diagnoses: Vec<String> = if self.candidate_diagnoses.is_empty() {
            scenario.diagnoses().iter().map(|d| d.to_string()).collect()
        } else {
            self.candidate_diagnoses.clone()
        };
        let mut pairs = Vec::new();
        for d in &diagnoses {
            for m in scenario.compatible_medications(d) {
                if self
                    .observed_medication
                    .as_ref()
                    .map(|obs| obs == m)
                    .unwrap_or(true)
                {
                    pairs.push((d.clone(), m.clone()));
                }
            }
        }
        pairs
    }
}

/// The possible diagnoses of one patient with the probability of each.
pub fn possible_diagnoses(wsd: &Wsd, patient_id: i64) -> Result<Vec<(String, f64)>> {
    answer_column(
        wsd,
        &RaExpr::rel(PATIENT_RELATION)
            .select(Predicate::eq_const("PID", patient_id))
            .project(vec!["DIAGNOSIS"]),
    )
}

/// The medications that may be prescribed (to any patient) for a diagnosis,
/// with the probability that some patient actually receives them for it.
pub fn medications_for(wsd: &Wsd, diagnosis: &str) -> Result<Vec<(String, f64)>> {
    answer_column(
        wsd,
        &RaExpr::rel(PATIENT_RELATION)
            .select(Predicate::eq_const("DIAGNOSIS", diagnosis))
            .project(vec!["MEDICATION"]),
    )
}

fn answer_column(wsd: &Wsd, query: &RaExpr) -> Result<Vec<(String, f64)>> {
    let mut scratch = wsd.clone();
    let out = ops::evaluate_query_fresh(&mut scratch, query, "medical_q")?;
    let mut answers = Vec::new();
    for (tuple, conf) in confidence::possible_with_confidence(&scratch, &out)? {
        let label = tuple
            .get(0)
            .and_then(|v| v.as_text().map(str::to_string))
            .unwrap_or_else(|| tuple.to_string());
        answers.push((label, conf));
    }
    answers.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(answers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knowledge_base_management() {
        let mut s = MedicalScenario::new();
        assert!(s.diagnoses().is_empty());
        s.add_compatibility("flu", ["paracetamol"]);
        s.add_compatibility("flu", ["paracetamol", "oseltamivir"]);
        assert_eq!(s.compatible_medications("flu").len(), 2);
        assert!(s.compatible_medications("unknown").is_empty());
        let demo = MedicalScenario::demo();
        assert_eq!(demo.diagnoses().len(), 4);
    }

    #[test]
    fn compatibility_holds_in_every_world() {
        let scenario = MedicalScenario::demo();
        let patients = vec![
            PatientRecord::with_candidates(1, ["flu", "migraine"]),
            PatientRecord::unknown(2),
            PatientRecord::with_candidates(3, ["hypertension"]).observed("amlodipine"),
        ];
        let wsd = scenario.build_wsd(&patients).unwrap();
        for (world, _) in wsd.enumerate_worlds(1 << 16).unwrap() {
            let rel = world.relation(PATIENT_RELATION).unwrap();
            assert_eq!(rel.len(), 3);
            for row in rel.rows() {
                let diagnosis = row[1].as_text().unwrap();
                let medication = row[2].as_text().unwrap().to_string();
                assert!(
                    scenario
                        .compatible_medications(diagnosis)
                        .contains(&medication),
                    "world contains incompatible pair ({diagnosis}, {medication})"
                );
            }
        }
    }

    #[test]
    fn possible_diagnoses_reflect_candidates_and_observations() {
        let scenario = MedicalScenario::demo();
        let patients = vec![
            PatientRecord::with_candidates(1, ["flu", "migraine"]),
            // amlodipine is compatible with hypertension and angina only.
            PatientRecord::unknown(2).observed("amlodipine"),
        ];
        let wsd = scenario.build_wsd(&patients).unwrap();

        let p1 = possible_diagnoses(&wsd, 1).unwrap();
        let labels: Vec<&str> = p1.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"flu") && labels.contains(&"migraine"));
        let total: f64 = p1.iter().map(|(_, c)| c).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "diagnoses of one patient are exclusive"
        );

        let p2 = possible_diagnoses(&wsd, 2).unwrap();
        let labels: Vec<&str> = p2.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"hypertension") && labels.contains(&"angina"));

        // Medication query: flu patients can only get flu medication.
        let meds = medications_for(&wsd, "flu").unwrap();
        assert!(meds
            .iter()
            .all(|(m, _)| m == "oseltamivir" || m == "paracetamol"));
    }

    #[test]
    fn certain_records_stay_certain() {
        let scenario = MedicalScenario::demo();
        let patients = vec![PatientRecord::with_candidates(7, ["flu"]).observed("paracetamol")];
        let wsd = scenario.build_wsd(&patients).unwrap();
        assert_eq!(wsd.world_count(), 1);
        let diagnoses = possible_diagnoses(&wsd, 7).unwrap();
        assert_eq!(diagnoses, vec![("flu".to_string(), 1.0)]);
    }

    #[test]
    fn impossible_records_are_rejected() {
        let scenario = MedicalScenario::demo();
        // Observed medication incompatible with every candidate diagnosis.
        let patients = vec![PatientRecord::with_candidates(9, ["flu"]).observed("triptan")];
        assert!(scenario.build_wsd(&patients).is_err());
        // Unknown diagnosis with no compatible medication.
        let patients = vec![PatientRecord::with_candidates(9, ["scurvy"])];
        assert!(scenario.build_wsd(&patients).is_err());
    }
}
