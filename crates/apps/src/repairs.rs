//! Minimal repairs of inconsistent databases as world-sets (§10).
//!
//! A database violating a key or functional dependency admits a set of
//! *minimal repairs*: consistent instances obtained by deleting a minimal set
//! of tuples.  The number of repairs is exponential in the number of conflict
//! clusters, but the repairs overlap almost everywhere — exactly the data
//! pattern WSDs are designed for.  This module materializes the repair
//! world-set as a WSD:
//!
//! * every tuple outside a conflict is stored in certain (one-row)
//!   components,
//! * every conflict cluster becomes one component whose local worlds are the
//!   possible resolutions (keep one agreeing subgroup, mark the rest `⊥`).
//!
//! Consistent query answering (the certain answers of \[10\]) then reduces to
//! certain-tuple computation, while — unlike certain-answer-only systems —
//! the full repair set remains available for further querying and cleaning.

use std::collections::BTreeMap;

use ws_core::{confidence, ops, Component, FieldId, Result, WsError, Wsd};
use ws_relational::{RaExpr, Relation, Tuple, Value};

/// Summary of a repair construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairReport {
    /// Tuples that participate in no conflict.
    pub clean_tuples: usize,
    /// Number of conflict clusters (violating determinant groups).
    pub conflict_clusters: usize,
    /// Tuples involved in some conflict.
    pub conflicting_tuples: usize,
    /// Number of minimal repairs (possible worlds), saturating.
    pub repair_count: u128,
}

/// Build the WSD of all minimal repairs of `relation` under the functional
/// dependency `lhs → rhs`.
///
/// Within each group of tuples agreeing on `lhs`, the tuples are partitioned
/// by their `rhs` values; a minimal repair keeps exactly one of those
/// subgroups (deleting fewer tuples cannot restore consistency, deleting more
/// is not minimal).  Groups with a single subgroup are conflict-free.
pub fn repair_fd_violations(
    relation: &Relation,
    lhs: &[&str],
    rhs: &[&str],
) -> Result<(Wsd, RepairReport)> {
    if lhs.is_empty() || rhs.is_empty() {
        return Err(WsError::invalid(
            "a functional dependency needs non-empty determinant and dependent attribute lists",
        ));
    }
    let schema = relation.schema();
    let name = schema.relation().to_string();
    let attrs: Vec<&str> = schema.attrs().iter().map(|a| a.as_ref()).collect();
    let lhs_pos: Vec<usize> = lhs
        .iter()
        .map(|a| schema.position_of(a).map_err(WsError::from))
        .collect::<Result<_>>()?;
    let rhs_pos: Vec<usize> = rhs
        .iter()
        .map(|a| schema.position_of(a).map_err(WsError::from))
        .collect::<Result<_>>()?;

    // Group tuple indices by determinant value, then split by dependent value.
    let mut groups: BTreeMap<Vec<Value>, BTreeMap<Vec<Value>, Vec<usize>>> = BTreeMap::new();
    for (i, row) in relation.rows().iter().enumerate() {
        let key: Vec<Value> = lhs_pos.iter().map(|&p| row[p].clone()).collect();
        let dependent: Vec<Value> = rhs_pos.iter().map(|&p| row[p].clone()).collect();
        groups
            .entry(key)
            .or_default()
            .entry(dependent)
            .or_default()
            .push(i);
    }

    let mut wsd = Wsd::new();
    wsd.register_relation(&name, &attrs, relation.len())?;

    let mut report = RepairReport {
        clean_tuples: 0,
        conflict_clusters: 0,
        conflicting_tuples: 0,
        repair_count: 1,
    };

    for subgroups in groups.values() {
        if subgroups.len() == 1 {
            // No conflict: every tuple of this group is certain.
            for &t in subgroups.values().next().expect("non-empty group") {
                report.clean_tuples += 1;
                for (a, attr) in attrs.iter().enumerate() {
                    wsd.set_certain(FieldId::new(&name, t, attr), relation.rows()[t][a].clone())?;
                }
            }
            continue;
        }

        // Conflict cluster: one component spanning every field of every tuple
        // in the cluster; one local world per surviving subgroup.
        let cluster_tuples: Vec<usize> = subgroups.values().flatten().copied().collect();
        report.conflict_clusters += 1;
        report.conflicting_tuples += cluster_tuples.len();
        report.repair_count = report.repair_count.saturating_mul(subgroups.len() as u128);

        let mut fields = Vec::with_capacity(cluster_tuples.len() * attrs.len());
        for &t in &cluster_tuples {
            for attr in &attrs {
                fields.push(FieldId::new(&name, t, attr));
            }
        }
        let mut component = Component::new(fields);
        let prob = 1.0 / subgroups.len() as f64;
        for kept in subgroups.values() {
            let mut values = Vec::with_capacity(cluster_tuples.len() * attrs.len());
            for &t in &cluster_tuples {
                let keep = kept.contains(&t);
                for (a, _) in attrs.iter().enumerate() {
                    values.push(if keep {
                        relation.rows()[t][a].clone()
                    } else {
                        Value::Bottom
                    });
                }
            }
            component.push_row(values, prob)?;
        }
        wsd.add_component(component)?;
    }

    wsd.validate()?;
    Ok((wsd, report))
}

/// Build the WSD of all minimal repairs of `relation` under a key constraint:
/// `key → all other attributes`.
pub fn repair_key_violations(relation: &Relation, key: &[&str]) -> Result<(Wsd, RepairReport)> {
    let non_key: Vec<&str> = relation
        .schema()
        .attrs()
        .iter()
        .map(|a| a.as_ref())
        .filter(|a| !key.contains(a))
        .collect();
    if non_key.is_empty() {
        return Err(WsError::invalid(
            "key covers every attribute; duplicates under a full key are not repairable by deletion",
        ));
    }
    repair_fd_violations(relation, key, &non_key)
}

/// The *consistent answers* of a query over the repair world-set: the tuples
/// contained in the answer of every repair (certain tuples).
pub fn consistent_answers(repairs: &Wsd, query: &RaExpr) -> Result<Relation> {
    let mut scratch = repairs.clone();
    let out = ops::evaluate_query_fresh(&mut scratch, query, "repair_q")?;
    let mut result = confidence::possible(&scratch, &out)?;
    let certain: Vec<Tuple> = confidence::possible_with_confidence(&scratch, &out)?
        .into_iter()
        .filter(|(_, c)| *c >= 1.0 - 1e-9)
        .map(|(t, _)| t)
        .collect();
    result.retain(|t| certain.contains(t));
    Ok(result)
}

/// The *possible answers* of a query over the repair world-set: the tuples
/// contained in the answer of at least one repair.
pub fn possible_answers(repairs: &Wsd, query: &RaExpr) -> Result<Relation> {
    let mut scratch = repairs.clone();
    let out = ops::evaluate_query_fresh(&mut scratch, query, "repair_q")?;
    confidence::possible(&scratch, &out)
}

/// The possible answers annotated with the fraction of repairs containing
/// them (a useful ranking signal the certain-answer systems cannot provide).
pub fn answers_with_support(repairs: &Wsd, query: &RaExpr) -> Result<Vec<(Tuple, f64)>> {
    let mut scratch = repairs.clone();
    let out = ops::evaluate_query_fresh(&mut scratch, query, "repair_q")?;
    confidence::possible_with_confidence(&scratch, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_relational::{Predicate, Schema};

    /// An employee relation with two key violations on EMP.
    fn dirty_employees() -> Relation {
        let schema = Schema::new("Emp", &["EMP", "DEPT", "SALARY"]).unwrap();
        let mut rel = Relation::new(schema);
        // Conflict cluster 1: alice appears with two departments.
        rel.push_values([Value::text("alice"), Value::text("sales"), Value::int(10)])
            .unwrap();
        rel.push_values([Value::text("alice"), Value::text("eng"), Value::int(10)])
            .unwrap();
        // Conflict cluster 2: bob appears with three salaries.
        rel.push_values([Value::text("bob"), Value::text("eng"), Value::int(20)])
            .unwrap();
        rel.push_values([Value::text("bob"), Value::text("eng"), Value::int(30)])
            .unwrap();
        rel.push_values([Value::text("bob"), Value::text("eng"), Value::int(40)])
            .unwrap();
        // Clean tuple.
        rel.push_values([Value::text("carol"), Value::text("hr"), Value::int(50)])
            .unwrap();
        rel
    }

    #[test]
    fn repair_counts_and_report() {
        let rel = dirty_employees();
        let (wsd, report) = repair_key_violations(&rel, &["EMP"]).unwrap();
        assert_eq!(report.clean_tuples, 1);
        assert_eq!(report.conflict_clusters, 2);
        assert_eq!(report.conflicting_tuples, 5);
        assert_eq!(report.repair_count, 6); // 2 × 3
        assert_eq!(wsd.world_count(), 6);

        // Every repair satisfies the key and keeps carol.
        for (world, _) in wsd.enumerate_worlds(100).unwrap() {
            let emp = world.relation("Emp").unwrap();
            assert_eq!(emp.len(), 3, "one tuple per employee in every repair");
            let mut keys: Vec<Value> = emp.rows().iter().map(|r| r[0].clone()).collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), 3, "keys are unique in every repair");
        }
    }

    #[test]
    fn consistent_and_possible_answers_match_the_repair_semantics() {
        let rel = dirty_employees();
        let (wsd, _) = repair_key_violations(&rel, &["EMP"]).unwrap();
        let query = RaExpr::rel("Emp").project(vec!["EMP"]);
        // Every repair keeps one tuple per employee, so all three names are
        // consistent answers.
        let consistent = consistent_answers(&wsd, &query).unwrap();
        assert_eq!(consistent.len(), 3);

        // Department of alice: "sales" and "eng" are possible but not
        // consistent answers.
        let dept_query = RaExpr::rel("Emp")
            .select(Predicate::eq_const("EMP", "alice"))
            .project(vec!["DEPT"]);
        let consistent = consistent_answers(&wsd, &dept_query).unwrap();
        assert!(consistent.is_empty());
        let possible = possible_answers(&wsd, &dept_query).unwrap();
        assert_eq!(possible.len(), 2);
        let support = answers_with_support(&wsd, &dept_query).unwrap();
        assert_eq!(support.len(), 2);
        for (_, share) in support {
            assert!(
                (share - 0.5).abs() < 1e-9,
                "both repairs are equally likely"
            );
        }
    }

    #[test]
    fn oracle_check_against_explicit_repair_enumeration() {
        let rel = dirty_employees();
        let (wsd, _) = repair_key_violations(&rel, &["EMP"]).unwrap();
        let query = RaExpr::rel("Emp")
            .select(Predicate::eq_const("DEPT", "eng"))
            .project(vec!["EMP"]);
        let consistent = consistent_answers(&wsd, &query).unwrap();
        let possible = possible_answers(&wsd, &query).unwrap();

        // Oracle: evaluate in every repair explicitly.
        let repairs = wsd.enumerate_worlds(100).unwrap();
        let answers: Vec<_> = repairs
            .iter()
            .map(|(db, _)| ws_relational::evaluate_set(db, &query).unwrap())
            .collect();
        for tuple in possible.rows() {
            assert!(answers.iter().any(|a| a.contains(tuple)));
        }
        for tuple in consistent.rows() {
            assert!(answers.iter().all(|a| a.contains(tuple)));
        }
        // bob is always an eng employee; alice only in half the repairs.
        assert!(consistent.contains(&Tuple::from_iter([Value::text("bob")])));
        assert!(!consistent.contains(&Tuple::from_iter([Value::text("alice")])));
        assert!(possible.contains(&Tuple::from_iter([Value::text("alice")])));
    }

    #[test]
    fn fd_repairs_group_by_dependent_values() {
        // DEPT → LOCATION with two conflicting locations for eng.
        let schema = Schema::new("Dept", &["DEPT", "LOCATION"]).unwrap();
        let mut rel = Relation::new(schema);
        rel.push_values([Value::text("eng"), Value::text("vienna")])
            .unwrap();
        rel.push_values([Value::text("eng"), Value::text("vienna")])
            .unwrap();
        rel.push_values([Value::text("eng"), Value::text("oxford")])
            .unwrap();
        rel.push_values([Value::text("hr"), Value::text("ithaca")])
            .unwrap();
        let (wsd, report) = repair_fd_violations(&rel, &["DEPT"], &["LOCATION"]).unwrap();
        assert_eq!(report.repair_count, 2);
        assert_eq!(report.clean_tuples, 1);
        // One repair keeps the vienna location for eng, the other oxford;
        // both keep the clean hr tuple (worlds are sets, so the duplicate
        // vienna tuple collapses into one).
        let worlds = wsd.enumerate_worlds(10).unwrap();
        assert_eq!(worlds.len(), 2);
        let eng_location = |db: &ws_relational::Database| {
            db.relation("Dept")
                .unwrap()
                .rows()
                .iter()
                .find(|r| r[0] == Value::text("eng"))
                .map(|r| r[1].clone())
                .unwrap()
        };
        let mut locations: Vec<Value> = worlds.iter().map(|(db, _)| eng_location(db)).collect();
        locations.sort();
        assert_eq!(
            locations,
            vec![Value::text("oxford"), Value::text("vienna")]
        );
        for (db, _) in &worlds {
            assert!(db.relation("Dept").unwrap().contains(&Tuple::from_iter([
                Value::text("hr"),
                Value::text("ithaca")
            ])));
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let rel = dirty_employees();
        assert!(repair_fd_violations(&rel, &[], &["DEPT"]).is_err());
        assert!(repair_fd_violations(&rel, &["EMP"], &[]).is_err());
        assert!(repair_key_violations(&rel, &["EMP", "DEPT", "SALARY"]).is_err());
        assert!(repair_key_violations(&rel, &["NOPE"]).is_err());
    }
}
