//! # ws-apps — application scenarios built on world-set decompositions (§10)
//!
//! The paper closes with two application patterns beyond the census workload:
//!
//! * [`repairs`] — *inconsistent databases*: the minimal repairs of a
//!   relation violating a key (or more generally a functional dependency)
//!   form a finite world-set that WSDs represent compactly; consistent query
//!   answering becomes certain-tuple computation and, unlike the
//!   certain-answers-only systems the paper compares against, the full set of
//!   repairs remains available for further querying and cleaning.
//! * [`medical`] — *linked medical data*: clusters of interdependent facts
//!   (drug interactions, contraindications) map to shared components, while
//!   independent facts stay in separate components.

pub mod medical;
pub mod repairs;

pub use medical::{MedicalScenario, PatientRecord};
pub use repairs::{consistent_answers, possible_answers, repair_key_violations, RepairReport};
