//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset used by the workspace's micro-benchmarks:
//! [`Criterion::benchmark_group`], group tuning knobs (`sample_size`,
//! `warm_up_time`, `measurement_time`), [`BenchmarkGroup::bench_with_input`]
//! / [`BenchmarkGroup::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark for a
//! fixed number of samples and prints the mean wall-clock time per
//! iteration — enough to eyeball regressions in an offline environment.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("# group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }
}

/// Identifier `function_name/parameter` for one benchmark in a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of samples measured per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim measures a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a routine that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Benchmark a routine with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        self.report(&id.id, &bencher);
        self
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let mean = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.total / bencher.iterations as u32
        };
        println!(
            "{}/{}: mean {:?} over {} iterations",
            self.name, id, mean, bencher.iterations
        );
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark routines.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measure `f`, running it once per configured sample.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let value = f();
            self.total += start.elapsed();
            self.iterations += 1;
            drop(value);
        }
    }
}

/// Prevent the optimizer from eliding a value (API-compat no-op wrapper).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into one runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, n| {
            b.iter(|| black_box(n * n))
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_main_macros_compile_and_run() {
        benches();
    }
}
