//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset used by the repository's property tests: the
//! [`Strategy`] trait with `prop_map`, integer-range and tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], [`ProptestConfig`], and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! generated input's `Debug` representation.  Generation is deterministic
//! (fixed seed per test function), so failures reproduce across runs.

use rand::prelude::*;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

/// The `PROPTEST_CASES` environment variable, if set to a positive number —
/// the same knob real proptest reads.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.  `PROPTEST_CASES` raises
    /// (never lowers) the pinned count, so the nightly CI job can deepen
    /// every property test without touching the sources while quick local
    /// runs keep their fast defaults.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().map_or(cases, |env| env.max(cases)),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

/// Deterministic generation source handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// A deterministic RNG; `salt` separates the streams of different tests.
    pub fn deterministic(salt: u64) -> Self {
        TestRng(StdRng::seed_from_u64(0x5EED ^ salt))
    }
}

/// A value generator (API subset of proptest's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i64, i32, u64, u32, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Sizes accepted by the collection strategies: an exact length, `a..b`, or
/// `a..=b`.
pub trait IntoSizeRange {
    /// Lower and upper bound (inclusive) of the collection size.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A vector with a size drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of `element` values.
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A set with a size drawn from `size`; generation retries duplicates a
    /// bounded number of times, so the requested minimum must be reachable
    /// within the element strategy's support.
    pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.0.gen_range(self.min..=self.max);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.min,
                "btree_set strategy could not reach the minimum size {} (support too small?)",
                self.min
            );
            out
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Run `cases` deterministic cases of one property.
pub fn run_property<S: Strategy, F: FnMut(S::Value)>(
    config: &ProptestConfig,
    salt: u64,
    strategy: &S,
    mut body: F,
) {
    let mut rng = TestRng::deterministic(salt);
    for _ in 0..config.cases {
        body(strategy.generate(&mut rng));
    }
}

/// A cheap deterministic hash used to give every test its own RNG stream.
pub fn salt_of(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// The `proptest!` macro: an optional `#![proptest_config(...)]` attribute
/// followed by `#[test] fn name(binding in strategy) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( #[test] fn $name:ident($arg:ident in $strategy:expr) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = $strategy;
                $crate::run_property(
                    &config,
                    $crate::salt_of(stringify!($name)),
                    &strategy,
                    |$arg| $body,
                );
            }
        )*
    };
}

/// `prop_assert!`: assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!`: assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(i64, i64)>> {
        crate::collection::vec((0i64..5, 0i64..5), 0..6)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_values_respect_bounds(rows in pairs()) {
            prop_assert!(rows.len() < 6);
            for (a, b) in rows {
                prop_assert!((0..5).contains(&a), "a = {a}");
                prop_assert!((0..5).contains(&b));
            }
        }

        #[test]
        fn sets_respect_sizes(s in crate::collection::btree_set(0i64..4, 1..=3)) {
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in (0i64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn case_counts_are_floors_under_the_env_knob() {
        // PROPTEST_CASES may or may not be set in this process; either way
        // the pinned count is a floor and the default stays positive.
        assert!(ProptestConfig::with_cases(16).cases >= 16);
        assert!(ProptestConfig::default().cases >= 1);
    }
}
