//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the small API subset the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — statistically fine for test-data generation
//! and benchmarking, deterministic for a given seed, and *not* a
//! cryptographic RNG.  Streams differ from the real `rand` crate's, which is
//! acceptable because all in-repo consumers only rely on determinism, not on
//! specific sequences.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructors (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i64, i32, u64, u32, usize);

/// Extension methods on any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of an inferred type (only `f64`/`u64` are supported).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64), stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Warm up so that small seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_and_ranges() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9i64);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bools_and_shuffles_cover_both_outcomes() {
        let mut rng = StdRng::seed_from_u64(2);
        let flips: Vec<bool> = (0..200).map(|_| rng.gen_bool(0.5)).collect();
        assert!(flips.iter().any(|b| *b) && flips.iter().any(|b| !*b));
        let mut items: Vec<u32> = (0..10).collect();
        let original = items.clone();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(items.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
