//! The twelve equality-generating dependencies of Figure 25.
//!
//! These are real-life constraints on the census data: e.g. citizens born in
//! the USA are not immigrants (1), and citizens who served in the second
//! world war must have done their military service (5).

use crate::schema::RELATION_NAME;
use ws_core::chase::{Dependency, EqualityGeneratingDependency};
use ws_relational::CmpOp;

/// The 12 dependencies of Figure 25, in the paper's order.
pub fn census_dependencies() -> Vec<Dependency> {
    census_egds().into_iter().map(Dependency::Egd).collect()
}

/// The same dependencies as plain EGDs.
pub fn census_egds() -> Vec<EqualityGeneratingDependency> {
    let r = RELATION_NAME;
    vec![
        // 1: CITIZEN = 0 ⇒ IMMIGR = 0
        EqualityGeneratingDependency::implies(r, "CITIZEN", 0i64, "IMMIGR", CmpOp::Eq, 0i64),
        // 2: FEB55 = 1 ⇒ MILITARY ≠ 4
        EqualityGeneratingDependency::implies(r, "FEB55", 1i64, "MILITARY", CmpOp::Ne, 4i64),
        // 3: KOREAN = 1 ⇒ MILITARY ≠ 4
        EqualityGeneratingDependency::implies(r, "KOREAN", 1i64, "MILITARY", CmpOp::Ne, 4i64),
        // 4: VIETNAM = 1 ⇒ MILITARY ≠ 4
        EqualityGeneratingDependency::implies(r, "VIETNAM", 1i64, "MILITARY", CmpOp::Ne, 4i64),
        // 5: WWII = 1 ⇒ MILITARY ≠ 4
        EqualityGeneratingDependency::implies(r, "WWII", 1i64, "MILITARY", CmpOp::Ne, 4i64),
        // 6: MARITAL = 0 ⇒ RSPOUSE ≠ 6
        EqualityGeneratingDependency::implies(r, "MARITAL", 0i64, "RSPOUSE", CmpOp::Ne, 6i64),
        // 7: MARITAL = 0 ⇒ RSPOUSE ≠ 5
        EqualityGeneratingDependency::implies(r, "MARITAL", 0i64, "RSPOUSE", CmpOp::Ne, 5i64),
        // 8: LANG1 = 2 ⇒ ENGLISH ≠ 4
        EqualityGeneratingDependency::implies(r, "LANG1", 2i64, "ENGLISH", CmpOp::Ne, 4i64),
        // 9: RPOB = 52 ⇒ CITIZEN ≠ 0
        EqualityGeneratingDependency::implies(r, "RPOB", 52i64, "CITIZEN", CmpOp::Ne, 0i64),
        // 10: SCHOOL = 0 ⇒ KOREAN ≠ 1
        EqualityGeneratingDependency::implies(r, "SCHOOL", 0i64, "KOREAN", CmpOp::Ne, 1i64),
        // 11: SCHOOL = 0 ⇒ FEB55 ≠ 1
        EqualityGeneratingDependency::implies(r, "SCHOOL", 0i64, "FEB55", CmpOp::Ne, 1i64),
        // 12: SCHOOL = 0 ⇒ WWII ≠ 1
        EqualityGeneratingDependency::implies(r, "SCHOOL", 0i64, "WWII", CmpOp::Ne, 1i64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attribute;

    #[test]
    fn twelve_dependencies_over_known_attributes() {
        let deps = census_egds();
        assert_eq!(deps.len(), 12);
        for egd in &deps {
            assert_eq!(egd.relation, RELATION_NAME);
            for attr in egd.attrs() {
                assert!(attribute(attr).is_some(), "unknown attribute {attr}");
            }
        }
        assert_eq!(census_dependencies().len(), 12);
    }

    #[test]
    fn first_dependency_is_the_citizen_immigration_rule() {
        let deps = census_egds();
        let shown = deps[0].to_string();
        assert!(shown.contains("CITIZEN=0"));
        assert!(shown.contains("IMMIGR=0"));
        // Dependency 5 is the WWII rule the paper spells out.
        let shown = deps[4].to_string();
        assert!(shown.contains("WWII=1"));
        assert!(shown.contains("MILITARY!=4"));
    }
}
