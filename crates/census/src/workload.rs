//! End-to-end census workload helpers used by examples, integration tests and
//! the benchmark harness: generate the base data, inject or-set noise, load
//! the UWSDT and clean it with the chase of Figure 25's dependencies.

use crate::dependencies::census_dependencies;
use crate::generate::generate_census;
use crate::noise::add_noise;
use crate::schema::RELATION_NAME;
use ws_relational::{Database, Relation};
use ws_uwsdt::{from_or_relation, OrField, Result, Uwsdt};

/// Parameters of one census scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CensusScenario {
    /// Number of tuples of the census relation.
    pub tuples: usize,
    /// Fraction of fields replaced by or-sets (e.g. `0.001` for 0.1%).
    pub density: f64,
    /// RNG seed (data and noise are both derived from it).
    pub seed: u64,
}

impl CensusScenario {
    /// A new scenario.
    pub fn new(tuples: usize, density: f64, seed: u64) -> Self {
        CensusScenario {
            tuples,
            density,
            seed,
        }
    }

    /// The clean base relation of the scenario.
    pub fn base_relation(&self) -> Relation {
        generate_census(self.tuples, self.seed)
    }

    /// The base relation wrapped in a single-world database (the 0% density
    /// baseline of Figure 30).
    pub fn one_world(&self) -> Database {
        let mut db = Database::new();
        db.insert_relation(self.base_relation());
        db
    }

    /// The or-set noise of the scenario.
    pub fn noise(&self) -> Vec<OrField> {
        add_noise(
            &self.base_relation(),
            self.density,
            self.seed.wrapping_add(1),
        )
    }

    /// The *uncleaned* UWSDT: base data plus independent or-set placeholders.
    pub fn dirty_uwsdt(&self) -> Result<Uwsdt> {
        let base = self.base_relation();
        let noise = add_noise(&base, self.density, self.seed.wrapping_add(1));
        from_or_relation(&base, &noise)
    }

    /// The *uncleaned* WSD view of the same data: every field certain except
    /// the or-set noise, which becomes one single-field component each.
    pub fn dirty_wsd(&self) -> ws_core::Result<ws_core::Wsd> {
        let base = self.base_relation();
        let noise = self.noise();
        let uncertain: std::collections::BTreeMap<(usize, &str), &OrField> = noise
            .iter()
            .map(|f| ((f.tuple, f.attr.as_str()), f))
            .collect();
        let attrs: Vec<&str> = base.schema().attrs().iter().map(|a| a.as_ref()).collect();
        let mut wsd = ws_core::Wsd::new();
        wsd.register_relation(RELATION_NAME, &attrs, base.len())?;
        for (t, row) in base.rows().iter().enumerate() {
            for (i, attr) in attrs.iter().enumerate() {
                let field = ws_core::FieldId::new(RELATION_NAME, t, *attr);
                match uncertain.get(&(t, *attr)) {
                    Some(or_field) => wsd.set_alternatives(field, or_field.alternatives.clone())?,
                    None => wsd.set_certain(field, row[i].clone())?,
                }
            }
        }
        Ok(wsd)
    }

    /// The cleaned UWSDT: the dirty UWSDT after chasing the 12 dependencies
    /// of Figure 25.
    pub fn chased_uwsdt(&self) -> Result<Uwsdt> {
        let mut uwsdt = self.dirty_uwsdt()?;
        ws_uwsdt::chase::chase(&mut uwsdt, &census_dependencies())?;
        Ok(uwsdt)
    }

    /// Number of fields in the relation (tuples × attributes).
    pub fn total_fields(&self) -> usize {
        self.tuples * crate::schema::ATTRIBUTE_COUNT
    }
}

/// The name of the census relation (re-exported for convenience).
pub fn relation_name() -> &'static str {
    RELATION_NAME
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_uwsdt::stats_for;

    #[test]
    fn dirty_and_chased_uwsdts_are_well_formed() {
        let scenario = CensusScenario::new(400, 0.002, 99);
        let dirty = scenario.dirty_uwsdt().unwrap();
        dirty.validate().unwrap();
        let dirty_stats = stats_for(&dirty, RELATION_NAME).unwrap();
        assert_eq!(dirty_stats.template_rows, 400);
        assert_eq!(dirty_stats.placeholders, scenario.noise().len());
        assert_eq!(dirty_stats.components, dirty_stats.placeholders);
        assert_eq!(dirty_stats.components_multi, 0);

        let chased = scenario.chased_uwsdt().unwrap();
        chased.validate().unwrap();
        let chased_stats = stats_for(&chased, RELATION_NAME).unwrap();
        // Chasing never adds placeholders; it may merge components and drop
        // local worlds, so |C| can only shrink.
        assert_eq!(chased_stats.placeholders, dirty_stats.placeholders);
        assert!(chased_stats.components <= dirty_stats.components);
        assert!(chased_stats.c_size <= dirty_stats.c_size);
        assert_eq!(chased_stats.template_rows, 400);
    }

    #[test]
    fn chased_worlds_satisfy_the_dependencies() {
        // Small enough that the worlds can be enumerated.
        let scenario = CensusScenario::new(40, 0.002, 3);
        let chased = scenario.chased_uwsdt().unwrap();
        let worlds = chased.enumerate_worlds(100_000).unwrap();
        assert!(!worlds.is_empty());
        for (db, _) in worlds {
            let rel = db.relation(RELATION_NAME).unwrap();
            assert!(crate::generate::satisfies_dependencies(rel));
        }
    }

    #[test]
    fn scenario_helpers_are_consistent() {
        let scenario = CensusScenario::new(100, 0.001, 5);
        assert_eq!(scenario.total_fields(), 5000);
        assert_eq!(scenario.noise().len(), 5);
        assert_eq!(scenario.base_relation().len(), 100);
        assert_eq!(
            scenario.one_world().relation(RELATION_NAME).unwrap().len(),
            100
        );
        assert_eq!(relation_name(), "R");
    }
}
