//! Or-set noise injection (§9, "Adding Incompleteness").
//!
//! The paper replaces a fraction (the *density*: 0.005%–0.1%) of the census
//! fields by or-sets whose size is drawn uniformly from
//! `[2, min(8, domain_size)]` (measured average ≈ 3.5 values per or-set).
//! The original value is always among the alternatives, so the uncertain
//! database still contains the original clean world.

use crate::schema::ATTRIBUTES;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ws_relational::{Relation, Value};
use ws_uwsdt::OrField;

/// The maximum or-set size used by the paper.
pub const MAX_OR_SET_SIZE: i64 = 8;

/// Replace `density` of the fields of `base` by or-sets.
///
/// `density` is a fraction of the total number of fields (e.g. `0.001` for
/// the paper's "0.1%" scenario).  Returns the noisy fields in a deterministic
/// (seeded) order; the base relation itself is not modified.
pub fn add_noise(base: &Relation, density: f64, seed: u64) -> Vec<OrField> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = base.len();
    let attrs = base.schema().arity();
    let total_fields = tuples * attrs;
    let noisy_fields = ((total_fields as f64) * density).round() as usize;
    if noisy_fields == 0 || total_fields == 0 {
        return Vec::new();
    }
    // Choose distinct field positions.
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < noisy_fields.min(total_fields) {
        let t = rng.gen_range(0..tuples);
        let a = rng.gen_range(0..attrs);
        chosen.insert((t, a));
    }
    let mut out = Vec::with_capacity(chosen.len());
    for (t, a) in chosen {
        let attr = &ATTRIBUTES[a];
        let original = base.rows()[t][a]
            .as_int()
            .expect("census fields are integer-coded");
        let max_size = MAX_OR_SET_SIZE.min(attr.domain_size) as usize;
        let size = rng.gen_range(2..=max_size.max(2));
        // Alternatives: the original value plus distinct random other codes.
        let mut others: Vec<i64> = attr.domain().filter(|v| *v != original).collect();
        others.shuffle(&mut rng);
        let mut values: Vec<Value> = vec![Value::Int(original)];
        values.extend(others.into_iter().take(size - 1).map(Value::Int));
        out.push(OrField::uniform(t, attr.name, values));
    }
    out
}

/// The density scenarios of the paper's evaluation, as fractions.
pub const PAPER_DENSITIES: [f64; 4] = [0.00005, 0.0001, 0.0005, 0.001];

/// Human-readable labels for [`PAPER_DENSITIES`] ("0.005%" … "0.1%").
pub const PAPER_DENSITY_LABELS: [&str; 4] = ["0.005%", "0.01%", "0.05%", "0.1%"];

/// Average or-set size of a noise set (the paper reports ≈ 3.5).
pub fn average_or_set_size(noise: &[OrField]) -> f64 {
    if noise.is_empty() {
        return 0.0;
    }
    noise.iter().map(|f| f.alternatives.len()).sum::<usize>() as f64 / noise.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_census;

    #[test]
    fn noise_volume_matches_the_density() {
        let base = generate_census(1000, 1);
        let noise = add_noise(&base, 0.001, 2);
        // 1000 tuples × 50 attributes × 0.1% = 50 noisy fields.
        assert_eq!(noise.len(), 50);
        let sparse = add_noise(&base, 0.00005, 2);
        assert_eq!(sparse.len(), 3); // rounded from 2.5
        assert!(add_noise(&base, 0.0, 2).is_empty());
    }

    #[test]
    fn noise_is_seeded_and_distinct() {
        let base = generate_census(500, 1);
        let a = add_noise(&base, 0.001, 7);
        let b = add_noise(&base, 0.001, 7);
        let c = add_noise(&base, 0.001, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut positions: Vec<(usize, String)> =
            a.iter().map(|f| (f.tuple, f.attr.clone())).collect();
        positions.sort();
        positions.dedup();
        assert_eq!(positions.len(), a.len());
    }

    #[test]
    fn or_sets_contain_the_original_value_and_respect_domains() {
        let base = generate_census(400, 3);
        let noise = add_noise(&base, 0.002, 4);
        assert!(!noise.is_empty());
        for field in &noise {
            let pos = base.schema().position(&field.attr).unwrap();
            let original = &base.rows()[field.tuple][pos];
            let values: Vec<&Value> = field.alternatives.iter().map(|(v, _)| v).collect();
            assert!(values.contains(&original));
            let domain = crate::schema::domain_size(&field.attr);
            assert!(field.alternatives.len() >= 2);
            assert!(field.alternatives.len() as i64 <= MAX_OR_SET_SIZE.min(domain));
            for (v, p) in &field.alternatives {
                assert!((0..domain).contains(&v.as_int().unwrap()));
                assert!(*p > 0.0 && *p <= 0.5 + 1e-9);
            }
            // Distinct alternatives.
            let mut distinct = values.clone();
            distinct.sort();
            distinct.dedup();
            assert_eq!(distinct.len(), field.alternatives.len());
        }
        let avg = average_or_set_size(&noise);
        assert!((2.0..=8.0).contains(&avg));
        assert_eq!(average_or_set_size(&[]), 0.0);
    }

    #[test]
    fn paper_densities_are_consistent_with_labels() {
        assert_eq!(PAPER_DENSITIES.len(), PAPER_DENSITY_LABELS.len());
        assert!((PAPER_DENSITIES[3] - 0.001).abs() < 1e-12);
        assert_eq!(PAPER_DENSITY_LABELS[0], "0.005%");
    }
}
