//! The six census queries of Figure 29.
//!
//! * `Q1` — US citizens with a PhD degree (selective).
//! * `Q2` — place of work of non-citizens that do not speak English well.
//! * `Q3` — widows with more than three children living in their birth state.
//! * `Q4` — married persons with no children (very unselective).
//! * `Q5` — join of (renamed) `Q2` and `Q3` restricted to states with IPUMS
//!   index greater than 50.
//! * `Q6` — places of birth and work of persons speaking English well.

use crate::schema::RELATION_NAME;
use ws_relational::{CmpOp, Predicate, RaExpr};

/// `Q1 := σ_{YEARSCH=17 ∧ CITIZEN=0}(R)`.
pub fn q1() -> RaExpr {
    RaExpr::rel(RELATION_NAME).select(Predicate::and(vec![
        Predicate::eq_const("YEARSCH", 17i64),
        Predicate::eq_const("CITIZEN", 0i64),
    ]))
}

/// `Q2 := π_{POWSTATE,CITIZEN,IMMIGR}(σ_{CITIZEN≠0 ∧ ENGLISH>3}(R))`.
pub fn q2() -> RaExpr {
    RaExpr::rel(RELATION_NAME)
        .select(Predicate::and(vec![
            Predicate::cmp_const("CITIZEN", CmpOp::Ne, 0i64),
            Predicate::cmp_const("ENGLISH", CmpOp::Gt, 3i64),
        ]))
        .project(vec!["POWSTATE", "CITIZEN", "IMMIGR"])
}

/// `Q3 := π_{POWSTATE,MARITAL,FERTIL}(σ_{POWSTATE=POB}(σ_{FERTIL>4 ∧ MARITAL=1}(R)))`.
pub fn q3() -> RaExpr {
    RaExpr::rel(RELATION_NAME)
        .select(Predicate::and(vec![
            Predicate::cmp_const("FERTIL", CmpOp::Gt, 4i64),
            Predicate::eq_const("MARITAL", 1i64),
        ]))
        .select(Predicate::cmp_attr("POWSTATE", CmpOp::Eq, "POB"))
        .project(vec!["POWSTATE", "MARITAL", "FERTIL"])
}

/// `Q4 := σ_{FERTIL=1 ∧ (RSPOUSE=1 ∨ RSPOUSE=2)}(R)`.
pub fn q4() -> RaExpr {
    RaExpr::rel(RELATION_NAME).select(Predicate::and(vec![
        Predicate::eq_const("FERTIL", 1i64),
        Predicate::or(vec![
            Predicate::eq_const("RSPOUSE", 1i64),
            Predicate::eq_const("RSPOUSE", 2i64),
        ]),
    ]))
}

/// `Q5 := δ_{POWSTATE→P1}(σ_{POWSTATE>50}(Q2)) ⋈_{P1=P2} δ_{POWSTATE→P2}(σ_{POWSTATE>50}(Q3))`.
pub fn q5() -> RaExpr {
    let left = q2()
        .select(Predicate::cmp_const("POWSTATE", CmpOp::Gt, 50i64))
        .rename("POWSTATE", "P1");
    let right = q3()
        .select(Predicate::cmp_const("POWSTATE", CmpOp::Gt, 50i64))
        .rename("POWSTATE", "P2");
    left.join(right, Predicate::cmp_attr("P1", CmpOp::Eq, "P2"))
}

/// `Q6 := π_{POWSTATE,POB}(σ_{ENGLISH=3}(R))`.
pub fn q6() -> RaExpr {
    RaExpr::rel(RELATION_NAME)
        .select(Predicate::eq_const("ENGLISH", 3i64))
        .project(vec!["POWSTATE", "POB"])
}

/// All six queries with their paper labels, in order.
pub fn all_queries() -> Vec<(&'static str, RaExpr)> {
    vec![
        ("Q1", q1()),
        ("Q2", q2()),
        ("Q3", q3()),
        ("Q4", q4()),
        ("Q5", q5()),
        ("Q6", q6()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_census;
    use ws_relational::{evaluate_set, Database};

    #[test]
    fn all_queries_reference_only_the_census_relation() {
        for (label, q) in all_queries() {
            assert_eq!(q.base_relations(), vec![RELATION_NAME], "{label}");
            assert!(q.node_count() >= 2, "{label} should not be a bare scan");
        }
    }

    #[test]
    fn queries_evaluate_on_one_world_and_are_selective() {
        let relation = generate_census(3000, 5);
        let mut db = Database::new();
        db.insert_relation(relation);
        let full = 3000usize;
        for (label, q) in all_queries() {
            let out = evaluate_set(&db, &q).unwrap();
            assert!(
                out.len() < full,
                "{label} should be selective, got {} rows",
                out.len()
            );
        }
        // Q4 is the least selective of the single-relation queries.
        let q4_len = evaluate_set(&db, &q4()).unwrap().len();
        let q1_len = evaluate_set(&db, &q1()).unwrap().len();
        assert!(q4_len > q1_len);
        // Q2, Q3 and Q6 project onto the expected schemas.
        let q2_out = evaluate_set(&db, &q2()).unwrap();
        assert_eq!(q2_out.schema().arity(), 3);
        let q6_out = evaluate_set(&db, &q6()).unwrap();
        assert_eq!(q6_out.schema().arity(), 2);
        // Q5's schema concatenates both renamed sides.
        let q5_out = evaluate_set(&db, &q5()).unwrap();
        assert!(q5_out.schema().contains("P1"));
        assert!(q5_out.schema().contains("P2"));
        assert_eq!(q5_out.schema().arity(), 6);
    }
}
