//! The IPUMS-like census schema.
//!
//! The paper's evaluation uses the public 5% extract of the 1990 US census
//! (IPUMS): a single relation with 50 exclusively multiple-choice attributes.
//! That data set cannot be redistributed here, so this module defines a
//! synthetic schema with the same shape: every attribute the paper's
//! dependencies (Fig. 25) and queries (Fig. 29) mention, with domain sizes
//! matching the IPUMS code books, padded with filler multiple-choice
//! attributes up to 50 columns.

use ws_relational::Schema;

/// One census attribute: its name and the size of its categorical domain
/// (codes `0 .. domain_size-1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CensusAttribute {
    /// The attribute name (IPUMS variable name where applicable).
    pub name: &'static str,
    /// Number of codes in the attribute's domain.
    pub domain_size: i64,
}

impl CensusAttribute {
    /// The domain of the attribute as the code range `0 .. domain_size`.
    pub fn domain(&self) -> std::ops::Range<i64> {
        0..self.domain_size
    }
}

/// Number of attributes of the census relation (as in the paper).
pub const ATTRIBUTE_COUNT: usize = 50;

/// The attributes referenced by the paper's dependencies and queries,
/// followed by filler attributes up to [`ATTRIBUTE_COUNT`].
pub const ATTRIBUTES: [CensusAttribute; ATTRIBUTE_COUNT] = [
    CensusAttribute {
        name: "CITIZEN",
        domain_size: 5,
    },
    CensusAttribute {
        name: "IMMIGR",
        domain_size: 11,
    },
    CensusAttribute {
        name: "FEB55",
        domain_size: 2,
    },
    CensusAttribute {
        name: "KOREAN",
        domain_size: 2,
    },
    CensusAttribute {
        name: "VIETNAM",
        domain_size: 2,
    },
    CensusAttribute {
        name: "WWII",
        domain_size: 2,
    },
    CensusAttribute {
        name: "MILITARY",
        domain_size: 5,
    },
    CensusAttribute {
        name: "MARITAL",
        domain_size: 5,
    },
    CensusAttribute {
        name: "RSPOUSE",
        domain_size: 7,
    },
    CensusAttribute {
        name: "LANG1",
        domain_size: 3,
    },
    CensusAttribute {
        name: "ENGLISH",
        domain_size: 5,
    },
    CensusAttribute {
        name: "RPOB",
        domain_size: 53,
    },
    CensusAttribute {
        name: "SCHOOL",
        domain_size: 3,
    },
    CensusAttribute {
        name: "YEARSCH",
        domain_size: 18,
    },
    CensusAttribute {
        name: "POWSTATE",
        domain_size: 57,
    },
    CensusAttribute {
        name: "POB",
        domain_size: 57,
    },
    CensusAttribute {
        name: "FERTIL",
        domain_size: 14,
    },
    CensusAttribute {
        name: "SEX",
        domain_size: 2,
    },
    CensusAttribute {
        name: "AGE",
        domain_size: 91,
    },
    CensusAttribute {
        name: "RACE",
        domain_size: 10,
    },
    CensusAttribute {
        name: "HISPANIC",
        domain_size: 4,
    },
    CensusAttribute {
        name: "DISABL1",
        domain_size: 3,
    },
    CensusAttribute {
        name: "DISABL2",
        domain_size: 3,
    },
    CensusAttribute {
        name: "MOBILITY",
        domain_size: 3,
    },
    CensusAttribute {
        name: "PERSCARE",
        domain_size: 3,
    },
    CensusAttribute {
        name: "CLASS",
        domain_size: 10,
    },
    CensusAttribute {
        name: "HOURS",
        domain_size: 99,
    },
    CensusAttribute {
        name: "LOOKING",
        domain_size: 3,
    },
    CensusAttribute {
        name: "AVAIL",
        domain_size: 5,
    },
    CensusAttribute {
        name: "TMPABSNT",
        domain_size: 4,
    },
    CensusAttribute {
        name: "WORK89",
        domain_size: 3,
    },
    CensusAttribute {
        name: "YEARWRK",
        domain_size: 8,
    },
    CensusAttribute {
        name: "INDUSTRY",
        domain_size: 13,
    },
    CensusAttribute {
        name: "OCCUP",
        domain_size: 26,
    },
    CensusAttribute {
        name: "MEANS",
        domain_size: 13,
    },
    CensusAttribute {
        name: "RIDERS",
        domain_size: 8,
    },
    CensusAttribute {
        name: "DEPART",
        domain_size: 24,
    },
    CensusAttribute {
        name: "TRAVTIME",
        domain_size: 99,
    },
    CensusAttribute {
        name: "ROOMS",
        domain_size: 10,
    },
    CensusAttribute {
        name: "TENURE",
        domain_size: 5,
    },
    CensusAttribute {
        name: "VALUE",
        domain_size: 21,
    },
    CensusAttribute {
        name: "RENT",
        domain_size: 17,
    },
    CensusAttribute {
        name: "VEHICLES",
        domain_size: 8,
    },
    CensusAttribute {
        name: "FUEL",
        domain_size: 9,
    },
    CensusAttribute {
        name: "WATER",
        domain_size: 5,
    },
    CensusAttribute {
        name: "SEWAGE",
        domain_size: 4,
    },
    CensusAttribute {
        name: "YRBUILT",
        domain_size: 8,
    },
    CensusAttribute {
        name: "BEDROOMS",
        domain_size: 6,
    },
    CensusAttribute {
        name: "PLUMBING",
        domain_size: 3,
    },
    CensusAttribute {
        name: "KITCHEN",
        domain_size: 3,
    },
];

/// The name of the census relation.
pub const RELATION_NAME: &str = "R";

/// The relational schema of the census relation.
pub fn census_schema() -> Schema {
    let names: Vec<&str> = ATTRIBUTES.iter().map(|a| a.name).collect();
    Schema::new(RELATION_NAME, &names).expect("census attribute names are unique")
}

/// Look up one attribute's metadata by name.
pub fn attribute(name: &str) -> Option<&'static CensusAttribute> {
    ATTRIBUTES.iter().find(|a| a.name == name)
}

/// The domain size of an attribute (panics on unknown attributes; the
/// attribute list is a compile-time constant).
pub fn domain_size(name: &str) -> i64 {
    attribute(name)
        .unwrap_or_else(|| panic!("unknown census attribute `{name}`"))
        .domain_size
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn fifty_distinct_attributes() {
        assert_eq!(ATTRIBUTES.len(), 50);
        let names: BTreeSet<&str> = ATTRIBUTES.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 50);
        assert!(ATTRIBUTES.iter().all(|a| a.domain_size >= 2));
    }

    #[test]
    fn schema_matches_attribute_list() {
        let schema = census_schema();
        assert_eq!(schema.arity(), 50);
        assert_eq!(schema.relation().as_ref(), "R");
        assert_eq!(schema.position("CITIZEN"), Some(0));
        assert!(schema.contains("POWSTATE"));
    }

    #[test]
    fn referenced_attributes_exist_with_expected_domains() {
        for (name, minimum) in [
            ("CITIZEN", 5),
            ("IMMIGR", 11),
            ("MILITARY", 5),
            ("MARITAL", 5),
            ("RSPOUSE", 7),
            ("ENGLISH", 5),
            ("RPOB", 53),
            ("YEARSCH", 18),
            ("POWSTATE", 57),
            ("POB", 57),
            ("FERTIL", 14),
        ] {
            assert!(domain_size(name) >= minimum, "{name} domain too small");
        }
        assert!(attribute("NOPE").is_none());
        assert_eq!(attribute("SEX").unwrap().domain(), 0..2);
    }

    #[test]
    #[should_panic(expected = "unknown census attribute")]
    fn unknown_attribute_panics() {
        domain_size("NOPE");
    }
}
