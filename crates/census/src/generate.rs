//! Synthetic census data generation.
//!
//! The generator produces a seeded, reproducible relation with the schema of
//! [`crate::schema`] whose base data *satisfies the twelve dependencies of
//! Figure 25*: the paper's experiments introduce uncertainty (or-sets) into
//! otherwise clean data and then measure the cost of cleaning that
//! uncertainty away, so the certain part of the data must be consistent to
//! begin with.

use crate::dependencies::census_egds;
use crate::schema::{census_schema, ATTRIBUTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ws_relational::{Relation, Tuple, Value};

/// Generate `tuples` census rows with the given RNG seed.
///
/// Values are drawn uniformly from each attribute's domain and then repaired
/// (by a bounded fix-point pass over the dependencies) so that every row
/// satisfies all twelve EGDs of Figure 25.
pub fn generate_census(tuples: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = census_schema();
    let egds = census_egds();
    // Pre-resolve attribute positions for the repair step.
    let resolved: Vec<ResolvedEgd> = egds
        .iter()
        .map(|egd| {
            let body = egd
                .body
                .iter()
                .map(|atom| (schema.position(&atom.attr).unwrap(), atom.clone()))
                .collect();
            let head_pos = schema.position(&egd.head.attr).unwrap();
            (body, head_pos, egd.head.clone())
        })
        .collect();

    let rows: Vec<Tuple> = (0..tuples)
        .map(|_| {
            let mut values: Vec<i64> = ATTRIBUTES
                .iter()
                .map(|a| rng.gen_range(a.domain()))
                .collect();
            repair_row(&mut values, &resolved, &mut rng);
            Tuple::from_iter(values)
        })
        .collect();
    Relation::with_rows(schema, rows).expect("generated rows match the schema arity")
}

/// An EGD with its body atoms and head resolved to attribute positions.
type ResolvedEgd = (
    Vec<(usize, ws_core::chase::AttrComparison)>,
    usize,
    ws_core::chase::AttrComparison,
);

/// Repair one row until it satisfies every dependency (bounded fix-point).
fn repair_row(values: &mut [i64], egds: &[ResolvedEgd], rng: &mut StdRng) {
    for _ in 0..8 {
        let mut changed = false;
        for (body, head_pos, head) in egds {
            let body_holds = body
                .iter()
                .all(|(pos, atom)| atom.eval(&Value::Int(values[*pos])));
            if body_holds && !head.eval(&Value::Int(values[*head_pos])) {
                values[*head_pos] = satisfying_value(head, rng);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
    debug_assert!(
        egds.iter().all(|(body, head_pos, head)| {
            !body
                .iter()
                .all(|(pos, atom)| atom.eval(&Value::Int(values[*pos])))
                || head.eval(&Value::Int(values[*head_pos]))
        }),
        "dependency repair did not converge"
    );
}

/// A domain value satisfying a head atom.
fn satisfying_value(head: &ws_core::chase::AttrComparison, rng: &mut StdRng) -> i64 {
    let domain = crate::schema::domain_size(&head.attr);
    let target = head.value.as_int().expect("census constants are integers");
    match head.op {
        ws_relational::CmpOp::Eq => target,
        ws_relational::CmpOp::Ne => {
            let mut v = rng.gen_range(0..domain);
            if v == target {
                v = (v + 1) % domain;
            }
            v
        }
        ws_relational::CmpOp::Lt => rng.gen_range(0..target),
        ws_relational::CmpOp::Le => rng.gen_range(0..=target),
        ws_relational::CmpOp::Gt => rng.gen_range(target + 1..domain),
        ws_relational::CmpOp::Ge => rng.gen_range(target..domain),
    }
}

/// Check whether a relation satisfies all census dependencies (used in tests
/// and as a sanity check by the benchmark harness).
pub fn satisfies_dependencies(relation: &Relation) -> bool {
    let egds = census_egds();
    relation.rows().iter().all(|row| {
        egds.iter().all(|egd| {
            let body_holds = egd.body.iter().all(|atom| {
                let pos = relation.schema().position(&atom.attr).unwrap();
                atom.eval(&row[pos])
            });
            let head_pos = relation.schema().position(&egd.head.attr).unwrap();
            !body_holds || egd.head.eval(&row[head_pos])
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seeded_and_well_formed() {
        let a = generate_census(200, 42);
        let b = generate_census(200, 42);
        let c = generate_census(200, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 200);
        assert_eq!(a.schema().arity(), 50);
    }

    #[test]
    fn generated_data_satisfies_the_dependencies() {
        let relation = generate_census(500, 7);
        assert!(satisfies_dependencies(&relation));
    }

    #[test]
    fn values_stay_within_their_domains() {
        let relation = generate_census(300, 11);
        for row in relation.rows() {
            for (i, attr) in ATTRIBUTES.iter().enumerate() {
                let v = row[i].as_int().unwrap();
                assert!(
                    attr.domain().contains(&v),
                    "{} = {v} out of domain",
                    attr.name
                );
            }
        }
    }

    #[test]
    fn violations_are_detected() {
        let mut relation = generate_census(10, 3);
        let citizen = relation.schema().position("CITIZEN").unwrap();
        let immigr = relation.schema().position("IMMIGR").unwrap();
        relation.rows_mut()[0].set(citizen, Value::int(0));
        relation.rows_mut()[0].set(immigr, Value::int(5));
        assert!(!satisfies_dependencies(&relation));
    }
}
