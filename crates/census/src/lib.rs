//! # ws-census — the census workload of the paper's evaluation (§9)
//!
//! The paper evaluates UWSDTs on the IPUMS 1990 5% census extract: a
//! 50-attribute multiple-choice relation with up to 12.5 million tuples,
//! made uncertain by replacing a small fraction of fields with or-sets and
//! cleaned with twelve real-life dependencies.  This crate provides a
//! faithful synthetic stand-in (see DESIGN.md for the substitution
//! rationale):
//!
//! * [`schema`] — the 50-attribute schema with IPUMS-like domains,
//! * [`generate`] — a seeded generator producing dependency-consistent data,
//! * [`noise`] — or-set noise injection at the paper's densities,
//! * [`dependencies`] — the 12 EGDs of Figure 25,
//! * [`queries`] — the queries Q1–Q6 of Figure 29, and
//! * [`workload`] — end-to-end scenario helpers (dirty / chased UWSDTs and
//!   the single-world baseline).

pub mod dependencies;
pub mod generate;
pub mod noise;
pub mod queries;
pub mod schema;
pub mod workload;

pub use dependencies::{census_dependencies, census_egds};
pub use generate::{generate_census, satisfies_dependencies};
pub use noise::{add_noise, average_or_set_size, PAPER_DENSITIES, PAPER_DENSITY_LABELS};
pub use queries::{all_queries, q1, q2, q3, q4, q5, q6};
pub use schema::{census_schema, CensusAttribute, ATTRIBUTES, ATTRIBUTE_COUNT, RELATION_NAME};
pub use workload::CensusScenario;
