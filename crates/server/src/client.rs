//! The blocking client: the Session verbs over a TCP connection.
//!
//! ```no_run
//! use maybms::q;
//! use ws_server::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7878")?;
//! let plan = client.prepare(q("R").project(["S"]))?;
//! let rows = client.execute(&plan)?;
//! let confidences = client.confidence(&plan)?;
//! # let _ = (rows, confidences);
//! # Ok::<(), ws_server::ServiceError>(())
//! ```

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

use maybms::{IntoQuery, UpdateExpr};
use ws_relational::{Dependency, Tuple};

use crate::wire::{read_frame, write_frame, CountingStream, Request, Response, WIRE_VERSION};

/// What went wrong on the service path: a transport fault, a server-side
/// error, or the deterministic *inconsistent worlds* outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Whether this is a conditioning step that emptied the world set (a
    /// deterministic, retry-proof outcome), as opposed to an I/O or plan
    /// error.
    pub inconsistent: bool,
    /// The rendered diagnosis.
    pub message: String,
}

impl ServiceError {
    fn transport(e: impl fmt::Display) -> Self {
        ServiceError {
            inconsistent: false,
            message: e.to_string(),
        }
    }

    fn protocol(got: &Response) -> Self {
        ServiceError {
            inconsistent: false,
            message: format!("unexpected response on the wire: {got:?}"),
        }
    }

    /// Whether the failure is the deterministic conditioning outcome.
    pub fn is_inconsistent(&self) -> bool {
        self.inconsistent
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inconsistent {
            write!(f, "inconsistent worlds: {}", self.message)
        } else {
            write!(f, "service error: {}", self.message)
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::transport(e)
    }
}

/// A plan registered on the server, executable many times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemotePlan {
    id: u64,
    display: String,
    attrs: Vec<String>,
}

impl RemotePlan {
    /// The plan rendered for humans (the server-side plan-cache key).
    pub fn display(&self) -> &str {
        &self.display
    }

    /// The output schema attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }
}

/// A blocking connection to a ws-server, speaking the Session verbs.
#[derive(Debug)]
pub struct Client {
    stream: CountingStream<TcpStream>,
    backend: String,
    seq: u64,
    /// The trace id stamped on the next request frame (1-based; the server
    /// echoes it on every response frame of that request).
    next_trace: u64,
}

impl Client {
    /// Connect and perform the hello handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(ServiceError::transport)?;
        let mut client = Client {
            stream: CountingStream::new(stream),
            backend: String::new(),
            seq: 0,
            next_trace: 1,
        };
        match client.call(&Request::Hello {
            version: WIRE_VERSION,
        })? {
            Response::HelloOk { backend, seq, .. } => {
                client.backend = backend;
                client.seq = seq;
                Ok(client)
            }
            other => Err(ServiceError::protocol(&other)),
        }
    }

    /// Which representation backs the store (`"wsd"`, `"urel"`, …).
    pub fn backend_name(&self) -> &str {
        &self.backend
    }

    /// The committed sequence number last reported by the server.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Bytes this connection has received / sent on the wire.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.stream.bytes_in(), self.stream.bytes_out())
    }

    fn send(&mut self, request: &Request) -> Result<u64, ServiceError> {
        let trace = self.next_trace;
        self.next_trace += 1;
        write_frame(&mut self.stream, trace, &request.encode()).map_err(ServiceError::transport)?;
        Ok(trace)
    }

    fn receive(&mut self, trace: u64) -> Result<Response, ServiceError> {
        let (echoed, payload) = read_frame(&mut self.stream)
            .map_err(ServiceError::transport)?
            .ok_or_else(|| ServiceError::transport("the server hung up"))?;
        if echoed != trace {
            return Err(ServiceError::transport(format!(
                "trace id mismatch: sent request {trace}, response echoes {echoed}"
            )));
        }
        let response = Response::decode(&payload).map_err(ServiceError::transport)?;
        if let Response::Error {
            inconsistent,
            message,
        } = response
        {
            return Err(ServiceError {
                inconsistent,
                message,
            });
        }
        Ok(response)
    }

    fn call(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let trace = self.send(request)?;
        self.receive(trace)
    }

    /// Register a query; the plan is lowered locally and optimized remotely.
    pub fn prepare(&mut self, query: impl IntoQuery) -> Result<RemotePlan, ServiceError> {
        let plan = query.into_query().lower();
        match self.call(&Request::Prepare { plan })? {
            Response::Prepared {
                plan,
                display,
                attrs,
            } => Ok(RemotePlan {
                id: plan,
                display,
                attrs,
            }),
            other => Err(ServiceError::protocol(&other)),
        }
    }

    /// All answer rows of a prepared plan, over the server's read snapshot.
    pub fn execute(&mut self, plan: &RemotePlan) -> Result<Vec<Tuple>, ServiceError> {
        let trace = self.send(&Request::Execute { plan: plan.id })?;
        let mut rows = Vec::new();
        loop {
            match self.receive(trace)? {
                Response::RowBatch { rows: batch, done } => {
                    rows.extend(batch);
                    if done {
                        return Ok(rows);
                    }
                }
                other => return Err(ServiceError::protocol(&other)),
            }
        }
    }

    /// Tuple confidences for a prepared plan, exact bit patterns preserved.
    pub fn confidence(&mut self, plan: &RemotePlan) -> Result<Vec<(Tuple, f64)>, ServiceError> {
        match self.call(&Request::Confidence { plan: plan.id })? {
            Response::Confidences { rows } => Ok(rows),
            other => Err(ServiceError::protocol(&other)),
        }
    }

    /// Durably apply one update through the server's group-commit path.
    pub fn apply(&mut self, update: &UpdateExpr) -> Result<f64, ServiceError> {
        match self.call(&Request::Apply {
            update: update.clone(),
        })? {
            Response::Applied { mass, seq } => {
                self.seq = seq;
                Ok(mass)
            }
            other => Err(ServiceError::protocol(&other)),
        }
    }

    /// Condition the world set on integrity constraints.
    pub fn condition(&mut self, constraints: &[Dependency]) -> Result<f64, ServiceError> {
        match self.call(&Request::Condition {
            constraints: constraints.to_vec(),
        })? {
            Response::Applied { mass, seq } => {
                self.seq = seq;
                Ok(mass)
            }
            other => Err(ServiceError::protocol(&other)),
        }
    }

    /// Snapshot + WAL truncation; returns the new generation.
    pub fn checkpoint(&mut self) -> Result<u64, ServiceError> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpointed { generation } => Ok(generation),
            other => Err(ServiceError::protocol(&other)),
        }
    }

    /// The rendered server-side session summary (service counters included).
    pub fn stats(&mut self) -> Result<String, ServiceError> {
        match self.call(&Request::Stats)? {
            Response::Stats { summary } => Ok(summary),
            other => Err(ServiceError::protocol(&other)),
        }
    }

    /// The server's metrics registry rendered in Prometheus text format
    /// (empty when the server was started without an observer).
    pub fn metrics(&mut self) -> Result<String, ServiceError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(ServiceError::protocol(&other)),
        }
    }

    /// End the connection politely.
    pub fn close(mut self) -> Result<(), ServiceError> {
        match self.call(&Request::Close)? {
            Response::Bye => Ok(()),
            other => Err(ServiceError::protocol(&other)),
        }
    }

    /// Ask the server to stop accepting connections, then disconnect.
    pub fn shutdown_server(mut self) -> Result<(), ServiceError> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ServiceError::protocol(&other)),
        }
    }
}
