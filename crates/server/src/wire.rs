//! The binary wire protocol: length-prefixed, CRC-framed request/response
//! messages over any byte stream.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! ┌──────────────┬──────────────┬──────────────────┬───────────────────┐
//! │ len: u32 LE  │ crc: u32 LE  │ request: u64 LE  │ payload (len B)   │
//! └──────────────┴──────────────┴──────────────────┴───────────────────┘
//! ```
//!
//! `crc` is the CRC-32 of the payload (the same polynomial the ws-storage
//! WAL uses); a frame whose checksum or length does not hold is a protocol
//! error, not a panic.  `request` is the trace id the client stamps on each
//! request (0 = untraced); the server echoes it on every response frame of
//! that request and threads it through its spans and the slow-query log, so
//! a wire exchange and the server-side trace line it produced correlate.  Payloads are encoded with the ws-storage
//! [`codec`](ws_storage::codec) primitives — the same hand-rolled,
//! version-tagged binary vocabulary the snapshot and WAL files speak, so
//! plans ([`RaExpr`]), updates ([`UpdateExpr`]), constraints
//! ([`Dependency`]) and tuples need no second serialization layer.
//!
//! One request yields one response, except [`Request::Execute`], which
//! streams the answer as a sequence of [`Response::RowBatch`] frames whose
//! last frame has `done = true`.

use std::io::{Read, Write};

use ws_core::ops::update::UpdateExpr;
use ws_relational::{Dependency, RaExpr, Tuple};
use ws_storage::codec::{
    dec_dependency, dec_ra, dec_tuple, dec_update, enc_dependency, enc_ra, enc_tuple, enc_update,
    Reader, Writer,
};
use ws_storage::{crc32, StorageError};

/// Protocol revision; [`Request::Hello`] carries it and the server rejects a
/// mismatch rather than mis-decoding.  Version 2 added the `request` trace
/// id to the frame header and the [`Request::Metrics`] verb.
pub const WIRE_VERSION: u32 = 2;

/// Upper bound on a single frame, preventing an implausible length prefix
/// from sizing an allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Everything a client can ask.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open the conversation; the server answers [`Response::HelloOk`].
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u32,
    },
    /// Register a relational-algebra plan; the server answers
    /// [`Response::Prepared`] with the handle for later execution.
    Prepare {
        /// The lowered plan.
        plan: RaExpr,
    },
    /// Stream the rows of a prepared plan over the caller's read snapshot.
    Execute {
        /// The handle from [`Response::Prepared`].
        plan: u64,
    },
    /// Tuple confidence for a prepared plan.
    Confidence {
        /// The handle from [`Response::Prepared`].
        plan: u64,
    },
    /// Durably apply one update through the group-commit path.
    Apply {
        /// The update to commit.
        update: UpdateExpr,
    },
    /// Condition the world set on integrity constraints.
    Condition {
        /// The constraints (an empty list is `⊤`).
        constraints: Vec<Dependency>,
    },
    /// Snapshot + WAL truncation.
    Checkpoint,
    /// The server-side session summary for this connection.
    Stats,
    /// The server's metrics registry in Prometheus text exposition format.
    Metrics,
    /// End this connection (the store keeps serving others).
    Close,
    /// Stop the whole server after answering.
    Shutdown,
}

/// Everything the server can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The conversation is open.
    HelloOk {
        /// The server's [`WIRE_VERSION`].
        version: u32,
        /// Which representation backs the store (`"wsd"`, `"urel"`, …).
        backend: String,
        /// The committed update sequence number at connect time.
        seq: u64,
    },
    /// A plan handle.
    Prepared {
        /// The handle to pass to `Execute`/`Confidence`.
        plan: u64,
        /// The plan rendered for humans.
        display: String,
        /// The output schema attribute names.
        attrs: Vec<String>,
    },
    /// One batch of answer rows; `done` marks the final batch.
    RowBatch {
        /// The rows of this batch (possibly empty on the final frame).
        rows: Vec<Tuple>,
        /// Whether the stream is complete.
        done: bool,
    },
    /// Tuple confidences, exact bit patterns preserved.
    Confidences {
        /// `(tuple, P(tuple ∈ answer))` pairs.
        rows: Vec<(Tuple, f64)>,
    },
    /// An update (or conditioning) committed.
    Applied {
        /// The surviving probability mass the verb reported.
        mass: f64,
        /// The committed sequence number after this update.
        seq: u64,
    },
    /// A checkpoint completed.
    Checkpointed {
        /// The new snapshot generation.
        generation: u64,
    },
    /// The rendered session summary.
    Stats {
        /// `SessionStats` display form, service counters included.
        summary: String,
    },
    /// The metrics scrape.
    Metrics {
        /// Prometheus text exposition (counters, gauges, histogram
        /// summaries), empty when the server runs unobserved.
        text: String,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Whether this is the deterministic *inconsistent worlds* outcome
        /// of a conditioning step (as opposed to an I/O or plan error).
        inconsistent: bool,
        /// The rendered diagnosis.
        message: String,
    },
    /// Goodbye (answer to `Close` and `Shutdown`).
    Bye,
}

// ---------------------------------------------------------------------------
// Message payload codec.
// ---------------------------------------------------------------------------

const REQ_HELLO: u8 = 0;
const REQ_PREPARE: u8 = 1;
const REQ_EXECUTE: u8 = 2;
const REQ_CONFIDENCE: u8 = 3;
const REQ_APPLY: u8 = 4;
const REQ_CONDITION: u8 = 5;
const REQ_CHECKPOINT: u8 = 6;
const REQ_STATS: u8 = 7;
const REQ_CLOSE: u8 = 8;
const REQ_SHUTDOWN: u8 = 9;
const REQ_METRICS: u8 = 10;

const RESP_HELLO_OK: u8 = 0;
const RESP_PREPARED: u8 = 1;
const RESP_ROW_BATCH: u8 = 2;
const RESP_CONFIDENCES: u8 = 3;
const RESP_APPLIED: u8 = 4;
const RESP_CHECKPOINTED: u8 = 5;
const RESP_STATS: u8 = 6;
const RESP_ERROR: u8 = 7;
const RESP_BYE: u8 = 8;
const RESP_METRICS: u8 = 9;

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Hello { version } => {
                w.u8(REQ_HELLO);
                w.u32(*version);
            }
            Request::Prepare { plan } => {
                w.u8(REQ_PREPARE);
                enc_ra(&mut w, plan);
            }
            Request::Execute { plan } => {
                w.u8(REQ_EXECUTE);
                w.u64(*plan);
            }
            Request::Confidence { plan } => {
                w.u8(REQ_CONFIDENCE);
                w.u64(*plan);
            }
            Request::Apply { update } => {
                w.u8(REQ_APPLY);
                enc_update(&mut w, update);
            }
            Request::Condition { constraints } => {
                w.u8(REQ_CONDITION);
                w.len_of(constraints.len());
                for d in constraints {
                    enc_dependency(&mut w, d);
                }
            }
            Request::Checkpoint => w.u8(REQ_CHECKPOINT),
            Request::Stats => w.u8(REQ_STATS),
            Request::Metrics => w.u8(REQ_METRICS),
            Request::Close => w.u8(REQ_CLOSE),
            Request::Shutdown => w.u8(REQ_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, StorageError> {
        let mut r = Reader::new(payload);
        let req = match r.u8("request tag")? {
            REQ_HELLO => Request::Hello {
                version: r.u32("wire version")?,
            },
            REQ_PREPARE => Request::Prepare {
                plan: dec_ra(&mut r)?,
            },
            REQ_EXECUTE => Request::Execute {
                plan: r.u64("plan handle")?,
            },
            REQ_CONFIDENCE => Request::Confidence {
                plan: r.u64("plan handle")?,
            },
            REQ_APPLY => Request::Apply {
                update: dec_update(&mut r)?,
            },
            REQ_CONDITION => {
                let n = r.len_of("constraint count")?;
                let mut constraints = Vec::with_capacity(n);
                for _ in 0..n {
                    constraints.push(dec_dependency(&mut r)?);
                }
                Request::Condition { constraints }
            }
            REQ_CHECKPOINT => Request::Checkpoint,
            REQ_STATS => Request::Stats,
            REQ_METRICS => Request::Metrics,
            REQ_CLOSE => Request::Close,
            REQ_SHUTDOWN => Request::Shutdown,
            t => {
                return Err(StorageError::corrupt(format!(
                    "unknown request tag {t} on the wire"
                )))
            }
        };
        r.finish("request")?;
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::HelloOk {
                version,
                backend,
                seq,
            } => {
                w.u8(RESP_HELLO_OK);
                w.u32(*version);
                w.str(backend);
                w.u64(*seq);
            }
            Response::Prepared {
                plan,
                display,
                attrs,
            } => {
                w.u8(RESP_PREPARED);
                w.u64(*plan);
                w.str(display);
                w.len_of(attrs.len());
                for a in attrs {
                    w.str(a);
                }
            }
            Response::RowBatch { rows, done } => {
                w.u8(RESP_ROW_BATCH);
                w.bool(*done);
                w.len_of(rows.len());
                for t in rows {
                    enc_tuple(&mut w, t);
                }
            }
            Response::Confidences { rows } => {
                w.u8(RESP_CONFIDENCES);
                w.len_of(rows.len());
                for (t, p) in rows {
                    enc_tuple(&mut w, t);
                    w.f64(*p);
                }
            }
            Response::Applied { mass, seq } => {
                w.u8(RESP_APPLIED);
                w.f64(*mass);
                w.u64(*seq);
            }
            Response::Checkpointed { generation } => {
                w.u8(RESP_CHECKPOINTED);
                w.u64(*generation);
            }
            Response::Stats { summary } => {
                w.u8(RESP_STATS);
                w.str(summary);
            }
            Response::Metrics { text } => {
                w.u8(RESP_METRICS);
                w.str(text);
            }
            Response::Error {
                inconsistent,
                message,
            } => {
                w.u8(RESP_ERROR);
                w.bool(*inconsistent);
                w.str(message);
            }
            Response::Bye => w.u8(RESP_BYE),
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, StorageError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8("response tag")? {
            RESP_HELLO_OK => Response::HelloOk {
                version: r.u32("wire version")?,
                backend: r.str("backend name")?,
                seq: r.u64("sequence number")?,
            },
            RESP_PREPARED => {
                let plan = r.u64("plan handle")?;
                let display = r.str("plan display")?;
                let n = r.len_of("attribute count")?;
                let mut attrs = Vec::with_capacity(n);
                for _ in 0..n {
                    attrs.push(r.str("attribute")?);
                }
                Response::Prepared {
                    plan,
                    display,
                    attrs,
                }
            }
            RESP_ROW_BATCH => {
                let done = r.bool("done flag")?;
                let n = r.len_of("row count")?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(dec_tuple(&mut r)?);
                }
                Response::RowBatch { rows, done }
            }
            RESP_CONFIDENCES => {
                let n = r.len_of("row count")?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let t = dec_tuple(&mut r)?;
                    let p = r.f64("confidence")?;
                    rows.push((t, p));
                }
                Response::Confidences { rows }
            }
            RESP_APPLIED => Response::Applied {
                mass: r.f64("mass")?,
                seq: r.u64("sequence number")?,
            },
            RESP_CHECKPOINTED => Response::Checkpointed {
                generation: r.u64("generation")?,
            },
            RESP_STATS => Response::Stats {
                summary: r.str("summary")?,
            },
            RESP_METRICS => Response::Metrics {
                text: r.str("metrics text")?,
            },
            RESP_ERROR => Response::Error {
                inconsistent: r.bool("inconsistent flag")?,
                message: r.str("message")?,
            },
            RESP_BYE => Response::Bye,
            t => {
                return Err(StorageError::corrupt(format!(
                    "unknown response tag {t} on the wire"
                )))
            }
        };
        r.finish("response")?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

/// Write one frame (length, checksum, request trace id, payload) and flush.
pub fn write_frame(stream: &mut impl Write, request: u64, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(&crc32(payload).to_le_bytes())?;
    stream.write_all(&request.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Read one frame, verifying length plausibility and checksum; returns the
/// request trace id alongside the payload.
///
/// Returns `Ok(None)` on a clean end-of-stream *before* the first header
/// byte (the peer hung up between messages); any torn or corrupt frame is an
/// error.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<(u64, Vec<u8>)>> {
    let mut header = [0u8; 16];
    let mut filled = 0;
    while filled < header.len() {
        let n = stream.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "the stream ended inside a frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let request = u64::from_le_bytes([
        header[8], header[9], header[10], header[11], header[12], header[13], header[14],
        header[15],
    ]);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("implausible frame length {len}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some((request, payload)))
}

// ---------------------------------------------------------------------------
// Byte accounting.
// ---------------------------------------------------------------------------

/// A byte stream that counts what passes through it, feeding the
/// `wire_bytes_in`/`wire_bytes_out` session counters on both ends.
#[derive(Debug)]
pub struct CountingStream<S> {
    inner: S,
    bytes_in: u64,
    bytes_out: u64,
}

impl<S> CountingStream<S> {
    /// Wrap a stream with zeroed counters.
    pub fn new(inner: S) -> Self {
        CountingStream {
            inner,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// Bytes read so far.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Bytes written so far.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes_in += n as u64;
        Ok(n)
    }
}

impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes_out += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_relational::{CmpOp, Predicate, Value};

    fn sample_plan() -> RaExpr {
        RaExpr::Project {
            attrs: vec!["S".into()],
            input: Box::new(RaExpr::Select {
                pred: Predicate::AttrConst {
                    attr: "M".into(),
                    op: CmpOp::Eq,
                    value: Value::int(4),
                },
                input: Box::new(RaExpr::Rel("R".into())),
            }),
        }
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Hello {
                version: WIRE_VERSION,
            },
            Request::Prepare {
                plan: sample_plan(),
            },
            Request::Execute { plan: 7 },
            Request::Confidence { plan: 7 },
            Request::Apply {
                update: UpdateExpr::delete("R", Predicate::eq_const("M", 4i64)),
            },
            Request::Condition {
                constraints: vec![],
            },
            Request::Checkpoint,
            Request::Stats,
            Request::Metrics,
            Request::Close,
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::HelloOk {
                version: WIRE_VERSION,
                backend: "wsd".into(),
                seq: 3,
            },
            Response::Prepared {
                plan: 7,
                display: "π_S(σ_{M=4}(R))".into(),
                attrs: vec!["S".into()],
            },
            Response::RowBatch {
                rows: vec![Tuple::from_iter([Value::int(1), Value::text("x")])],
                done: false,
            },
            Response::Confidences {
                rows: vec![(Tuple::from_iter([Value::int(1)]), 0.25f64)],
            },
            Response::Applied { mass: 0.5, seq: 4 },
            Response::Checkpointed { generation: 2 },
            Response::Stats {
                summary: "queries=1".into(),
            },
            Response::Metrics {
                text: "# TYPE ws_span_slow counter\nws_span_slow 0\n".into(),
            },
            Response::Error {
                inconsistent: true,
                message: "conditioning emptied the world set".into(),
            },
            Response::Bye,
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn frames_detect_corruption() {
        let payload = Request::Checkpoint.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, &payload).unwrap();
        // Intact frame reads back, trace id included.
        let (request, got) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(request, 42);
        assert_eq!(got, payload);
        // A flipped payload byte fails the checksum.
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert!(read_frame(&mut bad.as_slice()).is_err());
        // A clean hang-up between frames is Ok(None).
        assert!(read_frame(&mut [][..].as_ref()).unwrap().is_none());
        // A torn header is an error.
        assert!(read_frame(&mut buf[..4].as_ref()).is_err());
    }
}
