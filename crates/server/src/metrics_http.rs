//! A minimal HTTP/1.1 scrape endpoint for an [`Observer`]'s metrics.
//!
//! Prometheus (and `curl`) speak a tiny, fixed slice of HTTP: one `GET`,
//! one `200 OK` with a `text/plain` body, `Connection: close`.  Hand-rolling
//! that slice keeps the endpoint dependency-free — the scraper never needs
//! more than [`MetricsSnapshot::render_prometheus`] behind a socket.
//!
//! The endpoint answers **every** request path with the full registry dump
//! (scrapers conventionally hit `/metrics`, but there is nothing else to
//! serve), and each connection is one request–response exchange.
//!
//! [`MetricsSnapshot::render_prometheus`]: ws_obs::MetricsSnapshot::render_prometheus

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ws_obs::Observer;

/// A running scrape endpoint: its address, its stop flag, and the accept
/// thread.  Dropping the handle shuts the endpoint down.
#[derive(Debug)]
pub struct MetricsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl MetricsHandle {
    /// The bound address (resolves an ephemeral port request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting scrapes and join the accept thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop()
    }

    fn stop(&mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        // A throwaway connection unblocks the blocking accept.
        let _ = TcpStream::connect(self.addr);
        match self.join.take() {
            Some(join) => join
                .join()
                .map_err(|_| io::Error::other("the metrics accept thread panicked")),
            None => Ok(()),
        }
    }
}

impl Drop for MetricsHandle {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

/// Bind `addr` (port 0 for an ephemeral port) and serve `observer`'s metrics
/// registry as Prometheus text on a background thread.
pub fn serve_metrics(
    addr: impl ToSocketAddrs,
    observer: Arc<Observer>,
) -> io::Result<MetricsHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("ws-metrics-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                // Scrapes are rare (seconds apart) and the body is small, so
                // answering inline on the accept thread is plenty.
                let _ = answer_scrape(stream, &observer);
            }
        })?;
    Ok(MetricsHandle {
        addr: local,
        stop,
        join: Some(join),
    })
}

/// Read one request head, write one `200 OK` with the registry dump.
fn answer_scrape(mut stream: TcpStream, observer: &Arc<Observer>) -> io::Result<()> {
    drain_request_head(&mut stream)?;
    let body = observer.metrics().snapshot().render_prometheus();
    let head = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Consume the request line and headers (up to the blank line).  The method
/// and path are deliberately ignored — every request gets the dump — but the
/// head must be drained so the client does not see a reset before reading
/// our response.  Bounded so a garbage peer cannot hold the thread.
fn drain_request_head(stream: &mut TcpStream) -> io::Result<()> {
    const HEAD_LIMIT: usize = 8 * 1024;
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while head.len() < HEAD_LIMIT {
        match stream.read(&mut byte)? {
            0 => break, // peer closed before a full head; answer anyway
            _ => head.push(byte[0]),
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn scrape_round_trip() {
        let observer = Arc::new(Observer::new());
        observer.metrics().counter("wal.fsync").add(3);
        observer.metrics().histogram("exec.op.select.ns").record(17);
        let handle = serve_metrics("127.0.0.1:0", Arc::clone(&observer)).unwrap();

        let response = scrape(handle.addr());
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("ws_wal_fsync 3"), "{body}");
        assert!(body.contains("ws_exec_op_select_ns_count 1"), "{body}");
        // Content-Length must match the body exactly.
        let length: usize = response
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(length, body.len());

        // A second scrape sees fresh values.
        observer.metrics().counter("wal.fsync").inc();
        assert!(scrape(handle.addr()).contains("ws_wal_fsync 4"));

        handle.shutdown().unwrap();
    }
}
