//! `ws-serverd` — serve a durable world-set store over TCP.
//!
//! ```text
//! ws-serverd serve <store-dir> [addr] [--group-commit N,WAIT_MS]
//!                  [--slow-query MS] [--metrics [ADDR]]
//!     Serve an existing store directory (create it with the library or the
//!     `smoke` subcommand first).  Default addr 127.0.0.1:7878.
//!
//!     --group-commit N,WAIT_MS   Coalesce up to N updates per WAL batch,
//!                                waiting at most WAIT_MS for stragglers.
//!     --slow-query MS            Trace spans to stderr and record queries
//!                                slower than MS milliseconds in the
//!                                slow-query ring (use 0 to log every query).
//!     --metrics [ADDR]           Serve the metrics registry as Prometheus
//!                                text over HTTP at ADDR (default
//!                                127.0.0.1:9187); implies observation.
//!
//! ws-serverd smoke
//!     Self-test: bind an ephemeral port over an in-memory observed store,
//!     run one client round-trip (hello, prepare, execute, apply,
//!     confidence, checkpoint, metrics, stats, shutdown), scrape the HTTP
//!     metrics endpoint, and exit 0 iff every step answered correctly.
//! ```

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use maybms::{q, AnyBackend, UpdateExpr};
use ws_obs::{LineSink, Observer};
use ws_relational::Predicate;
use ws_server::{serve, serve_metrics, spawn, Client, ConcurrentStore};
use ws_storage::{DirVfs, MemVfs, SyncPolicy, Vfs};

const USAGE: &str = "usage: ws-serverd serve <store-dir> [addr] [--group-commit N,WAIT_MS] \
                     [--slow-query MS] [--metrics [ADDR]]\n       ws-serverd smoke\n       \
                     ws-serverd --help";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("smoke") => cmd_smoke(),
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            println!();
            println!("  --group-commit N,WAIT_MS  coalesce up to N updates per WAL batch,");
            println!("                            waiting at most WAIT_MS for stragglers");
            println!("  --slow-query MS           trace query spans to stderr and keep queries");
            println!("                            slower than MS ms in the slow-query ring");
            println!("                            (0 logs every query)");
            println!("  --metrics [ADDR]          serve Prometheus text metrics over HTTP at");
            println!("                            ADDR (default 127.0.0.1:9187)");
            return ExitCode::SUCCESS;
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ws-serverd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_policy(args: &[String]) -> Result<SyncPolicy, String> {
    for (i, a) in args.iter().enumerate() {
        if a == "--group-commit" {
            let spec = args
                .get(i + 1)
                .ok_or("--group-commit needs N,WAIT_MS".to_string())?;
            let (n, wait) = spec
                .split_once(',')
                .ok_or(format!("bad --group-commit spec {spec:?}"))?;
            let max_batch: usize = n.parse().map_err(|e| format!("bad batch size: {e}"))?;
            let wait_ms: u64 = wait.parse().map_err(|e| format!("bad wait: {e}"))?;
            return Ok(SyncPolicy::GroupCommit {
                max_batch,
                max_wait: Duration::from_millis(wait_ms),
            });
        }
    }
    Ok(SyncPolicy::EveryRecord)
}

/// `--slow-query MS` → the slow-query threshold.
fn parse_slow_query(args: &[String]) -> Result<Option<Duration>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == "--slow-query" {
            let ms: u64 = args
                .get(i + 1)
                .ok_or("--slow-query needs MS".to_string())?
                .parse()
                .map_err(|e| format!("bad --slow-query threshold: {e}"))?;
            return Ok(Some(Duration::from_millis(ms)));
        }
    }
    Ok(None)
}

/// `--metrics [ADDR]` → the scrape address (the value is optional).
fn parse_metrics(args: &[String]) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if a == "--metrics" {
            let addr = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") && v.contains(':') => v.clone(),
                _ => "127.0.0.1:9187".to_string(),
            };
            return Some(addr);
        }
    }
    None
}

/// Flag values that must not be mistaken for the positional `addr`.
fn is_flag_value(args: &[String], i: usize) -> bool {
    i > 0
        && matches!(
            args[i - 1].as_str(),
            "--group-commit" | "--slow-query" | "--metrics"
        )
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let dir = args.first().ok_or("missing <store-dir>")?;
    let addr = args
        .iter()
        .enumerate()
        .skip(1)
        .find(|(i, a)| !a.starts_with("--") && !a.contains(',') && !is_flag_value(args, *i))
        .map(|(_, a)| a.as_str())
        .unwrap_or("127.0.0.1:7878");
    let policy = parse_policy(args)?;
    let slow = parse_slow_query(args)?;
    let metrics_addr = parse_metrics(args);
    let vfs: Box<dyn Vfs> = Box::new(DirVfs::open(dir)?);

    // Any observability flag switches the store to the observed path; spans
    // go to stderr as one line each, so they interleave with our own logs.
    let observer = if slow.is_some() || metrics_addr.is_some() {
        let observer = Arc::new(Observer::with_sink(Box::new(LineSink::new(
            std::io::stderr(),
        ))));
        observer.set_slow_query_threshold(slow);
        Some(observer)
    } else {
        None
    };
    let store: ConcurrentStore<AnyBackend> = match &observer {
        Some(observer) => ConcurrentStore::open_observed(vfs, policy, Arc::clone(observer))?,
        None => ConcurrentStore::open(vfs, policy)?,
    };
    let _metrics = match (&observer, metrics_addr) {
        (Some(observer), Some(addr)) => {
            let handle = serve_metrics(addr.as_str(), Arc::clone(observer))?;
            println!("ws-serverd: metrics on http://{}/metrics", handle.addr());
            Some(handle)
        }
        _ => None,
    };

    let listener = std::net::TcpListener::bind(addr)?;
    println!("ws-serverd: serving {dir} on {}", listener.local_addr()?);
    let stop = Arc::new(AtomicBool::new(false));
    serve(listener, store.clone(), stop)?;
    store.close()?;
    println!("ws-serverd: stopped");
    Ok(())
}

fn cmd_smoke() -> Result<(), Box<dyn std::error::Error>> {
    use std::io::{Read, Write};

    let backend = AnyBackend::Wsd(maybms::core::wsd::example_census_wsd());
    let vfs: Box<dyn Vfs> = Box::new(MemVfs::new());
    let observer = Arc::new(Observer::new());
    // Threshold 0: every query lands in the slow-query ring.
    observer.set_slow_query_threshold(Some(Duration::ZERO));
    let store: ConcurrentStore<AnyBackend> = ConcurrentStore::create_observed(
        vfs,
        backend,
        SyncPolicy::GroupCommit {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        },
        Arc::clone(&observer),
    )?;
    let handle = spawn("127.0.0.1:0", store.clone())?;
    let addr = handle.addr();
    let scrape = serve_metrics("127.0.0.1:0", Arc::clone(&observer))?;
    println!("smoke: serving on {addr}, metrics on {}", scrape.addr());

    let mut client = Client::connect(addr)?;
    println!("smoke: connected to a {} store", client.backend_name());
    let plan = client.prepare(q("R").project(["S"]))?;
    let rows_before = client.execute(&plan)?.len();
    let confidences = client.confidence(&plan)?;
    let mass = client.apply(&UpdateExpr::delete("R", Predicate::eq_const("M", 4i64)))?;
    let rows_after = client.execute(&plan)?.len();
    let generation = client.checkpoint()?;
    let summary = client.stats()?;
    println!("smoke: rows {rows_before} -> {rows_after}, {} confidences, mass {mass}, generation {generation}", confidences.len());
    println!("smoke: {summary}");

    // The registry over the wire verb and over HTTP must agree on content.
    let wire_metrics = client.metrics()?;
    let mut http = std::net::TcpStream::connect(scrape.addr())?;
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: smoke\r\n\r\n")?;
    let mut http_response = String::new();
    http.read_to_string(&mut http_response)?;
    let slow = observer.slow_queries();
    for event in &slow {
        println!("smoke: slow-query {}", event.render_line());
    }

    client.shutdown_server()?;
    handle.shutdown()?;
    scrape.shutdown()?;
    store.close()?;

    if rows_before == 0 || confidences.is_empty() {
        return Err("smoke: the example store answered nothing".into());
    }
    if !wire_metrics.contains("ws_exec_op_") {
        return Err(format!("smoke: no operator metrics on the wire:\n{wire_metrics}").into());
    }
    if !http_response.starts_with("HTTP/1.1 200 OK") || !http_response.contains("ws_wal_append_ns")
    {
        return Err(format!("smoke: bad metrics scrape:\n{http_response}").into());
    }
    if slow.is_empty() {
        return Err("smoke: a zero threshold logged no slow queries".into());
    }
    println!("smoke: OK");
    Ok(())
}
