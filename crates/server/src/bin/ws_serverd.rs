//! `ws-serverd` — serve a durable world-set store over TCP.
//!
//! ```text
//! ws-serverd serve <store-dir> [addr] [--group-commit N,WAIT_MS]
//!     Serve an existing store directory (create it with the library or the
//!     `smoke` subcommand first).  Default addr 127.0.0.1:7878.
//!
//! ws-serverd smoke
//!     Self-test: bind an ephemeral port over an in-memory store, run one
//!     client round-trip (hello, prepare, execute, apply, confidence,
//!     checkpoint, shutdown), and exit 0 iff every step answered correctly.
//! ```

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use maybms::{q, AnyBackend, UpdateExpr};
use ws_relational::Predicate;
use ws_server::{serve, spawn, Client, ConcurrentStore};
use ws_storage::{DirVfs, MemVfs, SyncPolicy, Vfs};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("smoke") => cmd_smoke(),
        _ => {
            eprintln!("usage: ws-serverd serve <store-dir> [addr] [--group-commit N,WAIT_MS]");
            eprintln!("       ws-serverd smoke");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ws-serverd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_policy(args: &[String]) -> Result<SyncPolicy, String> {
    for (i, a) in args.iter().enumerate() {
        if a == "--group-commit" {
            let spec = args
                .get(i + 1)
                .ok_or("--group-commit needs N,WAIT_MS".to_string())?;
            let (n, wait) = spec
                .split_once(',')
                .ok_or(format!("bad --group-commit spec {spec:?}"))?;
            let max_batch: usize = n.parse().map_err(|e| format!("bad batch size: {e}"))?;
            let wait_ms: u64 = wait.parse().map_err(|e| format!("bad wait: {e}"))?;
            return Ok(SyncPolicy::GroupCommit {
                max_batch,
                max_wait: Duration::from_millis(wait_ms),
            });
        }
    }
    Ok(SyncPolicy::EveryRecord)
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let dir = args.first().ok_or("missing <store-dir>")?;
    let addr = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--") && !a.contains(','))
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7878");
    let policy = parse_policy(args)?;
    let vfs: Box<dyn Vfs> = Box::new(DirVfs::open(dir)?);
    let store: ConcurrentStore<AnyBackend> = ConcurrentStore::open(vfs, policy)?;
    let listener = std::net::TcpListener::bind(addr)?;
    println!("ws-serverd: serving {dir} on {}", listener.local_addr()?);
    let stop = Arc::new(AtomicBool::new(false));
    serve(listener, store.clone(), stop)?;
    store.close()?;
    println!("ws-serverd: stopped");
    Ok(())
}

fn cmd_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let backend = AnyBackend::Wsd(maybms::core::wsd::example_census_wsd());
    let vfs: Box<dyn Vfs> = Box::new(MemVfs::new());
    let store: ConcurrentStore<AnyBackend> = ConcurrentStore::create(
        vfs,
        backend,
        SyncPolicy::GroupCommit {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        },
    )?;
    let handle = spawn("127.0.0.1:0", store.clone())?;
    let addr = handle.addr();
    println!("smoke: serving on {addr}");

    let mut client = Client::connect(addr)?;
    println!("smoke: connected to a {} store", client.backend_name());
    let plan = client.prepare(q("R").project(["S"]))?;
    let rows_before = client.execute(&plan)?.len();
    let confidences = client.confidence(&plan)?;
    let mass = client.apply(&UpdateExpr::delete("R", Predicate::eq_const("M", 4i64)))?;
    let rows_after = client.execute(&plan)?.len();
    let generation = client.checkpoint()?;
    let summary = client.stats()?;
    println!("smoke: rows {rows_before} -> {rows_after}, {} confidences, mass {mass}, generation {generation}", confidences.len());
    println!("smoke: {summary}");
    client.shutdown_server()?;
    handle.shutdown()?;
    store.close()?;

    if rows_before == 0 || confidences.is_empty() {
        return Err("smoke: the example store answered nothing".into());
    }
    println!("smoke: OK");
    Ok(())
}
