//! The concurrent store: MVCC-style snapshot reads over a single durable
//! writer, with group commit.
//!
//! A [`ConcurrentStore<B>`] wraps one [`Durable<B>`] store behind two access
//! paths with very different contention profiles:
//!
//! * **Readers** call [`ConcurrentStore::snapshot`] and get an
//!   `Arc<StoreSnapshot<B>>` — an immutable, reference-counted image of the
//!   backend as of some committed update sequence number.  Pinning is one
//!   mutex-protected `Arc::clone`; after that the reader never touches
//!   shared state again, so query work scales with reader threads.  An old
//!   generation stays alive exactly as long as some reader pins it: when the
//!   last `Arc` drops, the image is reclaimed.  Readers are never blocked by
//!   writers and never observe a half-applied batch.
//! * **Writers** call [`ConcurrentStore::update`], which enqueues the
//!   [`UpdateExpr`] to a single *committer thread* owning the `Durable<B>`.
//!   Under [`SyncPolicy::GroupCommit`] the committer coalesces every update
//!   waiting in the queue (up to `max_batch`, waiting at most `max_wait` for
//!   stragglers) into **one** WAL batch frame and **one** fsync, applies
//!   them in arrival order, then publishes the next snapshot atomically and
//!   wakes each caller with its own outcome.  A deterministic failure (a
//!   conditioning step that empties the world set) is an *outcome* delivered
//!   to that one caller; the rest of the batch commits normally.
//!
//! The commit point is the WAL append: a crash mid-batch tears the single
//! CRC-framed batch record, recovery drops it whole, and the store reopens
//! at the previous batch boundary — there is no state in which a reader (or
//! recovery) sees a strict subset of a batch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ws_core::ops::update::UpdateExpr;
use ws_obs::Observer;
use ws_relational::WriteBackend;
use ws_storage::{DurabilityStats, Durable, DurableError, Persist, StorageError, SyncPolicy, Vfs};

/// How long a caller waits on the committer before diagnosing a stall.
///
/// The committer answers every ticket, including on failure; this bound only
/// exists so a committer *panic* (a bug, not an I/O condition) surfaces as an
/// error instead of a deadlock.
const STALL_TIMEOUT: Duration = Duration::from_secs(60);

/// One immutable image of the backend, pinned by any number of readers.
#[derive(Debug)]
pub struct StoreSnapshot<B> {
    /// The backend state at this point of the commit sequence.
    pub backend: B,
    /// How many updates (in WAL order, failures included) precede this image.
    pub seq: u64,
    /// The durable checkpoint generation backing this image.
    pub generation: u64,
    /// Measures how long this image stays alive (publish to last-pin drop)
    /// into `store.snapshot.lifetime_ns`, when the store is observed.  Held
    /// only for its `Drop`.
    _pin: Option<PinGuard>,
}

/// Records the owning snapshot's lifetime on drop — i.e. when the *last*
/// `Arc` pinning the image (the published slot or a reader) lets go.
struct PinGuard {
    observer: Arc<Observer>,
    born: Instant,
}

impl std::fmt::Debug for PinGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinGuard")
            .field("born", &self.born)
            .finish()
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.observer
            .metrics()
            .histogram("store.snapshot.lifetime_ns")
            .record_duration(self.born.elapsed());
    }
}

fn pin_guard(observer: &Option<Arc<Observer>>) -> Option<PinGuard> {
    observer.as_ref().map(|observer| PinGuard {
        observer: Arc::clone(observer),
        born: Instant::now(),
    })
}

/// Counters of the concurrent store, all monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Snapshots handed to readers.
    pub snapshots_pinned: u64,
    /// Commit batches the committer flushed (one fsync each, except under
    /// [`SyncPolicy::OnCheckpoint`]).
    pub commit_batches: u64,
    /// Updates carried by those batches.
    pub batched_updates: u64,
}

impl StoreStats {
    /// Mean updates per commit batch (0 before the first batch).
    pub fn mean_batch(&self) -> f64 {
        if self.commit_batches == 0 {
            0.0
        } else {
            self.batched_updates as f64 / self.commit_batches as f64
        }
    }
}

/// A one-shot rendezvous: the committer fills it, the submitting caller
/// blocks until it is filled.
struct Slot<T> {
    value: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            value: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, v: T) {
        let mut slot = self.value.lock().unwrap();
        *slot = Some(v);
        self.ready.notify_all();
    }

    fn wait(&self) -> Option<T> {
        let deadline = Instant::now() + STALL_TIMEOUT;
        let mut slot = self.value.lock().unwrap();
        loop {
            if let Some(v) = slot.take() {
                return Some(v);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (next, _) = self.ready.wait_timeout(slot, left).unwrap();
            slot = next;
        }
    }
}

/// What a writer outcome looks like: the probability mass the update
/// reported, or whichever layer rejected it.
pub type UpdateOutcome<E> = Result<f64, DurableError<E>>;

enum Command<B: WriteBackend> {
    Update(UpdateExpr, Arc<Slot<UpdateOutcome<B::Error>>>),
    Checkpoint(Arc<Slot<Result<u64, StorageError>>>),
    Shutdown(Arc<Slot<Result<DurabilityStats, StorageError>>>),
}

struct Shared<B> {
    published: Mutex<Arc<StoreSnapshot<B>>>,
    snapshots_pinned: AtomicU64,
    commit_batches: AtomicU64,
    batched_updates: AtomicU64,
    /// The committed update sequence, in WAL order, kept only when history
    /// recording is on (the concurrent differential oracle replays it).
    history: Mutex<Vec<UpdateExpr>>,
    record_history: bool,
    /// The observability domain the committer and snapshot pins report into.
    observer: Option<Arc<Observer>>,
}

/// A cloneable handle to one durable store shared by many sessions.
///
/// All clones address the same store; [`ConcurrentStore::close`] (on any
/// clone) stops the committer, after which the remaining clones' writes fail
/// with a *service stopped* error while their pinned snapshots stay valid.
pub struct ConcurrentStore<B: WriteBackend> {
    shared: Arc<Shared<B>>,
    tx: Arc<Mutex<Option<Sender<Command<B>>>>>,
    committer: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl<B: WriteBackend> Clone for ConcurrentStore<B> {
    fn clone(&self) -> Self {
        ConcurrentStore {
            shared: Arc::clone(&self.shared),
            tx: Arc::clone(&self.tx),
            committer: Arc::clone(&self.committer),
        }
    }
}

impl<B: WriteBackend> std::fmt::Debug for ConcurrentStore<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentStore")
            .field("seq", &self.shared.published.lock().unwrap().seq)
            .field(
                "commit_batches",
                &self.shared.commit_batches.load(Ordering::Relaxed),
            )
            .finish()
    }
}

fn stopped<T>() -> Result<T, StorageError> {
    Err(StorageError::io(
        "the service committer has stopped; no further writes are possible",
    ))
}

impl<B> ConcurrentStore<B>
where
    B: Persist + WriteBackend + Clone + Send + Sync + 'static,
    B::Error: Send,
{
    /// Initialize a fresh store on `vfs` and start the committer.
    pub fn create(vfs: Box<dyn Vfs>, backend: B, policy: SyncPolicy) -> Result<Self, StorageError> {
        let mut durable = Durable::create(vfs, backend)?;
        durable.set_sync_policy(policy);
        Ok(Self::start(durable, false))
    }

    /// [`ConcurrentStore::create`] with an observability domain attached:
    /// the WAL, the committer and snapshot pins record into `observer`.
    pub fn create_observed(
        vfs: Box<dyn Vfs>,
        backend: B,
        policy: SyncPolicy,
        observer: Arc<Observer>,
    ) -> Result<Self, StorageError> {
        let mut durable = Durable::create(vfs, backend)?;
        durable.set_sync_policy(policy);
        durable.set_observer(Arc::clone(&observer));
        Ok(Self::start_observed(durable, false, Some(observer)))
    }

    /// Recover an existing store from `vfs` and start the committer.
    pub fn open(vfs: Box<dyn Vfs>, policy: SyncPolicy) -> Result<Self, StorageError> {
        let mut durable = Durable::open(vfs)?;
        durable.set_sync_policy(policy);
        Ok(Self::start(durable, false))
    }

    /// [`ConcurrentStore::open`] with an observability domain attached from
    /// recovery replay on.
    pub fn open_observed(
        vfs: Box<dyn Vfs>,
        policy: SyncPolicy,
        observer: Arc<Observer>,
    ) -> Result<Self, StorageError> {
        let mut durable = Durable::open_observed(vfs, Arc::clone(&observer))?;
        durable.set_sync_policy(policy);
        Ok(Self::start_observed(durable, false, Some(observer)))
    }

    /// Like [`ConcurrentStore::create`], additionally recording every
    /// committed update so [`ConcurrentStore::history`] can replay the
    /// serial order (test/oracle instrumentation).
    pub fn create_recording(
        vfs: Box<dyn Vfs>,
        backend: B,
        policy: SyncPolicy,
    ) -> Result<Self, StorageError> {
        let mut durable = Durable::create(vfs, backend)?;
        durable.set_sync_policy(policy);
        Ok(Self::start(durable, true))
    }

    /// Wrap an already-built durable store (any policy, any medium).
    pub fn start(durable: Durable<B>, record_history: bool) -> Self {
        Self::start_observed(durable, record_history, None)
    }

    /// [`ConcurrentStore::start`] with an optional observability domain.
    pub fn start_observed(
        durable: Durable<B>,
        record_history: bool,
        observer: Option<Arc<Observer>>,
    ) -> Self {
        let snapshot = Arc::new(StoreSnapshot {
            backend: durable.inner().clone(),
            seq: 0,
            generation: durable.generation(),
            _pin: pin_guard(&observer),
        });
        let shared = Arc::new(Shared {
            published: Mutex::new(snapshot),
            snapshots_pinned: AtomicU64::new(0),
            commit_batches: AtomicU64::new(0),
            batched_updates: AtomicU64::new(0),
            history: Mutex::new(Vec::new()),
            record_history,
            observer,
        });
        let (tx, rx) = mpsc::channel();
        let worker_shared = Arc::clone(&shared);
        let committer = std::thread::Builder::new()
            .name("ws-committer".into())
            .spawn(move || commit_loop(durable, rx, worker_shared))
            .expect("spawning the committer thread");
        ConcurrentStore {
            shared,
            tx: Arc::new(Mutex::new(Some(tx))),
            committer: Arc::new(Mutex::new(Some(committer))),
        }
    }

    /// Pin the newest committed image.  Lock-free against other readers and
    /// against in-flight commits (one short mutex hold to clone the `Arc`).
    pub fn snapshot(&self) -> Arc<StoreSnapshot<B>> {
        self.shared.snapshots_pinned.fetch_add(1, Ordering::Relaxed);
        if let Some(observer) = &self.shared.observer {
            observer.metrics().counter("store.snapshot.pinned").inc();
        }
        Arc::clone(&self.shared.published.lock().unwrap())
    }

    /// The observability domain this store reports into, if any.
    pub fn observer(&self) -> Option<&Arc<Observer>> {
        self.shared.observer.as_ref()
    }

    /// The committed update sequence number of the newest image.
    pub fn seq(&self) -> u64 {
        self.shared.published.lock().unwrap().seq
    }

    /// The checkpoint generation of the newest image.
    pub fn generation(&self) -> u64 {
        self.shared.published.lock().unwrap().generation
    }

    /// Store-level counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            snapshots_pinned: self.shared.snapshots_pinned.load(Ordering::Relaxed),
            commit_batches: self.shared.commit_batches.load(Ordering::Relaxed),
            batched_updates: self.shared.batched_updates.load(Ordering::Relaxed),
        }
    }

    /// The committed updates in serial (WAL) order.  Empty unless the store
    /// was built with history recording.
    pub fn history(&self) -> Vec<UpdateExpr> {
        self.shared.history.lock().unwrap().clone()
    }

    fn submit(&self, cmd: Command<B>) -> Result<(), StorageError> {
        let guard = self.tx.lock().unwrap();
        match guard.as_ref() {
            Some(tx) => tx.send(cmd).map_err(|_| {
                StorageError::io(
                    "the service committer has stopped; no further writes are possible",
                )
            }),
            None => stopped(),
        }
    }

    /// Durably apply one update through the group-commit path.  Blocks until
    /// the batch carrying this update has hit the log (and, outside
    /// [`SyncPolicy::OnCheckpoint`], been fsynced).
    pub fn update(&self, update: UpdateExpr) -> UpdateOutcome<B::Error> {
        let slot = Slot::new();
        self.submit(Command::Update(update, Arc::clone(&slot)))
            .map_err(DurableError::Storage)?;
        match slot.wait() {
            Some(outcome) => outcome,
            None => Err(DurableError::Storage(StorageError::io(
                "the committer did not answer within the stall timeout",
            ))),
        }
    }

    /// Snapshot-and-truncate through the committer (serialized with the
    /// update stream).  Returns the new generation.
    pub fn checkpoint(&self) -> Result<u64, StorageError> {
        let slot = Slot::new();
        self.submit(Command::Checkpoint(Arc::clone(&slot)))?;
        match slot.wait() {
            Some(res) => res,
            None => Err(StorageError::io(
                "the committer did not answer within the stall timeout",
            )),
        }
    }

    /// Stop the committer and close the underlying durable store, surfacing
    /// any final-sync or poison diagnosis.  Returns the closing durability
    /// counters.  Snapshots already pinned stay readable.
    pub fn close(&self) -> Result<DurabilityStats, StorageError> {
        let slot = Slot::new();
        {
            let mut guard = self.tx.lock().unwrap();
            match guard.take() {
                Some(tx) => tx
                    .send(Command::Shutdown(Arc::clone(&slot)))
                    .map_err(|_| StorageError::io("the service committer has already stopped"))?,
                None => return stopped(),
            }
        }
        let result = match slot.wait() {
            Some(res) => res,
            None => Err(StorageError::io(
                "the committer did not answer the shutdown within the stall timeout",
            )),
        };
        if let Some(handle) = self.committer.lock().unwrap().take() {
            let _ = handle.join();
        }
        result
    }
}

/// The committer: the only thread that touches the [`Durable`] store.
fn commit_loop<B>(mut durable: Durable<B>, rx: Receiver<Command<B>>, shared: Arc<Shared<B>>)
where
    B: Persist + WriteBackend + Clone + Send + Sync + 'static,
{
    let (max_batch, max_wait) = match durable.sync_policy() {
        SyncPolicy::GroupCommit {
            max_batch,
            max_wait,
        } => (max_batch.max(1), max_wait),
        _ => (1, Duration::ZERO),
    };
    // Non-update commands observed while assembling a batch commit *after*
    // that batch, preserving the arrival order of durability boundaries.
    let mut deferred: VecDeque<Command<B>> = VecDeque::new();
    loop {
        let cmd = match deferred.pop_front() {
            Some(c) => c,
            None => match rx.recv() {
                Ok(c) => c,
                // Every handle dropped its sender without a shutdown: stop
                // quietly, best-effort closing the log.
                Err(_) => {
                    let _ = durable.close();
                    return;
                }
            },
        };
        match cmd {
            Command::Shutdown(slot) => {
                let stats = durable.stats();
                slot.fill(durable.close().map(|_| stats));
                return;
            }
            Command::Checkpoint(slot) => {
                let res = durable.checkpoint();
                if res.is_ok() {
                    publish(&durable, &shared, &[]);
                }
                slot.fill(res);
            }
            Command::Update(first, first_slot) => {
                let coalesce_started = Instant::now();
                let mut updates = vec![first];
                let mut slots = vec![first_slot];
                if max_batch > 1 {
                    let deadline = Instant::now() + max_wait;
                    while updates.len() < max_batch {
                        let left = deadline.saturating_duration_since(Instant::now());
                        let next = if left.is_zero() {
                            match rx.try_recv() {
                                Ok(c) => c,
                                Err(_) => break,
                            }
                        } else {
                            match rx.recv_timeout(left) {
                                Ok(c) => c,
                                Err(RecvTimeoutError::Timeout) => break,
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        };
                        match next {
                            Command::Update(u, s) => {
                                updates.push(u);
                                slots.push(s);
                            }
                            other => {
                                // A durability boundary: seal the batch here.
                                deferred.push_back(other);
                                break;
                            }
                        }
                    }
                }
                if let Some(observer) = &shared.observer {
                    let metrics = observer.metrics();
                    metrics
                        .histogram("store.commit.coalesce_ns")
                        .record_duration(coalesce_started.elapsed());
                    metrics
                        .histogram("store.commit.batch_size")
                        .record(updates.len() as u64);
                }
                let apply_started = Instant::now();
                match durable.apply_batch(&updates) {
                    Ok(outcomes) => {
                        if let Some(observer) = &shared.observer {
                            observer
                                .metrics()
                                .histogram("store.commit.apply_ns")
                                .record_duration(apply_started.elapsed());
                        }
                        shared.commit_batches.fetch_add(1, Ordering::Relaxed);
                        shared
                            .batched_updates
                            .fetch_add(updates.len() as u64, Ordering::Relaxed);
                        publish(&durable, &shared, &updates);
                        for (slot, outcome) in slots.into_iter().zip(outcomes) {
                            slot.fill(outcome.map_err(DurableError::Backend));
                        }
                    }
                    Err(e) => {
                        // The log itself failed: nothing was applied, every
                        // waiter learns the same storage diagnosis.
                        for slot in slots {
                            slot.fill(Err(DurableError::Storage(e.clone())));
                        }
                    }
                }
            }
        }
    }
}

fn publish<B>(durable: &Durable<B>, shared: &Shared<B>, committed: &[UpdateExpr])
where
    B: Persist + WriteBackend + Clone,
{
    let mut published = shared.published.lock().unwrap();
    let seq = published.seq + committed.len() as u64;
    if shared.record_history && !committed.is_empty() {
        shared
            .history
            .lock()
            .unwrap()
            .extend(committed.iter().cloned());
    }
    *published = Arc::new(StoreSnapshot {
        backend: durable.inner().clone(),
        seq,
        generation: durable.generation(),
        _pin: pin_guard(&shared.observer),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_core::wsd::example_census_wsd;
    use ws_core::Wsd;
    use ws_relational::Predicate;
    use ws_storage::MemVfs;

    fn boxed(vfs: &MemVfs) -> Box<dyn Vfs> {
        Box::new(vfs.clone())
    }

    fn delete(m: i64) -> UpdateExpr {
        UpdateExpr::delete("R", Predicate::eq_const("M", m))
    }

    #[test]
    fn snapshots_are_immutable_and_pinned_across_commits() {
        let vfs = MemVfs::new();
        let store: ConcurrentStore<Wsd> =
            ConcurrentStore::create(boxed(&vfs), example_census_wsd(), SyncPolicy::EveryRecord)
                .unwrap();
        let before = store.snapshot();
        assert_eq!(before.seq, 0);
        let mass = store.update(delete(4)).unwrap();
        assert!(mass > 0.0);
        let after = store.snapshot();
        assert_eq!(after.seq, 1);
        // The pinned image still shows the pre-update state.
        assert_eq!(
            before.backend.encode_to_vec(),
            example_census_wsd().encode_to_vec()
        );
        assert_ne!(
            before.backend.encode_to_vec(),
            after.backend.encode_to_vec()
        );
        assert_eq!(store.stats().snapshots_pinned, 2);
        store.close().unwrap();
    }

    #[test]
    fn group_commit_coalesces_concurrent_writers() {
        let vfs = MemVfs::new();
        let store: ConcurrentStore<Wsd> = ConcurrentStore::create_recording(
            boxed(&vfs),
            example_census_wsd(),
            SyncPolicy::GroupCommit {
                max_batch: 16,
                max_wait: Duration::from_millis(20),
            },
        )
        .unwrap();
        let synced_before = vfs.sync_count();
        let mut threads = Vec::new();
        for m in [1i64, 2, 3, 4, 9] {
            let store = store.clone();
            threads.push(std::thread::spawn(move || store.update(delete(m))));
        }
        for t in threads {
            t.join().unwrap().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.batched_updates, 5);
        assert!(
            stats.commit_batches <= 5,
            "batches {} should not exceed updates",
            stats.commit_batches
        );
        // Each batch costs exactly one fsync.
        assert_eq!(
            vfs.sync_count() - synced_before,
            stats.commit_batches,
            "one fsync per commit batch"
        );
        assert_eq!(store.seq(), 5);
        assert_eq!(store.history().len(), 5);
        store.close().unwrap();

        // Recovery agrees with the published tail snapshot.
        let reopened: Durable<Wsd> = Durable::open(boxed(&vfs)).unwrap();
        let mut serial = example_census_wsd();
        for u in store.history() {
            let _ = ws_core::ops::update::apply_update(&mut serial, &u);
        }
        assert_eq!(
            reopened.inner().encode_to_vec(),
            serial.encode_to_vec(),
            "recovered state equals the serial replay of the history"
        );
    }

    #[test]
    fn a_failed_update_is_delivered_to_its_caller_only() {
        let vfs = MemVfs::new();
        let store: ConcurrentStore<Wsd> = ConcurrentStore::create(
            boxed(&vfs),
            example_census_wsd(),
            SyncPolicy::GroupCommit {
                max_batch: 8,
                max_wait: Duration::from_millis(5),
            },
        )
        .unwrap();
        // An update against a relation that does not exist is rejected by
        // the backend: a deterministic failure, delivered as this one
        // caller's outcome (not as a batch-wide storage error).
        let bad = UpdateExpr::delete("NoSuchRelation", Predicate::eq_const("M", 4i64));
        let out = store.update(bad);
        assert!(matches!(out, Err(DurableError::Backend(_))));
        // The store still accepts and commits good updates afterwards.
        store.update(delete(4)).unwrap();
        store.close().unwrap();
    }

    #[test]
    fn writes_after_close_fail_cleanly_but_snapshots_survive() {
        let vfs = MemVfs::new();
        let store: ConcurrentStore<Wsd> =
            ConcurrentStore::create(boxed(&vfs), example_census_wsd(), SyncPolicy::EveryRecord)
                .unwrap();
        let other = store.clone();
        let pinned = other.snapshot();
        store.close().unwrap();
        let out = other.update(delete(4));
        assert!(matches!(out, Err(DurableError::Storage(_))));
        assert_eq!(
            pinned.backend.encode_to_vec(),
            example_census_wsd().encode_to_vec()
        );
    }
}
