//! # ws-server — a concurrent multi-session service over the world-set stack
//!
//! Everything below PR 8 was a library: one thread, one [`Session`], one
//! process.  The paper's pitch — managing `10^(10^6)` worlds *as a database
//! system* — implies the other half of a database system: many sessions at
//! once, isolation between them, and a client/server seam.  This crate adds
//! that half in three layers:
//!
//! * [`store`] — [`ConcurrentStore<B>`]: MVCC-style snapshot reads (readers
//!   pin an `Arc` image and never block on writers; old generations are
//!   reclaimed when the last reader drops) over a single *committer* thread
//!   that owns the [`Durable<B>`](ws_storage::Durable) store and coalesces
//!   concurrent updates into group-commit WAL batches — one batch frame, one
//!   fsync, per-caller outcomes.  The WAL append is the commit point, so a
//!   crash tears whole batches, never splits them.
//! * [`wire`] — a length-prefixed, CRC-framed binary protocol carrying the
//!   prepared-plan Session verbs (hello / prepare / execute with streamed
//!   row batches / confidence / apply / condition / checkpoint / stats),
//!   encoded with the same ws-storage codec the snapshot and WAL files use.
//! * [`server`] + [`client`] — a thread-per-connection TCP [`server`] whose
//!   connections re-pin snapshots and transparently re-prepare their plans
//!   when writers commit, and a blocking [`Client`] mirroring the Session
//!   API remotely.
//!
//! The `ws-serverd` binary serves a store directory; the repository-level
//! `tests/service_equivalence.rs` suite proves the concurrency story
//! differentially: every reader-observed snapshot equals a serial prefix of
//! the committed update sequence, bit-identically, on all five backends.
//!
//! ## Observability
//!
//! An observed store ([`ConcurrentStore::create_observed`] /
//! [`ConcurrentStore::open_observed`]) threads one
//! [`Observer`](ws_obs::Observer) through every layer: the WAL reports
//! append/fsync/checkpoint/recovery timings, the committer reports batch
//! sizes and coalesce waits, snapshot generations report their lifetimes,
//! and each connection's session reports per-operator kernel timings and
//! query spans.  The registry is scrapeable two ways: the
//! [`Request::Metrics`] wire verb, and the [`metrics_http`] endpoint
//! (Prometheus text over plain HTTP, `ws-serverd serve --metrics`).
//!
//! [`Session`]: maybms::Session

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics_http;
pub mod server;
pub mod store;
pub mod wire;

pub use client::{Client, RemotePlan, ServiceError};
pub use metrics_http::{serve_metrics, MetricsHandle};
pub use server::{serve, spawn, ServerHandle};
pub use store::{ConcurrentStore, StoreSnapshot, StoreStats, UpdateOutcome};
pub use wire::{Request, Response, WIRE_VERSION};
