//! The TCP server: one [`ConcurrentStore`] served to many connections.
//!
//! Each connection runs on its own thread and owns a private
//! [`Session<AnyBackend>`] built from a pinned store snapshot.  Queries
//! (`Prepare`/`Execute`/`Confidence`) run against that pinned image without
//! taking any store lock; before each query the connection compares its
//! pinned sequence number with the store's and, if writers have committed in
//! the meantime, re-pins the newest snapshot and transparently re-prepares
//! its registered plans through the session plan cache.  Writes
//! (`Apply`/`Condition`/`Checkpoint`) go straight to the store's
//! group-commit committer, so concurrent connections' updates coalesce into
//! shared WAL batches.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use maybms::{AnyBackend, Prepared, Session, SessionBackend, SessionStats, UpdateExpr};
use ws_relational::RaExpr;

use crate::store::ConcurrentStore;
use crate::wire::{read_frame, write_frame, CountingStream, Request, Response, WIRE_VERSION};

/// Rows per [`Response::RowBatch`] frame.
const ROW_BATCH: usize = 256;

/// Serve `store` on `listener` until `stop` is raised (by a client
/// `Shutdown` verb or [`ServerHandle::shutdown`]).
///
/// Blocks the calling thread; connection handlers run on their own threads
/// and are joined before this returns.  The store itself is *not* closed —
/// the caller decides when the committer stops.
pub fn serve(
    listener: TcpListener,
    store: ConcurrentStore<AnyBackend>,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let store = store.clone();
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            // A connection error tears down that one connection only.
            let _ = handle_connection(stream, store, stop, addr);
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

/// A running server: its address, its stop flag, and the accept thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<io::Result<()>>>,
}

/// Bind `addr` (use port 0 for an ephemeral port) and serve `store` on a
/// background thread.
pub fn spawn(
    addr: impl ToSocketAddrs,
    store: ConcurrentStore<AnyBackend>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let serve_stop = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("ws-server-accept".into())
        .spawn(move || serve(listener, store, serve_stop))?;
    Ok(ServerHandle {
        addr: local,
        stop,
        join: Some(join),
    })
}

impl ServerHandle {
    /// The bound address (resolves an ephemeral port request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, and join it.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        // A throwaway connection unblocks the blocking accept.
        let _ = TcpStream::connect(self.addr);
        match self.join.take() {
            Some(join) => join
                .join()
                .map_err(|_| io::Error::other("the accept thread panicked"))?,
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = join.join();
        }
    }
}

/// Per-connection state: the pinned read session and the registered plans.
struct Conn {
    store: ConcurrentStore<AnyBackend>,
    /// The session over the pinned snapshot, tagged with the sequence number
    /// it was pinned at.  Rebuilt lazily when the store moves on.
    session: Option<(u64, Session<AnyBackend>)>,
    /// Plan handle → the lowered plan, the durable registration.
    plans: HashMap<u64, RaExpr>,
    /// Plan handle → the prepared form against the *current* session.
    prepared: HashMap<u64, Prepared>,
    next_plan: u64,
    /// Counters accumulated by sessions this connection already retired
    /// (each snapshot re-pin rebuilds the session, zeroing its counters).
    carried: SessionStats,
}

impl Conn {
    /// Pin the newest snapshot if the committed sequence moved, re-preparing
    /// every registered plan against the fresh session.
    fn refresh(&mut self) -> Result<(), maybms::Error> {
        let tip = self.store.seq();
        let stale = match &self.session {
            Some((seq, _)) => *seq != tip,
            None => true,
        };
        if stale {
            if let Some((_, old)) = &self.session {
                self.carried.absorb(&old.stats());
            }
            let snapshot = self.store.snapshot();
            let mut session = Session::new(snapshot.backend.clone());
            if let Some(observer) = self.store.observer() {
                session.set_observer(Arc::clone(observer));
            }
            self.prepared.clear();
            for (&id, plan) in &self.plans {
                let p = session.prepare(plan.clone())?;
                self.prepared.insert(id, p);
            }
            self.session = Some((snapshot.seq, session));
        }
        Ok(())
    }

    /// The pinned session ([`Conn::refresh`] must have succeeded first).
    fn session(&mut self) -> &mut Session<AnyBackend> {
        &mut self.session.as_mut().expect("session pinned by refresh").1
    }
}

fn error_response(e: &maybms::Error) -> Response {
    Response::Error {
        inconsistent: e.is_inconsistent(),
        message: e.to_string(),
    }
}

fn storage_error_response(e: &impl std::fmt::Display) -> Response {
    Response::Error {
        inconsistent: false,
        message: e.to_string(),
    }
}

fn handle_connection(
    stream: TcpStream,
    store: ConcurrentStore<AnyBackend>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
) -> io::Result<()> {
    let mut stream = CountingStream::new(stream);
    let mut conn = Conn {
        store,
        session: None,
        plans: HashMap::new(),
        prepared: HashMap::new(),
        next_plan: 1,
        carried: SessionStats::default(),
    };
    loop {
        // The trace id from the frame header is echoed on every response
        // frame of this request, so a client (or a wire capture) can match
        // responses to in-flight requests.
        let (trace, payload) = match read_frame(&mut stream)? {
            Some(p) => p,
            None => return Ok(()), // clean hang-up
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let resp = storage_error_response(&e).encode();
                write_frame(&mut stream, trace, &resp)?;
                continue;
            }
        };
        match request {
            Request::Hello { version } => {
                let resp = if version != WIRE_VERSION {
                    Response::Error {
                        inconsistent: false,
                        message: format!(
                            "wire version mismatch: client speaks {version}, server speaks {WIRE_VERSION}"
                        ),
                    }
                } else {
                    match conn.refresh() {
                        Ok(()) => Response::HelloOk {
                            version: WIRE_VERSION,
                            backend: conn.session().backend().backend_name().to_string(),
                            seq: conn.store.seq(),
                        },
                        Err(e) => error_response(&e),
                    }
                };
                write_frame(&mut stream, trace, &resp.encode())?;
            }
            Request::Prepare { plan } => {
                let resp = match conn.refresh() {
                    Ok(()) => match conn.session().prepare(plan.clone()) {
                        Ok(p) => {
                            let id = conn.next_plan;
                            conn.next_plan += 1;
                            let resp = Response::Prepared {
                                plan: id,
                                display: p.key().to_string(),
                                attrs: p.attrs().to_vec(),
                            };
                            conn.plans.insert(id, plan);
                            conn.prepared.insert(id, p);
                            resp
                        }
                        Err(e) => error_response(&e),
                    },
                    Err(e) => error_response(&e),
                };
                write_frame(&mut stream, trace, &resp.encode())?;
            }
            Request::Execute { plan } => {
                let rows = match conn.refresh() {
                    Ok(()) => match conn.prepared.get(&plan).cloned() {
                        Some(p) => match conn.session().execute(&p) {
                            Ok(cursor) => Ok(cursor.collect::<Vec<_>>()),
                            Err(e) => Err(error_response(&e)),
                        },
                        None => Err(Response::Error {
                            inconsistent: false,
                            message: format!("unknown plan handle {plan}"),
                        }),
                    },
                    Err(e) => Err(error_response(&e)),
                };
                match rows {
                    Ok(rows) => {
                        let mut chunks = rows.chunks(ROW_BATCH).peekable();
                        if chunks.peek().is_none() {
                            let resp = Response::RowBatch {
                                rows: Vec::new(),
                                done: true,
                            };
                            write_frame(&mut stream, trace, &resp.encode())?;
                        }
                        while let Some(chunk) = chunks.next() {
                            let resp = Response::RowBatch {
                                rows: chunk.to_vec(),
                                done: chunks.peek().is_none(),
                            };
                            write_frame(&mut stream, trace, &resp.encode())?;
                        }
                    }
                    Err(resp) => write_frame(&mut stream, trace, &resp.encode())?,
                }
            }
            Request::Confidence { plan } => {
                let resp = match conn.refresh() {
                    Ok(()) => match conn.prepared.get(&plan).cloned() {
                        Some(p) => match conn.session().confidence(&p) {
                            Ok(rows) => Response::Confidences { rows },
                            Err(e) => error_response(&e),
                        },
                        None => Response::Error {
                            inconsistent: false,
                            message: format!("unknown plan handle {plan}"),
                        },
                    },
                    Err(e) => error_response(&e),
                };
                write_frame(&mut stream, trace, &resp.encode())?;
            }
            Request::Apply { update } => {
                let resp = apply_through_store(&conn.store, update);
                write_frame(&mut stream, trace, &resp.encode())?;
            }
            Request::Condition { constraints } => {
                let resp = apply_through_store(&conn.store, UpdateExpr::condition(constraints));
                write_frame(&mut stream, trace, &resp.encode())?;
            }
            Request::Checkpoint => {
                let resp = match conn.store.checkpoint() {
                    Ok(generation) => Response::Checkpointed { generation },
                    Err(e) => storage_error_response(&e),
                };
                write_frame(&mut stream, trace, &resp.encode())?;
            }
            Request::Stats => {
                let resp = match conn.refresh() {
                    Ok(()) => {
                        let mut stats = conn.carried;
                        stats.absorb(&conn.session().stats());
                        let store_stats = conn.store.stats();
                        stats.snapshots_pinned = store_stats.snapshots_pinned;
                        stats.commit_batches = store_stats.commit_batches;
                        stats.batched_updates = store_stats.batched_updates;
                        stats.wire_bytes_in = stream.bytes_in();
                        stats.wire_bytes_out = stream.bytes_out();
                        Response::Stats {
                            summary: stats.to_string(),
                        }
                    }
                    Err(e) => error_response(&e),
                };
                write_frame(&mut stream, trace, &resp.encode())?;
            }
            Request::Metrics => {
                let text = match conn.store.observer() {
                    Some(observer) => observer.metrics().snapshot().render_prometheus(),
                    None => String::new(),
                };
                let resp = Response::Metrics { text };
                write_frame(&mut stream, trace, &resp.encode())?;
            }
            Request::Close => {
                write_frame(&mut stream, trace, &Response::Bye.encode())?;
                return Ok(());
            }
            Request::Shutdown => {
                write_frame(&mut stream, trace, &Response::Bye.encode())?;
                stop.store(true, Ordering::SeqCst);
                // Wake the accept loop so the flag is observed.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
        }
    }
}

/// Route one update through the committer and render the outcome.
fn apply_through_store(store: &ConcurrentStore<AnyBackend>, update: UpdateExpr) -> Response {
    match store.update(update) {
        Ok(mass) => Response::Applied {
            mass,
            seq: store.seq(),
        },
        Err(ws_storage::DurableError::Backend(e)) => error_response(&e),
        Err(ws_storage::DurableError::Storage(e)) => storage_error_response(&e),
    }
}
