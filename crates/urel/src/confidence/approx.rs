//! (ε, δ)-approximate confidence on U-relations: Monte-Carlo over the world
//! table.
//!
//! The confidence of a tuple is the probability of the DNF formed by its
//! descriptors over the independent world-table variables — the #P-hard
//! problem the Karp–Luby estimator was designed for.  Like the WSD estimator
//! ([`ws_core::confidence::approx`]), this module samples total assignments
//! of the *relevant* variables only (everything else marginalizes out) and
//! checks the DNF directly, giving the same additive (ε, δ) guarantee from
//! the shared Hoeffding bound
//! [`hoeffding_samples`](ws_relational::approx::hoeffding_samples):
//! after `n = ⌈ln(2/δ) / (2ε²)⌉` trials, `|p̂ − p| ≤ ε` with probability at
//! least `1 − δ`.
//!
//! Trials are drawn in fixed blocks seeded from `(seed, block index)` and
//! summed in block order, so every estimate is bit-identical for any
//! [`WorkerPool`] thread count; [`possible_with_confidence`] additionally
//! fans out per tuple-group (each possible tuple's DNF is independent),
//! deriving each group's seed from the tuple's index so estimates stay
//! uncorrelated.

use std::collections::BTreeSet;

use rand::Rng;
use ws_relational::approx::{block_seed, run_trial_blocks, ApproxConfig};
use ws_relational::{Tuple, WorkerPool};

use crate::database::UDatabase;
use crate::descriptor::WsDescriptor;
use crate::error::{Result, UrelError};
use crate::world::Assignment;

/// (ε, δ)-approximate confidence of `tuple` in `relation`, serial.
pub fn conf(udb: &UDatabase, relation: &str, tuple: &Tuple, config: &ApproxConfig) -> Result<f64> {
    conf_with(udb, relation, tuple, config, &WorkerPool::serial())
}

/// (ε, δ)-approximate confidence with Monte-Carlo blocks fanned out on
/// `pool`.  The estimate is identical for every thread count.
pub fn conf_with(
    udb: &UDatabase,
    relation: &str,
    tuple: &Tuple,
    config: &ApproxConfig,
    pool: &WorkerPool,
) -> Result<f64> {
    let descriptors = udb.relation(relation)?.descriptors_of(tuple);
    estimate_dnf(udb, &descriptors, config, pool)
}

/// Estimate the probability of the disjunction of `descriptors`.
fn estimate_dnf(
    udb: &UDatabase,
    descriptors: &[&WsDescriptor],
    config: &ApproxConfig,
    pool: &WorkerPool,
) -> Result<f64> {
    if descriptors.is_empty() {
        return Ok(0.0);
    }
    // A tuple with an empty descriptor is present in every world.
    if descriptors.iter().any(|d| d.is_empty()) {
        return Ok(1.0);
    }
    let variables: Vec<String> = descriptors
        .iter()
        .flat_map(|d| d.variables().map(str::to_string))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // Cumulative distributions of the relevant variables, for inverse-CDF
    // sampling.
    let cumulative: Vec<(String, Vec<f64>)> = variables
        .iter()
        .map(|v| {
            let mut acc = 0.0;
            let cdf = udb
                .world_table()
                .distribution(v)?
                .iter()
                .map(|p| {
                    acc += p;
                    acc
                })
                .collect();
            Ok::<_, UrelError>((v.clone(), cdf))
        })
        .collect::<Result<_>>()?;
    let samples = config
        .samples()
        .map_err(|e| UrelError::invalid(e.to_string()))?;
    let hits: usize = run_trial_blocks(pool, samples, config.seed, |rng, block_len| {
        // One assignment per block, variable names cloned once; its
        // `values_mut()` iterates in key order, which is exactly the order
        // of `cumulative` (both sorted by variable name).
        let mut assignment: Assignment = cumulative
            .iter()
            .map(|(var, _)| (var.clone(), 0usize))
            .collect();
        let mut hits = 0usize;
        for _ in 0..block_len {
            for ((_, cdf), slot) in cumulative.iter().zip(assignment.values_mut()) {
                let draw: f64 = rng.gen();
                *slot = cdf.partition_point(|&acc| acc <= draw).min(cdf.len() - 1);
            }
            if descriptors.iter().any(|d| d.satisfied_by(&assignment)) {
                hits += 1;
            }
        }
        hits
    })
    .into_iter()
    .sum();
    Ok(hits as f64 / samples as f64)
}

/// The possible tuples of `relation` with (ε, δ)-approximate confidences,
/// serial.
pub fn possible_with_confidence(
    udb: &UDatabase,
    relation: &str,
    config: &ApproxConfig,
) -> Result<Vec<(Tuple, f64)>> {
    possible_with_confidence_with(udb, relation, config, &WorkerPool::serial())
}

/// [`possible_with_confidence`] parallelized per tuple-group on `pool`:
/// each possible tuple's descriptor DNF is estimated independently, with a
/// per-tuple seed derived from the tuple's index.  Output order (and every
/// estimate) is identical for any thread count.
pub fn possible_with_confidence_with(
    udb: &UDatabase,
    relation: &str,
    config: &ApproxConfig,
    pool: &WorkerPool,
) -> Result<Vec<(Tuple, f64)>> {
    let possible = udb.relation(relation)?.possible_tuples();
    let rows = possible.rows();
    let indexed: Vec<(usize, &Tuple)> = rows.iter().enumerate().collect();
    let estimates = pool.map_coarse(&indexed, |(idx, tuple)| {
        // Per-tuple seed: keeps tuple estimates uncorrelated while the inner
        // sampler stays serial (the fan-out here is already per tuple).
        let tuple_config = config.with_seed(block_seed(config.seed, u64::MAX - *idx as u64));
        conf(udb, relation, tuple, &tuple_config)
    });
    rows.iter()
        .zip(estimates)
        .map(|(tuple, estimate)| Ok((tuple.clone(), estimate?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence as exact;
    use crate::convert::from_wsd;
    use ws_core::wsd::example_census_wsd;
    use ws_relational::{RaExpr, Value};

    #[test]
    fn estimates_land_within_epsilon_of_exact() {
        let mut udb = from_wsd(&example_census_wsd()).unwrap();
        ws_relational::engine::evaluate_query(&mut udb, &RaExpr::rel("R").project(vec!["S"]), "Q")
            .unwrap();
        let config = ApproxConfig::new(0.02, 0.01);
        for (tuple, exact) in exact::possible_with_confidence(&udb, "Q").unwrap() {
            let estimate = conf(&udb, "Q", &tuple, &config).unwrap();
            assert!(
                (estimate - exact).abs() <= config.epsilon,
                "conf({tuple}) ≈ {estimate}, exact {exact}"
            );
        }
    }

    #[test]
    fn estimates_are_identical_for_every_thread_count() {
        let udb = from_wsd(&example_census_wsd()).unwrap();
        let config = ApproxConfig::default();
        let serial = possible_with_confidence(&udb, "R", &config).unwrap();
        assert!(!serial.is_empty());
        for threads in [2usize, 4, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(
                possible_with_confidence_with(&udb, "R", &config, &pool).unwrap(),
                serial
            );
        }
    }

    #[test]
    fn certain_impossible_and_unknown_cases() {
        let udb = from_wsd(&example_census_wsd()).unwrap();
        let config = ApproxConfig::default();
        let absent = Tuple::from_iter([Value::int(999), Value::text("Nobody"), Value::int(1)]);
        assert_eq!(conf(&udb, "R", &absent, &config).unwrap(), 0.0);
        assert!(conf(&udb, "NOPE", &absent, &config).is_err());
        // Invalid (ε, δ) is rejected as soon as sampling is actually needed.
        let present = udb.relation("R").unwrap().possible_tuples().rows()[0].clone();
        assert!(conf(&udb, "R", &present, &ApproxConfig::new(0.5, 2.0)).is_err());

        // A certain tuple (empty descriptor) needs no sampling at all.
        let mut rel =
            ws_relational::Relation::new(ws_relational::Schema::new("S", &["X"]).unwrap());
        rel.push_values([5i64]).unwrap();
        let mut wsd = ws_core::Wsd::new();
        wsd.add_certain_relation(&rel).unwrap();
        let udb2 = from_wsd(&wsd).unwrap();
        assert_eq!(
            conf(&udb2, "S", &Tuple::from_iter([5i64]), &config).unwrap(),
            1.0
        );
    }
}
