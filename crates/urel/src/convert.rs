//! Conversion from world-set decompositions to U-relations.
//!
//! Every non-trivial WSD component (more than one local world) becomes one
//! world-table variable whose domain indexes the component's local worlds and
//! whose distribution is the component's probability column.  A tuple of a
//! represented relation then expands into one annotated row per combination
//! of local worlds of the components its fields live in — skipping the
//! combinations in which the tuple is absent (a `⊥` field) — with the
//! descriptor recording exactly that combination.
//!
//! The expansion is per-tuple (the same granularity as the tuple-level view
//! used for confidence computation in §6), so the result size is bounded by
//! the tuple-level normalization of the WSD, not by the number of worlds.

use std::collections::BTreeMap;

use ws_core::{FieldId, Wsd};
use ws_relational::{Schema, Tuple};

use crate::database::UDatabase;
use crate::descriptor::WsDescriptor;
use crate::error::Result;
use crate::urelation::URelation;

/// The world-table variable name assigned to a WSD component slot.
pub fn variable_for_slot(slot: usize) -> String {
    format!("c{slot}")
}

/// Convert a WSD into an equivalent U-relational database.
pub fn from_wsd(wsd: &Wsd) -> Result<UDatabase> {
    let mut udb = UDatabase::new();

    // One variable per uncertain component.
    let mut var_names: BTreeMap<usize, String> = BTreeMap::new();
    for (slot, comp) in wsd.components() {
        if comp.len() > 1 {
            let name = variable_for_slot(slot);
            udb.world_table_mut()
                .add_variable(&name, comp.rows.iter().map(|r| r.prob).collect())?;
            var_names.insert(slot, name);
        }
    }

    for rel_name in wsd.relation_names() {
        let meta = wsd.meta(rel_name)?.clone();
        let attr_names: Vec<&str> = meta.attrs.iter().map(|a| a.as_ref()).collect();
        let schema = Schema::new(rel_name, &attr_names)?;
        let mut urel = URelation::new(schema);

        for t in meta.live_tuples() {
            // The component slots this tuple's fields live in.
            let mut slots: Vec<usize> = Vec::new();
            for a in &meta.attrs {
                let slot = wsd.slot_of(&FieldId::new(rel_name, t, a.as_ref()))?;
                if !slots.contains(&slot) {
                    slots.push(slot);
                }
            }
            slots.sort_unstable();

            // Enumerate the combinations of local worlds of those slots.
            let mut combos: Vec<Vec<(usize, usize)>> = vec![Vec::new()];
            for &slot in &slots {
                let comp = wsd.component(slot)?;
                let mut next = Vec::with_capacity(combos.len() * comp.len());
                for combo in &combos {
                    for row in 0..comp.len() {
                        let mut extended = combo.clone();
                        extended.push((slot, row));
                        next.push(extended);
                    }
                }
                combos = next;
            }

            'combo: for combo in combos {
                let mut values = Vec::with_capacity(meta.attrs.len());
                for a in &meta.attrs {
                    let field = FieldId::new(rel_name, t, a.as_ref());
                    let slot = wsd.slot_of(&field)?;
                    let &(_, row) = combo
                        .iter()
                        .find(|(s, _)| *s == slot)
                        .expect("every involved slot is part of the combination");
                    let value = wsd.component(slot)?.value_at(row, &field)?;
                    if value.is_bottom() {
                        // The tuple is absent from the worlds of this combination.
                        continue 'combo;
                    }
                    values.push(value.clone());
                }
                let descriptor = WsDescriptor::of(
                    combo
                        .iter()
                        .filter_map(|(slot, row)| var_names.get(slot).map(|n| (n.clone(), *row))),
                )
                .expect("distinct slots cannot bind the same variable twice");
                urel.push(Tuple::new(values), descriptor)?;
            }
        }
        urel.absorb();
        udb.insert_relation(urel);
    }
    debug_assert!(udb.validate().is_ok());
    Ok(udb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_core::wsd::example_census_wsd;
    use ws_relational::Value;

    #[test]
    fn census_example_round_trips_through_u_relations() {
        let wsd = example_census_wsd();
        let udb = from_wsd(&wsd).unwrap();
        assert!(udb.validate().is_ok());
        // Same number of worlds (the or-set of component choices).
        assert_eq!(udb.world_count(), wsd.world_count());

        // The represented world-sets coincide (compare world by world).
        let wsd_worlds = wsd.enumerate_worlds(1 << 20).unwrap();
        let u_worlds = udb.enumerate_worlds(1 << 20).unwrap();
        assert_eq!(wsd_worlds.len(), u_worlds.len());
        for (db, p) in &wsd_worlds {
            let matching: f64 = u_worlds
                .iter()
                .filter(|(u, _)| u.relation("R").unwrap().set_eq(db.relation("R").unwrap()))
                .map(|(_, q)| q)
                .sum();
            assert!(
                (matching - p).abs() < 1e-9,
                "world probability mismatch: {matching} vs {p}"
            );
        }
    }

    #[test]
    fn certain_relations_need_no_variables() {
        let mut rel = ws_relational::Relation::new(Schema::new("S", &["X", "Y"]).unwrap());
        rel.push_values([1i64, 2i64]).unwrap();
        rel.push_values([3i64, 4i64]).unwrap();
        let mut wsd = Wsd::new();
        wsd.add_certain_relation(&rel).unwrap();
        let udb = from_wsd(&wsd).unwrap();
        assert!(udb.world_table().is_empty());
        assert_eq!(udb.world_count(), 1);
        let u = udb.relation("S").unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.rows().iter().all(|(_, d)| d.is_empty()));
    }

    #[test]
    fn or_set_fields_become_one_row_per_alternative() {
        // One tuple with a 3-way or-set field: three annotated rows over one
        // ternary variable.
        let mut wsd = Wsd::new();
        wsd.register_relation("T", &["A", "B"], 1).unwrap();
        wsd.set_certain(FieldId::new("T", 0, "A"), Value::int(7))
            .unwrap();
        wsd.set_uniform(
            FieldId::new("T", 0, "B"),
            vec![Value::int(1), Value::int(2), Value::int(3)],
        )
        .unwrap();
        let udb = from_wsd(&wsd).unwrap();
        assert_eq!(udb.world_table().len(), 1);
        let u = udb.relation("T").unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.possible_tuples().len(), 3);
    }
}
