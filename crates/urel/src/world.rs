//! The world table: independent finite random variables.
//!
//! U-relations factor a finite world-set into a set of independent variables
//! `x` with finite domains `{0, …, k−1}` and a probability for each
//! assignment `x ↦ i`.  A possible world corresponds to one total assignment;
//! its probability is the product of the chosen assignment probabilities.
//! This is exactly the role the component relations play in a WSD — the
//! conversion in [`crate::convert`] maps every non-trivial component to one
//! variable whose domain indexes the component's local worlds.

use std::collections::BTreeMap;

use crate::error::{Result, UrelError};

/// A total assignment of domain indices to (a subset of) the variables.
pub type Assignment = BTreeMap<String, usize>;

/// The table of independent random variables and their distributions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorldTable {
    /// Variable name → probability of each domain index.
    vars: BTreeMap<String, Vec<f64>>,
}

impl WorldTable {
    /// An empty world table (a single, certain world).
    pub fn new() -> Self {
        WorldTable::default()
    }

    /// Declare a variable with the given assignment probabilities.
    ///
    /// The probabilities must be non-negative and sum to one (within float
    /// tolerance); the domain is `0..probs.len()`.
    pub fn add_variable(&mut self, name: impl Into<String>, probs: Vec<f64>) -> Result<()> {
        let name = name.into();
        if probs.is_empty() {
            return Err(UrelError::invalid(format!(
                "variable `{name}` has an empty domain"
            )));
        }
        if probs.iter().any(|p| !(0.0..=1.0 + 1e-9).contains(p)) {
            return Err(UrelError::invalid(format!(
                "variable `{name}` has an out-of-range probability"
            )));
        }
        let total: f64 = probs.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(UrelError::invalid(format!(
                "probabilities of variable `{name}` sum to {total}, not 1"
            )));
        }
        if self.vars.contains_key(&name) {
            return Err(UrelError::invalid(format!(
                "variable `{name}` declared twice"
            )));
        }
        self.vars.insert(name, probs);
        Ok(())
    }

    /// Declare a variable with a uniform distribution over `domain_size`
    /// values.
    pub fn add_uniform_variable(
        &mut self,
        name: impl Into<String>,
        domain_size: usize,
    ) -> Result<()> {
        if domain_size == 0 {
            return Err(UrelError::invalid(
                "uniform variable needs a non-empty domain",
            ));
        }
        self.add_variable(name, vec![1.0 / domain_size as f64; domain_size])
    }

    /// Whether the variable is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Remove a variable from the table (used by conditioning, which merges
    /// correlated variables into one composite variable).  Descriptors still
    /// referencing the variable become invalid; callers must rewrite them.
    pub(crate) fn remove_variable(&mut self, name: &str) -> Result<()> {
        self.vars
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| UrelError::UnknownVariable(name.to_string()))
    }

    /// The declared variable names.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.vars.keys().map(String::as_str)
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variable is declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The domain size of a variable.
    pub fn domain_size(&self, name: &str) -> Result<usize> {
        Ok(self.distribution(name)?.len())
    }

    /// The probability of assignment `name ↦ index`.
    pub fn prob(&self, name: &str, index: usize) -> Result<f64> {
        let dist = self.distribution(name)?;
        dist.get(index).copied().ok_or_else(|| {
            UrelError::invalid(format!(
                "index {index} outside the domain of `{name}` (size {})",
                dist.len()
            ))
        })
    }

    /// The full distribution of one variable.
    pub fn distribution(&self, name: &str) -> Result<&[f64]> {
        self.vars
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| UrelError::UnknownVariable(name.to_string()))
    }

    /// The number of total assignments (possible worlds): the product of the
    /// domain sizes, saturating at `u128::MAX`.
    pub fn assignment_count(&self) -> u128 {
        self.vars
            .values()
            .fold(1u128, |acc, d| acc.saturating_mul(d.len() as u128))
    }

    /// The probability of a (partial) assignment: the product of the chosen
    /// probabilities; unmentioned variables are marginalized out.
    pub fn assignment_probability(&self, assignment: &Assignment) -> Result<f64> {
        let mut p = 1.0;
        for (var, &idx) in assignment {
            p *= self.prob(var, idx)?;
        }
        Ok(p)
    }

    /// Enumerate every total assignment over the given variables together
    /// with its marginal probability.
    ///
    /// Fails with [`UrelError::ExactTooLarge`] if more than `limit`
    /// assignments would be produced.
    pub fn enumerate_assignments(
        &self,
        variables: &[String],
        limit: u128,
    ) -> Result<Vec<(Assignment, f64)>> {
        let mut count: u128 = 1;
        for v in variables {
            count = count.saturating_mul(self.domain_size(v)? as u128);
        }
        if count > limit {
            return Err(UrelError::ExactTooLarge {
                variables: variables.len(),
                assignments: count,
            });
        }
        let mut out: Vec<(Assignment, f64)> = vec![(Assignment::new(), 1.0)];
        for v in variables {
            let dist = self.distribution(v)?.to_vec();
            let mut next = Vec::with_capacity(out.len() * dist.len());
            for (assignment, p) in &out {
                for (idx, q) in dist.iter().enumerate() {
                    let mut extended = assignment.clone();
                    extended.insert(v.clone(), idx);
                    next.push((extended, p * q));
                }
            }
            out = next;
        }
        Ok(out)
    }

    /// Enumerate every total assignment over *all* variables.
    pub fn enumerate_all(&self, limit: u128) -> Result<Vec<(Assignment, f64)>> {
        let names: Vec<String> = self.vars.keys().cloned().collect();
        self.enumerate_assignments(&names, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declaring_and_querying_variables() {
        let mut w = WorldTable::new();
        assert!(w.is_empty());
        w.add_variable("x", vec![0.2, 0.8]).unwrap();
        w.add_uniform_variable("y", 4).unwrap();
        assert_eq!(w.len(), 2);
        assert!(w.contains("x") && !w.contains("z"));
        assert_eq!(w.domain_size("x").unwrap(), 2);
        assert_eq!(w.domain_size("y").unwrap(), 4);
        assert!((w.prob("x", 1).unwrap() - 0.8).abs() < 1e-12);
        assert!((w.prob("y", 3).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(w.assignment_count(), 8);
        assert_eq!(w.variables().collect::<Vec<_>>(), vec!["x", "y"]);
    }

    #[test]
    fn invalid_declarations_are_rejected() {
        let mut w = WorldTable::new();
        assert!(w.add_variable("x", vec![]).is_err());
        assert!(w.add_variable("x", vec![0.5, 0.6]).is_err());
        assert!(w.add_variable("x", vec![1.5, -0.5]).is_err());
        assert!(w.add_uniform_variable("x", 0).is_err());
        w.add_variable("x", vec![1.0]).unwrap();
        assert!(
            w.add_variable("x", vec![1.0]).is_err(),
            "duplicate declaration"
        );
        assert!(w.prob("x", 3).is_err());
        assert!(w.prob("nope", 0).is_err());
        assert!(w.distribution("nope").is_err());
    }

    #[test]
    fn assignment_probabilities_multiply() {
        let mut w = WorldTable::new();
        w.add_variable("x", vec![0.2, 0.8]).unwrap();
        w.add_variable("y", vec![0.5, 0.5]).unwrap();
        let mut a = Assignment::new();
        a.insert("x".into(), 1);
        a.insert("y".into(), 0);
        assert!((w.assignment_probability(&a).unwrap() - 0.4).abs() < 1e-12);
        // Partial assignments marginalize the rest out.
        let mut partial = Assignment::new();
        partial.insert("x".into(), 0);
        assert!((w.assignment_probability(&partial).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn enumeration_covers_all_assignments_and_sums_to_one() {
        let mut w = WorldTable::new();
        w.add_variable("x", vec![0.2, 0.8]).unwrap();
        w.add_uniform_variable("y", 3).unwrap();
        let all = w.enumerate_all(1 << 20).unwrap();
        assert_eq!(all.len(), 6);
        let total: f64 = all.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Enumerating a subset marginalizes correctly.
        let xs = w
            .enumerate_assignments(&["x".to_string()], 1 << 20)
            .unwrap();
        assert_eq!(xs.len(), 2);
        assert!((xs.iter().map(|(_, p)| p).sum::<f64>() - 1.0).abs() < 1e-12);
        // The limit is enforced.
        assert!(matches!(
            w.enumerate_all(3),
            Err(UrelError::ExactTooLarge { .. })
        ));
    }
}
