//! The U-database: a world table plus a catalog of U-relations.

use std::collections::BTreeMap;

use ws_relational::Database;

use crate::error::{Result, UrelError};
use crate::urelation::URelation;
use crate::world::{Assignment, WorldTable};

/// A complete U-relational database: the shared [`WorldTable`] and the named
/// [`URelation`]s whose descriptors refer to its variables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UDatabase {
    world_table: WorldTable,
    relations: BTreeMap<String, URelation>,
}

impl UDatabase {
    /// An empty U-database (one world, no relations).
    pub fn new() -> Self {
        UDatabase::default()
    }

    /// Shared access to the world table.
    pub fn world_table(&self) -> &WorldTable {
        &self.world_table
    }

    /// Mutable access to the world table (for declaring variables).
    pub fn world_table_mut(&mut self) -> &mut WorldTable {
        &mut self.world_table
    }

    /// Insert (or replace) a U-relation under the name of its schema.
    pub fn insert_relation(&mut self, relation: URelation) {
        self.relations
            .insert(relation.schema().relation().to_string(), relation);
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&URelation> {
        self.relations
            .get(name)
            .ok_or_else(|| UrelError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to a relation (used by the update verbs).
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut URelation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| UrelError::UnknownRelation(name.to_string()))
    }

    /// Iterate mutably over every relation (used by conditioning, which
    /// rewrites the descriptors of the whole catalog).
    pub(crate) fn relations_mut(&mut self) -> impl Iterator<Item = &mut URelation> {
        self.relations.values_mut()
    }

    /// Whether a relation is present.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Remove a relation, returning it if present.
    pub fn remove_relation(&mut self, name: &str) -> Option<URelation> {
        self.relations.remove(name)
    }

    /// The names of all relations.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of annotated rows across all relations — the
    /// representation size the blow-up comparisons report.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(URelation::len).sum()
    }

    /// Validate that every descriptor only references declared variables with
    /// in-range indices.
    pub fn validate(&self) -> Result<()> {
        for relation in self.relations.values() {
            for (_, descriptor) in relation.rows() {
                for (var, idx) in descriptor.bindings() {
                    let size = self.world_table.domain_size(var)?;
                    if idx >= size {
                        return Err(UrelError::invalid(format!(
                            "descriptor binds `{var}` to {idx}, outside its domain of size {size}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of represented worlds: the number of total assignments.
    pub fn world_count(&self) -> u128 {
        self.world_table.assignment_count()
    }

    /// The ordinary relational database obtained in the world described by a
    /// total assignment.
    pub fn instantiate(&self, assignment: &Assignment) -> Database {
        let mut db = Database::new();
        for relation in self.relations.values() {
            db.insert_relation(relation.instantiate(assignment));
        }
        db
    }

    /// Enumerate every world with its probability (testing / oracle use).
    ///
    /// Fails with [`UrelError::ExactTooLarge`] when more than `limit` worlds
    /// would be produced.
    pub fn enumerate_worlds(&self, limit: u128) -> Result<Vec<(Database, f64)>> {
        let assignments = self.world_table.enumerate_all(limit)?;
        Ok(assignments
            .into_iter()
            .map(|(a, p)| (self.instantiate(&a), p))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::WsDescriptor;
    use ws_relational::{Schema, Tuple, Value};

    fn sample() -> UDatabase {
        let mut db = UDatabase::new();
        db.world_table_mut()
            .add_variable("x", vec![0.3, 0.7])
            .unwrap();
        let mut r = URelation::new(Schema::new("R", &["A"]).unwrap());
        r.push(
            Tuple::from_iter([Value::int(1)]),
            WsDescriptor::bind("x", 0),
        )
        .unwrap();
        r.push(
            Tuple::from_iter([Value::int(2)]),
            WsDescriptor::bind("x", 1),
        )
        .unwrap();
        r.push(Tuple::from_iter([Value::int(3)]), WsDescriptor::empty())
            .unwrap();
        db.insert_relation(r);
        db
    }

    #[test]
    fn catalog_management() {
        let mut db = sample();
        assert!(!db.is_empty());
        assert_eq!(db.len(), 1);
        assert_eq!(db.relation_names(), vec!["R"]);
        assert!(db.contains_relation("R"));
        assert!(db.relation("R").is_ok());
        assert!(db.relation("S").is_err());
        assert_eq!(db.total_rows(), 3);
        assert!(db.remove_relation("R").is_some());
        assert!(db.remove_relation("R").is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn validation_catches_out_of_range_descriptors() {
        let mut db = sample();
        assert!(db.validate().is_ok());
        let mut bad = URelation::new(Schema::new("S", &["B"]).unwrap());
        bad.push(
            Tuple::from_iter([Value::int(9)]),
            WsDescriptor::bind("x", 5),
        )
        .unwrap();
        db.insert_relation(bad);
        assert!(db.validate().is_err());
        let mut unknown = URelation::new(Schema::new("T", &["C"]).unwrap());
        unknown
            .push(
                Tuple::from_iter([Value::int(9)]),
                WsDescriptor::bind("z", 0),
            )
            .unwrap();
        db.remove_relation("S");
        db.insert_relation(unknown);
        assert!(db.validate().is_err());
    }

    #[test]
    fn enumeration_matches_the_descriptor_semantics() {
        let db = sample();
        assert_eq!(db.world_count(), 2);
        let worlds = db.enumerate_worlds(16).unwrap();
        assert_eq!(worlds.len(), 2);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // World x=0 contains tuples 1 and 3; world x=1 contains 2 and 3.
        let sizes: Vec<usize> = worlds
            .iter()
            .map(|(w, _)| w.relation("R").unwrap().len())
            .collect();
        assert_eq!(sizes, vec![2, 2]);
        for (world, _) in &worlds {
            assert!(world
                .relation("R")
                .unwrap()
                .contains(&Tuple::from_iter([Value::int(3)])));
        }
    }
}
