//! World-set descriptors: the per-tuple presence conditions of U-relations.
//!
//! A descriptor is a *partial* assignment of world-table variables.  A tuple
//! annotated with descriptor `d` belongs to exactly those worlds whose total
//! assignment extends `d`.  The empty descriptor holds in every world, two
//! descriptors conjoin by merging their bindings (failing on a conflict), and
//! the probability of a descriptor is the product of the probabilities of its
//! bindings because the variables are independent.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::Result;
use crate::world::{Assignment, WorldTable};

/// A world-set descriptor: a consistent set of `variable ↦ domain index`
/// bindings.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WsDescriptor {
    bindings: BTreeMap<String, usize>,
}

impl WsDescriptor {
    /// The empty descriptor, holding in every world.
    pub fn empty() -> Self {
        WsDescriptor::default()
    }

    /// A descriptor with a single binding.
    pub fn bind(var: impl Into<String>, index: usize) -> Self {
        let mut d = WsDescriptor::empty();
        d.bindings.insert(var.into(), index);
        d
    }

    /// Build a descriptor from bindings; later duplicates of a variable must
    /// agree with earlier ones, otherwise `None` is returned.
    pub fn of<S: Into<String>>(bindings: impl IntoIterator<Item = (S, usize)>) -> Option<Self> {
        let mut d = WsDescriptor::empty();
        for (var, idx) in bindings {
            let var = var.into();
            match d.bindings.get(&var) {
                Some(&existing) if existing != idx => return None,
                _ => {
                    d.bindings.insert(var, idx);
                }
            }
        }
        Some(d)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the descriptor holds in every world.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// The binding of one variable, if any.
    pub fn get(&self, var: &str) -> Option<usize> {
        self.bindings.get(var).copied()
    }

    /// The bound variables.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.bindings.keys().map(String::as_str)
    }

    /// Iterate over the bindings.
    pub fn bindings(&self) -> impl Iterator<Item = (&str, usize)> {
        self.bindings.iter().map(|(v, &i)| (v.as_str(), i))
    }

    /// Conjoin two descriptors (the ⋈ of U-relations): the union of the
    /// bindings, or `None` if they bind some variable to different values —
    /// in which case no world satisfies both and the joined tuple is dropped.
    pub fn conjoin(&self, other: &WsDescriptor) -> Option<WsDescriptor> {
        let mut merged = self.bindings.clone();
        for (var, &idx) in &other.bindings {
            match merged.get(var) {
                Some(&existing) if existing != idx => return None,
                _ => {
                    merged.insert(var.clone(), idx);
                }
            }
        }
        Some(WsDescriptor { bindings: merged })
    }

    /// Whether the descriptor is satisfied by a total (or larger partial)
    /// assignment.
    pub fn satisfied_by(&self, assignment: &Assignment) -> bool {
        self.bindings
            .iter()
            .all(|(var, &idx)| assignment.get(var) == Some(&idx))
    }

    /// Whether `self` is at least as general as `other`: every world
    /// satisfying `other` also satisfies `self` (i.e. `self`'s bindings are a
    /// subset of `other`'s).  Used to absorb redundant tuple copies after
    /// projections and unions.
    pub fn generalizes(&self, other: &WsDescriptor) -> bool {
        self.bindings
            .iter()
            .all(|(var, &idx)| other.bindings.get(var) == Some(&idx))
    }

    /// The probability of the descriptor under the world table: the product
    /// of the probabilities of its bindings (variables are independent).
    pub fn probability(&self, world_table: &WorldTable) -> Result<f64> {
        let mut p = 1.0;
        for (var, &idx) in &self.bindings {
            p *= world_table.prob(var, idx)?;
        }
        Ok(p)
    }
}

impl fmt::Display for WsDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bindings.is_empty() {
            return write!(f, "⟨⟩");
        }
        write!(f, "⟨")?;
        for (i, (var, idx)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{var}={idx}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let d = WsDescriptor::of([("x", 1), ("y", 0)]).unwrap();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.get("x"), Some(1));
        assert_eq!(d.get("z"), None);
        assert_eq!(d.variables().collect::<Vec<_>>(), vec!["x", "y"]);
        assert_eq!(d.bindings().count(), 2);
        assert!(WsDescriptor::of([("x", 1), ("x", 2)]).is_none());
        assert!(WsDescriptor::of([("x", 1), ("x", 1)]).is_some());
        assert_eq!(WsDescriptor::empty().to_string(), "⟨⟩");
        assert_eq!(d.to_string(), "⟨x=1, y=0⟩");
    }

    #[test]
    fn conjoin_merges_and_detects_conflicts() {
        let a = WsDescriptor::bind("x", 1);
        let b = WsDescriptor::bind("y", 2);
        let c = WsDescriptor::bind("x", 0);
        let ab = a.conjoin(&b).unwrap();
        assert_eq!(ab.get("x"), Some(1));
        assert_eq!(ab.get("y"), Some(2));
        assert!(a.conjoin(&c).is_none());
        assert_eq!(a.conjoin(&a).unwrap(), a);
        assert_eq!(WsDescriptor::empty().conjoin(&a).unwrap(), a);
    }

    #[test]
    fn satisfaction_and_generalization() {
        let d = WsDescriptor::of([("x", 1)]).unwrap();
        let wider = WsDescriptor::of([("x", 1), ("y", 0)]).unwrap();
        let mut world = Assignment::new();
        world.insert("x".into(), 1);
        world.insert("y".into(), 0);
        assert!(d.satisfied_by(&world));
        assert!(wider.satisfied_by(&world));
        world.insert("x".into(), 0);
        assert!(!d.satisfied_by(&world));
        assert!(d.generalizes(&wider));
        assert!(!wider.generalizes(&d));
        assert!(WsDescriptor::empty().generalizes(&d));
        assert!(d.generalizes(&d));
    }

    #[test]
    fn probability_multiplies_independent_bindings() {
        let mut w = WorldTable::new();
        w.add_variable("x", vec![0.2, 0.8]).unwrap();
        w.add_variable("y", vec![0.5, 0.5]).unwrap();
        let d = WsDescriptor::of([("x", 1), ("y", 0)]).unwrap();
        assert!((d.probability(&w).unwrap() - 0.4).abs() < 1e-12);
        assert!((WsDescriptor::empty().probability(&w).unwrap() - 1.0).abs() < 1e-12);
        let unknown = WsDescriptor::bind("z", 0);
        assert!(unknown.probability(&w).is_err());
    }
}
