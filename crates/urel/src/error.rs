//! Error type of the U-relation layer.

use std::fmt;

/// Result alias of this crate.
pub type Result<T> = std::result::Result<T, UrelError>;

/// Errors raised by U-relation construction, querying and confidence
/// computation.
#[derive(Clone, Debug, PartialEq)]
pub enum UrelError {
    /// A relation name was not found in the U-database.
    UnknownRelation(String),
    /// A world-table variable was referenced but never declared.
    UnknownVariable(String),
    /// A malformed input (invalid probabilities, arity mismatch, …).
    Invalid(String),
    /// The requested operation is not supported on U-relations
    /// (e.g. relational difference, which is not a positive operator).
    Unsupported(String),
    /// Conditioning removed every possible world (no assignment satisfies
    /// the constraints).
    Inconsistent,
    /// Exact confidence computation would have to enumerate more assignments
    /// than the configured limit; use the Monte-Carlo estimator instead.
    ExactTooLarge {
        /// Number of relevant variables.
        variables: usize,
        /// Number of assignments that enumeration would require.
        assignments: u128,
    },
    /// An error bubbled up from the relational substrate.
    Relational(ws_relational::RelationalError),
    /// An error bubbled up from the WSD layer (conversions).
    Ws(ws_core::WsError),
}

impl UrelError {
    /// Convenience constructor for invalid-input errors.
    pub fn invalid(msg: impl Into<String>) -> Self {
        UrelError::Invalid(msg.into())
    }
}

impl fmt::Display for UrelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrelError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            UrelError::UnknownVariable(name) => write!(f, "unknown world-table variable `{name}`"),
            UrelError::Invalid(msg) => write!(f, "invalid input: {msg}"),
            UrelError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            UrelError::Inconsistent => write!(f, "world-set is inconsistent (no world remains)"),
            UrelError::ExactTooLarge {
                variables,
                assignments,
            } => write!(
                f,
                "exact confidence over {variables} variables needs {assignments} assignments; \
                 use approx_conf"
            ),
            UrelError::Relational(e) => write!(f, "relational error: {e}"),
            UrelError::Ws(e) => write!(f, "world-set error: {e}"),
        }
    }
}

impl std::error::Error for UrelError {}

impl From<ws_relational::RelationalError> for UrelError {
    fn from(e: ws_relational::RelationalError) -> Self {
        match e {
            ws_relational::RelationalError::Inconsistent => UrelError::Inconsistent,
            other => UrelError::Relational(other),
        }
    }
}

impl From<ws_core::WsError> for UrelError {
    fn from(e: ws_core::WsError) -> Self {
        UrelError::Ws(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offender() {
        assert!(UrelError::UnknownRelation("R".into())
            .to_string()
            .contains("R"));
        assert!(UrelError::UnknownVariable("x".into())
            .to_string()
            .contains("x"));
        assert!(UrelError::invalid("bad").to_string().contains("bad"));
        assert!(UrelError::Unsupported("difference".into())
            .to_string()
            .contains("difference"));
        let e = UrelError::ExactTooLarge {
            variables: 40,
            assignments: 1 << 40,
        };
        assert!(e.to_string().contains("40"));
        let rel_err: UrelError = ws_relational::RelationalError::UnknownRelation("S".into()).into();
        assert!(rel_err.to_string().contains("S"));
        let ws_err: UrelError = ws_core::WsError::invalid("oops").into();
        assert!(ws_err.to_string().contains("oops"));
    }
}
