//! # ws-urel — U-relations, the intensional refinement of WSDs
//!
//! The paper's discussion of query evaluation (§4) notes that join
//! selections, projections and differences can force WSD components to be
//! composed, blowing the representation up exponentially in the worst case,
//! and points to **U-relations** (Antova, Jansen, Koch, Olteanu, ICDE 2008)
//! as the follow-up representation that "encodes correlations in a more
//! intensional way" and thereby keeps every positive operator purely
//! relational.  This crate implements that representation as an extension of
//! the reproduction:
//!
//! * a [`world::WorldTable`] of independent finite variables (one per
//!   uncertain WSD component),
//! * [`descriptor::WsDescriptor`]s — partial variable assignments annotating
//!   tuples with the worlds they belong to,
//! * [`urelation::URelation`] / [`database::UDatabase`] — annotated relations
//!   and their catalog,
//! * [`convert::from_wsd`] — the WSD → U-relation translation,
//! * [`ops`] — positive relational algebra (selection, projection, product /
//!   θ-join, union, renaming) with pairwise descriptor conjunction,
//! * [`update`] — the update language (inserts, deletes, modifications,
//!   conditioning by world-table DNF rewriting) as the
//!   [`ws_relational::WriteBackend`] implementation, and
//! * [`confidence`] — exact and Monte-Carlo confidence computation.
//!
//! The `ablation_urel_join` bench compares the representation growth of a
//! join pipeline on WSDs (component composition) against U-relations.

pub mod confidence;
pub mod convert;
pub mod database;
pub mod descriptor;
pub mod error;
pub mod ops;
pub mod update;
pub mod urelation;
pub mod world;

pub use confidence::{
    approx_conf, conf, expected_cardinality, is_certain, possible_with_confidence,
    possible_with_confidence_with,
};
pub use convert::from_wsd;
pub use database::UDatabase;
pub use descriptor::WsDescriptor;
pub use error::{Result, UrelError};
#[allow(deprecated)] // the deprecated shim stays importable during migration
pub use ops::{evaluate_query, possible_answer};
pub use urelation::URelation;
pub use world::{Assignment, WorldTable};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::confidence::{
        approx_conf, conf, expected_cardinality, is_certain, possible_with_confidence,
    };
    pub use crate::convert::from_wsd;
    pub use crate::database::UDatabase;
    pub use crate::descriptor::WsDescriptor;
    pub use crate::error::{Result, UrelError};
    #[allow(deprecated)] // the deprecated shim stays importable during migration
    pub use crate::ops::{evaluate_query, possible_answer, possible_tuples};
    pub use crate::urelation::URelation;
    pub use crate::world::{Assignment, WorldTable};
}
