//! U-relations: relations whose tuples carry world-set descriptors.

use std::collections::BTreeSet;

use ws_relational::{Relation, Schema, Tuple};

use crate::descriptor::WsDescriptor;
use crate::error::{Result, UrelError};

/// A relation in which each tuple is annotated with the descriptor of the
/// worlds it belongs to.
///
/// The same tuple value may appear several times with different descriptors;
/// the tuple is then present in the union of the described world-sets.  This
/// is what makes positive relational algebra purely relational on
/// U-relations — no operator ever has to merge or compose descriptors beyond
/// per-row conjunction.
#[derive(Clone, Debug, PartialEq)]
pub struct URelation {
    schema: Schema,
    rows: Vec<(Tuple, WsDescriptor)>,
}

impl URelation {
    /// An empty U-relation over the given schema.
    pub fn new(schema: Schema) -> Self {
        URelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replace the schema (used by renaming operators).
    pub fn set_schema(&mut self, schema: Schema) -> Result<()> {
        if schema.arity() != self.schema.arity() {
            return Err(UrelError::invalid(format!(
                "cannot change arity from {} to {}",
                self.schema.arity(),
                schema.arity()
            )));
        }
        self.schema = schema;
        Ok(())
    }

    /// The annotated rows.
    pub fn rows(&self) -> &[(Tuple, WsDescriptor)] {
        &self.rows
    }

    /// Mutable access to the annotated rows (update verbs only; callers must
    /// keep tuple arities consistent with the schema).
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<(Tuple, WsDescriptor)> {
        &mut self.rows
    }

    /// Number of annotated rows (not the number of distinct tuples).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the U-relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append an annotated row.
    pub fn push(&mut self, tuple: Tuple, descriptor: WsDescriptor) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(UrelError::invalid(format!(
                "tuple arity {} does not match schema arity {} of `{}`",
                tuple.arity(),
                self.schema.arity(),
                self.schema.relation()
            )));
        }
        self.rows.push((tuple, descriptor));
        Ok(())
    }

    /// The distinct tuple values that occur in at least one world.
    pub fn possible_tuples(&self) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        let mut seen: BTreeSet<&Tuple> = BTreeSet::new();
        for (tuple, _) in &self.rows {
            if seen.insert(tuple) {
                out.push(tuple.clone())
                    .expect("schema matches by construction");
            }
        }
        out
    }

    /// All descriptors annotating a given tuple value.
    pub fn descriptors_of(&self, tuple: &Tuple) -> Vec<&WsDescriptor> {
        self.rows
            .iter()
            .filter(|(t, _)| t == tuple)
            .map(|(_, d)| d)
            .collect()
    }

    /// Remove redundant rows: duplicates, and rows whose descriptor is
    /// strictly less general than another descriptor of the same tuple
    /// (absorption: `t@⟨x=1⟩` makes `t@⟨x=1, y=0⟩` redundant).
    ///
    /// Returns the number of removed rows.
    pub fn absorb(&mut self) -> usize {
        let before = self.rows.len();
        let mut kept: Vec<(Tuple, WsDescriptor)> = Vec::with_capacity(self.rows.len());
        for (tuple, descriptor) in self.rows.drain(..) {
            // Skip if an already-kept row absorbs this one.
            if kept
                .iter()
                .any(|(t, d)| t == &tuple && d.generalizes(&descriptor))
            {
                continue;
            }
            // Drop already-kept rows this one absorbs.
            kept.retain(|(t, d)| !(t == &tuple && descriptor.generalizes(d) && *d != descriptor));
            kept.push((tuple, descriptor));
        }
        self.rows = kept;
        before - self.rows.len()
    }

    /// The tuples present in the world described by `assignment`.
    pub fn instantiate(&self, assignment: &crate::world::Assignment) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        let mut seen: BTreeSet<&Tuple> = BTreeSet::new();
        for (tuple, descriptor) in &self.rows {
            if descriptor.satisfied_by(assignment) && seen.insert(tuple) {
                out.push(tuple.clone())
                    .expect("schema matches by construction");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Assignment;
    use ws_relational::Value;

    fn schema() -> Schema {
        Schema::new("R", &["A", "B"]).unwrap()
    }

    fn tup(a: i64, b: i64) -> Tuple {
        Tuple::from_iter([Value::int(a), Value::int(b)])
    }

    #[test]
    fn pushing_and_possible_tuples() {
        let mut u = URelation::new(schema());
        assert!(u.is_empty());
        u.push(tup(1, 2), WsDescriptor::bind("x", 0)).unwrap();
        u.push(tup(1, 2), WsDescriptor::bind("x", 1)).unwrap();
        u.push(tup(3, 4), WsDescriptor::empty()).unwrap();
        assert_eq!(u.len(), 3);
        let possible = u.possible_tuples();
        assert_eq!(possible.len(), 2);
        assert_eq!(u.descriptors_of(&tup(1, 2)).len(), 2);
        assert_eq!(u.descriptors_of(&tup(9, 9)).len(), 0);
        // Arity mismatches are rejected.
        assert!(u
            .push(Tuple::from_iter([Value::int(1)]), WsDescriptor::empty())
            .is_err());
    }

    #[test]
    fn absorption_removes_redundant_rows() {
        let mut u = URelation::new(schema());
        let general = WsDescriptor::bind("x", 1);
        let specific = WsDescriptor::of([("x", 1), ("y", 0)]).unwrap();
        u.push(tup(1, 2), specific.clone()).unwrap();
        u.push(tup(1, 2), general.clone()).unwrap();
        u.push(tup(1, 2), general.clone()).unwrap(); // exact duplicate
        u.push(tup(3, 4), specific.clone()).unwrap(); // different tuple — kept
        let removed = u.absorb();
        assert_eq!(removed, 2);
        assert_eq!(u.len(), 2);
        assert_eq!(u.descriptors_of(&tup(1, 2)), vec![&general]);
        assert_eq!(u.descriptors_of(&tup(3, 4)), vec![&specific]);
    }

    #[test]
    fn instantiation_selects_the_right_world() {
        let mut u = URelation::new(schema());
        u.push(tup(1, 2), WsDescriptor::bind("x", 0)).unwrap();
        u.push(tup(3, 4), WsDescriptor::bind("x", 1)).unwrap();
        u.push(tup(5, 6), WsDescriptor::empty()).unwrap();
        let mut world = Assignment::new();
        world.insert("x".into(), 0);
        let rel = u.instantiate(&world);
        assert!(rel.contains(&tup(1, 2)));
        assert!(!rel.contains(&tup(3, 4)));
        assert!(rel.contains(&tup(5, 6)));
    }

    #[test]
    fn schema_replacement_preserves_arity() {
        let mut u = URelation::new(schema());
        u.push(tup(1, 2), WsDescriptor::empty()).unwrap();
        assert!(u.set_schema(Schema::new("S", &["C", "D"]).unwrap()).is_ok());
        assert_eq!(u.schema().relation().as_ref(), "S");
        assert!(u.set_schema(Schema::new("T", &["X"]).unwrap()).is_err());
    }
}
