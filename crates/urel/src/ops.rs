//! Positive relational algebra on U-relations.
//!
//! Section 4 of the paper observes that join selections, projections and
//! differences on WSDs may force component compositions and hence an
//! exponential growth of the representation, and points to U-relations as
//! the intensional refinement that avoids the blow-up: every positive
//! operator is a plain relational operation on the annotated rows —
//! descriptors are only *conjoined pairwise* (product/join) or copied
//! (selection, projection, union, renaming), never expanded.
//!
//! The physical operators here mirror the named-perspective algebra of
//! [`ws_relational::RaExpr`]; plan walking, optimization and θ-join
//! recognition live in the shared engine ([`ws_relational::engine`]), which
//! drives the [`QueryBackend`] implementation on [`UDatabase`].  The
//! non-positive difference operator is deliberately unsupported (the paper
//! evaluates differences via conditional confidence instead — see
//! `ws_core::conditional`).

use ws_relational::engine::{self, EngineConfig, ExecContext, QueryBackend, SchemaCatalog};
use ws_relational::{CmpOp, Predicate, RaExpr, RelationalError, Schema, Tuple};

use crate::database::UDatabase;
use crate::error::{Result, UrelError};
use crate::urelation::URelation;

/// Selection `σ_pred(src)`.
pub fn select(udb: &UDatabase, src: &str, pred: &Predicate) -> Result<URelation> {
    let input = udb.relation(src)?;
    let mut out = URelation::new(input.schema().clone());
    // Compile the predicate once so the hot loop needs no name lookups.
    // Compilation fails only on unknown attributes; those keep the per-row
    // path, whose short-circuit can mask the error row by row.
    match pred.compile(input.schema()) {
        Ok(compiled) => {
            for (tuple, descriptor) in input.rows() {
                if compiled.eval(tuple) {
                    out.push(tuple.clone(), descriptor.clone())?;
                }
            }
        }
        Err(_) => {
            for (tuple, descriptor) in input.rows() {
                if pred.eval(input.schema(), tuple)? {
                    out.push(tuple.clone(), descriptor.clone())?;
                }
            }
        }
    }
    Ok(out)
}

/// Projection `π_attrs(src)`.
pub fn project(udb: &UDatabase, src: &str, attrs: &[&str]) -> Result<URelation> {
    let input = udb.relation(src)?;
    let positions: Vec<usize> = attrs
        .iter()
        .map(|a| input.schema().position_of(a))
        .collect::<std::result::Result<_, _>>()?;
    let schema = input.schema().projected(attrs)?;
    let mut out = URelation::new(schema);
    for (tuple, descriptor) in input.rows() {
        out.push(tuple.project_positions(&positions), descriptor.clone())?;
    }
    out.absorb();
    Ok(out)
}

/// Product `left × right`: descriptors are conjoined; inconsistent pairs
/// (bindings of the same variable to different local worlds) are dropped
/// because no world contains both input tuples.
pub fn product(udb: &UDatabase, left: &str, right: &str, dst: &str) -> Result<URelation> {
    let l = udb.relation(left)?;
    let r = udb.relation(right)?;
    let schema = l.schema().product(r.schema(), dst)?;
    let mut out = URelation::new(schema);
    for (lt, ld) in l.rows() {
        for (rt, rd) in r.rows() {
            if let Some(descriptor) = ld.conjoin(rd) {
                out.push(lt.concat(rt), descriptor)?;
            }
        }
    }
    Ok(out)
}

/// θ-join `left ⋈_pred right`, evaluated as a filtered product without
/// materializing the non-matching pairs.
pub fn join(
    udb: &UDatabase,
    left: &str,
    right: &str,
    dst: &str,
    pred: &Predicate,
) -> Result<URelation> {
    let l = udb.relation(left)?;
    let r = udb.relation(right)?;
    let schema = l.schema().product(r.schema(), dst)?;
    let mut out = URelation::new(schema.clone());
    // Same compile-or-fallback split as `select`.
    let compiled = pred.compile(&schema).ok();
    for (lt, ld) in l.rows() {
        for (rt, rd) in r.rows() {
            let joined = lt.concat(rt);
            let keep = match &compiled {
                Some(c) => c.eval(&joined),
                None => pred.eval(&schema, &joined)?,
            };
            if keep {
                if let Some(descriptor) = ld.conjoin(rd) {
                    out.push(joined, descriptor)?;
                }
            }
        }
    }
    Ok(out)
}

/// Union `left ∪ right` (union-compatible schemas).
pub fn union(udb: &UDatabase, left: &str, right: &str) -> Result<URelation> {
    let l = udb.relation(left)?;
    let r = udb.relation(right)?;
    l.schema().check_union_compatible(r.schema())?;
    let mut out = URelation::new(l.schema().clone());
    for (tuple, descriptor) in l.rows().iter().chain(r.rows()) {
        out.push(tuple.clone(), descriptor.clone())?;
    }
    out.absorb();
    Ok(out)
}

/// Attribute renaming `δ_{from→to}(src)`.
pub fn rename(udb: &UDatabase, src: &str, from: &str, to: &str) -> Result<URelation> {
    let input = udb.relation(src)?;
    let schema = input.schema().renamed_attr(from, to)?;
    let mut out = URelation::new(schema);
    for (tuple, descriptor) in input.rows() {
        out.push(tuple.clone(), descriptor.clone())?;
    }
    Ok(out)
}

impl UDatabase {
    /// Register a computed U-relation in the catalog under the name `out`.
    fn store_as(&mut self, mut relation: URelation, out: &str) -> Result<()> {
        let renamed = relation.schema().renamed_relation(out);
        relation.set_schema(renamed)?;
        self.insert_relation(relation);
        Ok(())
    }
}

impl SchemaCatalog for UDatabase {
    fn schema_of(&self, relation: &str) -> ws_relational::Result<Schema> {
        self.relation(relation)
            .map(|r| r.schema().clone())
            .map_err(|_| RelationalError::UnknownRelation(relation.to_string()))
    }

    fn contains_relation(&self, relation: &str) -> bool {
        UDatabase::contains_relation(self, relation)
    }
}

impl QueryBackend for UDatabase {
    type Error = UrelError;

    fn materialize_base(&mut self, name: &str, out: &str) -> Result<()> {
        let relation = self.relation(name)?.clone();
        self.store_as(relation, out)
    }

    fn apply_select(
        &mut self,
        input: &str,
        pred: &Predicate,
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        let result = select(self, input, pred)?;
        self.store_as(result, out)
    }

    fn apply_project(
        &mut self,
        input: &str,
        attrs: &[String],
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let result = project(self, input, &attr_refs)?;
        self.store_as(result, out)
    }

    fn apply_product(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        let result = product(self, left, right, out)?;
        self.store_as(result, out)
    }

    fn apply_equi_join(
        &mut self,
        left: &str,
        right: &str,
        left_attr: &str,
        right_attr: &str,
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        let pred = Predicate::cmp_attr(left_attr, CmpOp::Eq, right_attr);
        let result = join(self, left, right, out, &pred)?;
        self.store_as(result, out)
    }

    fn apply_union(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        let result = union(self, left, right)?;
        self.store_as(result, out)
    }

    fn apply_difference(&mut self, _left: &str, _right: &str, _out: &str) -> Result<()> {
        Err(UrelError::Unsupported(
            "relational difference is not a positive operator; \
             compute it via conditional confidence (ws_core::conditional) instead"
                .to_string(),
        ))
    }

    fn apply_rename(&mut self, input: &str, from: &str, to: &str, out: &str) -> Result<()> {
        let result = rename(self, input, from, to)?;
        self.store_as(result, out)
    }

    fn drop_scratch(&mut self, name: &str) {
        let _ = self.remove_relation(name);
    }
}

/// Evaluate a query through the unified `optimize → execute` pipeline and
/// register its result under `out` in the catalog, returning the (final)
/// relation name.  Scratch relations are dropped on success and on error —
/// U-relations are self-contained, so cleanup cannot perturb the world
/// table.
#[deprecated(
    since = "0.1.0",
    note = "open a `maybms::Session` on the UDatabase (prepare/execute/stream), or call \
            `ws_relational::engine::evaluate_query_with` directly"
)]
pub fn evaluate_query(udb: &mut UDatabase, query: &RaExpr, out: &str) -> Result<String> {
    engine::evaluate_query_with(udb, query, out, EngineConfig::with_temp_cleanup())
}

/// The possible tuples of a query answer, computed without touching the
/// input catalog: evaluate on a scratch store holding only the base
/// relations the plan references (plus the world table), then strip
/// descriptors.
pub fn possible_answer(udb: &UDatabase, query: &RaExpr) -> Result<ws_relational::Relation> {
    let mut scratch = UDatabase::new();
    *scratch.world_table_mut() = udb.world_table().clone();
    for name in query.base_relations() {
        if let Ok(relation) = udb.relation(name) {
            scratch.insert_relation(relation.clone());
        }
        // Unknown names surface as UnknownRelation from the engine below.
    }
    let mut counter = 0usize;
    let out = engine::fresh_scratch_name(
        |n| scratch.contains_relation(n),
        &mut counter,
        "urel_answer",
    );
    engine::evaluate_query_with(&mut scratch, query, &out, EngineConfig::with_temp_cleanup())?;
    Ok(scratch.relation(&out)?.possible_tuples())
}

/// Convenience: the distinct tuples of `relation` present in *some* world.
pub fn possible_tuples(udb: &UDatabase, relation: &str) -> Result<Vec<Tuple>> {
    Ok(udb.relation(relation)?.possible_tuples().rows().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::from_wsd;
    use crate::descriptor::WsDescriptor;
    use ws_core::wsd::example_census_wsd;
    use ws_relational::{evaluate_set, CmpOp, Value};

    fn census_udb() -> UDatabase {
        from_wsd(&example_census_wsd()).unwrap()
    }

    /// Oracle: evaluate the query in every world and collect the union of the
    /// answers (set of possible answer tuples).
    fn oracle_possible(udb: &UDatabase, query: &RaExpr) -> std::collections::BTreeSet<Tuple> {
        let mut out = std::collections::BTreeSet::new();
        for (world, _) in udb.enumerate_worlds(1 << 20).unwrap() {
            let answer = evaluate_set(&world, query).unwrap();
            out.extend(answer.rows().iter().cloned());
        }
        out
    }

    #[test]
    fn selection_projection_match_the_world_oracle() {
        let udb = census_udb();
        let queries = [
            RaExpr::rel("R").select(Predicate::eq_const("M", 1i64)),
            RaExpr::rel("R")
                .select(Predicate::cmp_const("S", CmpOp::Gt, 200i64))
                .project(vec!["S"]),
            RaExpr::rel("R").project(vec!["N", "M"]),
        ];
        for query in queries {
            let ours: std::collections::BTreeSet<Tuple> = possible_answer(&udb, &query)
                .unwrap()
                .rows()
                .iter()
                .cloned()
                .collect();
            let oracle = oracle_possible(&udb, &query);
            assert_eq!(ours, oracle, "possible answers differ for {query}");
        }
    }

    #[test]
    fn self_join_keeps_only_consistent_descriptor_pairs() {
        let udb = census_udb();
        // Pairs of persons with different SSNs (the §1 query): a self-join.
        let query = RaExpr::rel("R")
            .project(vec!["S"])
            .rename("S", "S1")
            .product(RaExpr::rel("R").project(vec!["S"]).rename("S", "S2"))
            .select(Predicate::cmp_attr("S1", CmpOp::Ne, "S2"));
        let ours: std::collections::BTreeSet<Tuple> = possible_answer(&udb, &query)
            .unwrap()
            .rows()
            .iter()
            .cloned()
            .collect();
        let oracle = oracle_possible(&udb, &query);
        assert_eq!(ours, oracle);
    }

    #[test]
    fn union_and_rename_match_the_world_oracle() {
        let udb = census_udb();
        let query = RaExpr::rel("R")
            .select(Predicate::eq_const("M", 1i64))
            .project(vec!["S"])
            .union(
                RaExpr::rel("R")
                    .select(Predicate::eq_const("M", 2i64))
                    .project(vec!["S"]),
            );
        let ours: std::collections::BTreeSet<Tuple> = possible_answer(&udb, &query)
            .unwrap()
            .rows()
            .iter()
            .cloned()
            .collect();
        assert_eq!(ours, oracle_possible(&udb, &query));
    }

    #[test]
    fn named_operators_behave_like_the_unified_pipeline() {
        let mut udb = census_udb();
        let sel = select(&udb, "R", &Predicate::eq_const("M", 1i64)).unwrap();
        assert!(sel.len() <= udb.relation("R").unwrap().len());
        let proj = project(&udb, "R", &["S"]).unwrap();
        assert_eq!(proj.schema().arity(), 1);
        let renamed = rename(&udb, "R", "S", "SSN").unwrap();
        assert!(renamed.schema().contains("SSN"));
        let prod = {
            let mut scratch = udb.clone();
            let mut left = proj.clone();
            left.set_schema(Schema::new("L", &["S1"]).unwrap()).unwrap();
            scratch.insert_relation(left);
            let mut right = proj.clone();
            right
                .set_schema(Schema::new("Rt", &["S2"]).unwrap())
                .unwrap();
            scratch.insert_relation(right);
            product(&scratch, "L", "Rt", "LR").unwrap()
        };
        assert!(prod.len() <= proj.len() * proj.len());
        let joined = {
            let mut scratch = udb.clone();
            let mut left = proj.clone();
            left.set_schema(Schema::new("L", &["S1"]).unwrap()).unwrap();
            scratch.insert_relation(left);
            let mut right = proj.clone();
            right
                .set_schema(Schema::new("Rt", &["S2"]).unwrap())
                .unwrap();
            scratch.insert_relation(right);
            join(
                &scratch,
                "L",
                "Rt",
                "J",
                &Predicate::cmp_attr("S1", CmpOp::Eq, "S2"),
            )
            .unwrap()
        };
        assert!(joined.len() <= prod.len());
        let unioned = {
            let mut scratch = udb.clone();
            let mut a = proj.clone();
            a.set_schema(Schema::new("A", &["S"]).unwrap()).unwrap();
            let mut b = proj.clone();
            b.set_schema(Schema::new("B", &["S"]).unwrap()).unwrap();
            scratch.insert_relation(a);
            scratch.insert_relation(b);
            union(&scratch, "A", "B").unwrap()
        };
        assert_eq!(
            unioned.possible_tuples().len(),
            proj.possible_tuples().len()
        );

        // evaluate_query registers the result under the requested name and
        // leaves no scratch relations behind.
        let names_before = udb.relation_names().len();
        let out = engine::evaluate_query_with(
            &mut udb,
            &RaExpr::rel("R").select(Predicate::eq_const("M", 1i64)),
            "Q",
            EngineConfig::with_temp_cleanup(),
        )
        .unwrap();
        assert_eq!(out, "Q");
        assert!(udb.contains_relation("Q"));
        assert_eq!(udb.relation_names().len(), names_before + 1);
        assert_eq!(
            possible_tuples(&udb, "Q").unwrap().len(),
            sel.possible_tuples().len()
        );
    }

    #[test]
    fn difference_is_rejected_as_non_positive() {
        let udb = census_udb();
        let query = RaExpr::rel("R").difference(RaExpr::rel("R"));
        assert!(matches!(
            possible_answer(&udb, &query),
            Err(UrelError::Unsupported(_))
        ));
        // A failed evaluation must not leak scratch relations either.
        let mut scratch = census_udb();
        let names_before = scratch.relation_names().len();
        assert!(engine::evaluate_query_with(
            &mut scratch,
            &query,
            "Q",
            EngineConfig::with_temp_cleanup()
        )
        .is_err());
        assert_eq!(scratch.relation_names().len(), names_before);
    }

    #[test]
    fn join_blowup_stays_polynomial_in_the_representation() {
        // Two independent 4-way or-set fields joined on equality: the WSD
        // representation would have to compose the two components (16 rows);
        // the U-relation join just produces one annotated row per matching
        // pair, without touching the world table.
        let mut wsd = ws_core::Wsd::new();
        wsd.register_relation("A", &["X"], 1).unwrap();
        wsd.register_relation("B", &["Y"], 1).unwrap();
        let domain: Vec<Value> = (0..4).map(Value::int).collect();
        wsd.set_uniform(ws_core::FieldId::new("A", 0, "X"), domain.clone())
            .unwrap();
        wsd.set_uniform(ws_core::FieldId::new("B", 0, "Y"), domain)
            .unwrap();
        let mut udb = from_wsd(&wsd).unwrap();
        let query = RaExpr::rel("A")
            .product(RaExpr::rel("B"))
            .select(Predicate::cmp_attr("X", CmpOp::Eq, "Y"));
        engine::evaluate_query_with(&mut udb, &query, "J", EngineConfig::with_temp_cleanup())
            .unwrap();
        let result = udb.relation("J").unwrap();
        // Exactly the four matching pairs, each annotated with a two-variable
        // descriptor; the world table still has two variables.
        assert_eq!(result.len(), 4);
        assert!(result.rows().iter().all(|(_, d)| d.len() == 2));
        assert_eq!(udb.world_table().len(), 2);
        let _ = WsDescriptor::empty();
    }
}
