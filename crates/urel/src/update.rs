//! The update language on U-relations: the [`WriteBackend`] implementation.
//!
//! U-relations make the *data* half of updates purely relational — every row
//! carries concrete values, so deletes and modifications are ordinary row
//! edits whose world-scope is already recorded in the row's descriptor.  The
//! intensional work is concentrated in two places:
//!
//! * **possible inserts** declare a fresh independent world-table variable
//!   `z ~ (1 − p, p)` and annotate the inserted tuple with `⟨z = 1⟩`;
//! * **conditioning** rewrites the world table itself.  A violation of a
//!   constraint is witnessed by a *clause* — the conjunction of the
//!   descriptors of the offending tuples — and the worlds to eliminate are
//!   the disjunction (DNF) of all clauses.  Since the world table can only
//!   hold independent variables, the variables mentioned by the DNF are
//!   merged into one composite variable whose domain enumerates the
//!   *surviving* joint assignments (renormalized by the surviving mass
//!   `P(ψ)`), and every descriptor binding one of the merged variables is
//!   expanded into one row per consistent surviving assignment — the
//!   DNF-to-composite-variable rewrite.

use crate::database::UDatabase;
use crate::descriptor::WsDescriptor;
use crate::error::{Result, UrelError};
use crate::world::Assignment;
use std::collections::BTreeSet;
use ws_relational::engine::{check_assignments, check_insertable, check_probability};
use ws_relational::{Dependency, Predicate, Tuple, Value, WriteBackend};

/// Cap on the joint assignments enumerated while conditioning; beyond this
/// the exact rewrite is refused (mirroring exact confidence computation).
pub const CONDITION_ASSIGNMENT_LIMIT: u128 = 1 << 20;

/// A fresh world-table variable name with the given prefix.
fn fresh_variable(db: &UDatabase, prefix: &str) -> String {
    let mut n = 0usize;
    loop {
        let name = format!("__{prefix}{n}");
        if !db.world_table().contains(&name) {
            return name;
        }
        n += 1;
    }
}

impl WriteBackend for UDatabase {
    fn insert_certain(&mut self, relation: &str, tuple: &Tuple) -> Result<()> {
        let rel = self.relation_mut(relation)?;
        check_insertable(rel.schema(), tuple)?;
        rel.push(tuple.clone(), WsDescriptor::empty())?;
        rel.absorb();
        Ok(())
    }

    fn insert_possible(&mut self, relation: &str, tuple: &Tuple, prob: f64) -> Result<()> {
        check_probability(prob)?;
        check_insertable(self.relation(relation)?.schema(), tuple)?;
        if prob <= 0.0 {
            return Ok(());
        }
        if prob >= 1.0 {
            return self.insert_certain(relation, tuple);
        }
        let var = fresh_variable(self, "ins");
        self.world_table_mut()
            .add_variable(var.clone(), vec![1.0 - prob, prob])?;
        self.relation_mut(relation)?
            .push(tuple.clone(), WsDescriptor::bind(var, 1))?;
        Ok(())
    }

    fn delete_where(&mut self, relation: &str, pred: &Predicate) -> Result<()> {
        let rel = self.relation_mut(relation)?;
        let schema = rel.schema().clone();
        for a in pred.referenced_attrs() {
            schema.position_of(a)?;
        }
        // A row's values are world-independent, so a matching row is deleted
        // from every world its descriptor reaches: drop the row.
        let keep: Vec<bool> = rel
            .rows()
            .iter()
            .map(|(t, _)| pred.eval(&schema, t).map(|m| !m))
            .collect::<ws_relational::Result<_>>()?;
        let mut it = keep.into_iter();
        rel.rows_mut().retain(|_| it.next().unwrap_or(true));
        Ok(())
    }

    fn modify_where(
        &mut self,
        relation: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<()> {
        check_assignments(assignments)?;
        let rel = self.relation_mut(relation)?;
        let schema = rel.schema().clone();
        let positions: Vec<(usize, &Value)> = assignments
            .iter()
            .map(|(attr, value)| Ok((schema.position_of(attr)?, value)))
            .collect::<Result<_>>()?;
        let matches: Vec<bool> = rel
            .rows()
            .iter()
            .map(|(t, _)| pred.eval(&schema, t))
            .collect::<ws_relational::Result<_>>()?;
        for ((tuple, _), matched) in rel.rows_mut().iter_mut().zip(matches) {
            if matched {
                for &(pos, value) in &positions {
                    tuple.set(pos, value.clone());
                }
            }
        }
        rel.absorb();
        Ok(())
    }

    fn apply_condition(&mut self, constraints: &[Dependency]) -> Result<f64> {
        // 1. Collect the violation clauses: conjunctive descriptors whose
        //    worlds must be eliminated.
        let mut clauses: Vec<WsDescriptor> = Vec::new();
        for dep in constraints {
            match dep {
                Dependency::Egd(egd) => {
                    let rel = self.relation(&egd.relation)?;
                    let schema = rel.schema();
                    for atom in egd.body.iter().chain(std::iter::once(&egd.head)) {
                        schema.position_of(&atom.attr)?;
                    }
                    for (tuple, descriptor) in rel.rows() {
                        let body = egd.body.iter().all(|atom| {
                            let pos = schema.position(&atom.attr).unwrap();
                            atom.eval(&tuple[pos])
                        });
                        let head_pos = schema.position(&egd.head.attr).unwrap();
                        if body && !egd.head.eval(&tuple[head_pos]) {
                            clauses.push(descriptor.clone());
                        }
                    }
                }
                Dependency::Fd(fd) => {
                    let rel = self.relation(&fd.relation)?;
                    let schema = rel.schema();
                    let lhs: Vec<usize> = fd
                        .lhs
                        .iter()
                        .map(|a| schema.position_of(a))
                        .collect::<ws_relational::Result<_>>()?;
                    let rhs: Vec<usize> = fd
                        .rhs
                        .iter()
                        .map(|a| schema.position_of(a))
                        .collect::<ws_relational::Result<_>>()?;
                    let rows = rel.rows();
                    for (i, (s, ds)) in rows.iter().enumerate() {
                        for (t, dt) in &rows[i + 1..] {
                            let agree_lhs = lhs.iter().all(|&p| s[p] == t[p]);
                            let agree_rhs = rhs.iter().all(|&p| s[p] == t[p]);
                            if agree_lhs && !agree_rhs {
                                // Both tuples present together violate the
                                // FD; a conflicting conjunction means they
                                // never co-exist.
                                if let Some(both) = ds.conjoin(dt) {
                                    clauses.push(both);
                                }
                            }
                        }
                    }
                }
            }
        }
        clauses.sort();
        clauses.dedup();
        if clauses.is_empty() {
            return Ok(1.0);
        }
        if clauses.iter().any(WsDescriptor::is_empty) {
            // A violation that holds in every world: nothing survives.
            return Err(UrelError::Inconsistent);
        }

        // 2. Enumerate the joint assignments of the variables the DNF
        //    mentions and keep the satisfying ones.
        let vars: Vec<String> = {
            let set: BTreeSet<&str> = clauses.iter().flat_map(WsDescriptor::variables).collect();
            set.into_iter().map(str::to_string).collect()
        };
        let assignments = self
            .world_table()
            .enumerate_assignments(&vars, CONDITION_ASSIGNMENT_LIMIT)?;
        let surviving: Vec<(Assignment, f64)> = assignments
            .into_iter()
            .filter(|(a, _)| !clauses.iter().any(|c| c.satisfied_by(a)))
            .collect();
        let mass: f64 = surviving.iter().map(|(_, p)| p).sum();
        if surviving.is_empty() || mass <= 0.0 {
            return Err(UrelError::Inconsistent);
        }

        // 3. Merge the involved variables into one composite variable whose
        //    domain indexes the surviving joint assignments, renormalized.
        let z = fresh_variable(self, "cond");
        self.world_table_mut()
            .add_variable(z.clone(), surviving.iter().map(|(_, p)| p / mass).collect())?;
        for var in &vars {
            self.world_table_mut().remove_variable(var)?;
        }

        // 4. Rewrite every descriptor binding a merged variable into one row
        //    per consistent surviving assignment (DNF expansion), leaving
        //    rows over untouched variables alone.
        for rel in self.relations_mut() {
            let old_rows = std::mem::take(rel.rows_mut());
            let mut rewritten = Vec::with_capacity(old_rows.len());
            for (tuple, descriptor) in old_rows {
                let touches_merged = descriptor.variables().any(|v| vars.iter().any(|w| w == v));
                if !touches_merged {
                    rewritten.push((tuple, descriptor));
                    continue;
                }
                let rest: Vec<(String, usize)> = descriptor
                    .bindings()
                    .filter(|(v, _)| !vars.iter().any(|w| w == v))
                    .map(|(v, i)| (v.to_string(), i))
                    .collect();
                for (k, (assignment, _)) in surviving.iter().enumerate() {
                    let consistent = descriptor
                        .bindings()
                        .filter(|(v, _)| vars.iter().any(|w| w == v))
                        .all(|(v, i)| assignment.get(v) == Some(&i));
                    if !consistent {
                        continue;
                    }
                    let mut bindings = rest.clone();
                    bindings.push((z.clone(), k));
                    let rewritten_descriptor =
                        WsDescriptor::of(bindings).expect("disjoint binding sets cannot conflict");
                    rewritten.push((tuple.clone(), rewritten_descriptor));
                }
            }
            *rel.rows_mut() = rewritten;
            rel.absorb();
        }
        Ok(mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::from_wsd;
    use ws_core::ops::update::{apply_update, UpdateExpr};
    use ws_core::wsd::example_census_wsd;
    use ws_core::WorldSet;
    use ws_relational::{CmpOp, EqualityGeneratingDependency, FunctionalDependency};

    fn oracle(updates: &[UpdateExpr]) -> WorldSet {
        let wsd = example_census_wsd();
        let mut worlds = WorldSet::from_weighted_worlds(wsd.enumerate_worlds(1 << 20).unwrap());
        for u in updates {
            apply_update(&mut worlds, u).unwrap();
        }
        worlds
    }

    fn updated(updates: &[UpdateExpr]) -> WorldSet {
        let mut udb = from_wsd(&example_census_wsd()).unwrap();
        for u in updates {
            apply_update(&mut udb, u).unwrap();
        }
        udb.validate().unwrap();
        WorldSet::from_weighted_worlds(udb.enumerate_worlds(1 << 20).unwrap())
    }

    fn check(updates: &[UpdateExpr]) {
        let expected = oracle(updates);
        let actual = updated(updates);
        assert!(
            expected.same_worlds(&actual) && expected.same_distribution(&actual, 1e-9),
            "U-relations disagree with the per-world oracle for {updates:?}"
        );
    }

    #[test]
    fn inserts_deletes_and_modifies_match_the_oracle() {
        check(&[UpdateExpr::insert(
            "R",
            Tuple::from_iter([Value::int(999), Value::text("New"), Value::int(1)]),
        )]);
        check(&[UpdateExpr::insert_possible(
            "R",
            Tuple::from_iter([Value::int(999), Value::text("New"), Value::int(1)]),
            0.25,
        )]);
        check(&[UpdateExpr::delete("R", Predicate::eq_const("M", 1i64))]);
        check(&[UpdateExpr::modify(
            "R",
            Predicate::eq_const("S", 785i64),
            vec![("M".to_string(), Value::int(1))],
        )]);
        check(&[
            UpdateExpr::insert_possible(
                "R",
                Tuple::from_iter([Value::int(500), Value::text("Maybe"), Value::int(3)]),
                0.5,
            ),
            UpdateExpr::modify(
                "R",
                Predicate::cmp_const("M", CmpOp::Ge, 3i64),
                vec![("M".to_string(), Value::int(0))],
            ),
            UpdateExpr::delete("R", Predicate::eq_const("M", 0i64)),
        ]);
    }

    #[test]
    fn egd_conditioning_rewrites_the_world_table() {
        let dep = Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "S",
            785i64,
            "M",
            CmpOp::Eq,
            1i64,
        ));
        let mut udb = from_wsd(&example_census_wsd()).unwrap();
        let mass = apply_update(&mut udb, &UpdateExpr::condition(vec![dep.clone()])).unwrap();
        udb.validate().unwrap();
        // Oracle mass + distribution.
        let worlds = example_census_wsd().enumerate_worlds(1 << 20).unwrap();
        let surviving: Vec<_> = worlds
            .into_iter()
            .filter(|(db, _)| ws_relational::world_satisfies(db, &dep).unwrap())
            .collect();
        let expected_mass: f64 = surviving.iter().map(|(_, p)| p).sum();
        assert!((mass - expected_mass).abs() < 1e-9);
        let expected = WorldSet::from_weighted_worlds(
            surviving
                .into_iter()
                .map(|(db, p)| (db, p / expected_mass))
                .collect(),
        );
        let actual = WorldSet::from_weighted_worlds(udb.enumerate_worlds(1 << 20).unwrap());
        assert!(expected.same_worlds(&actual));
        assert!(expected.same_distribution(&actual, 1e-9));
    }

    #[test]
    fn fd_conditioning_eliminates_joint_violations() {
        // Make SSN a key: worlds where both tuples share an SSN but differ
        // elsewhere must die.  In Fig. 4's WSD the SSNs never collide, so
        // build a colliding variant through a possible insert instead.
        let fd = Dependency::Fd(FunctionalDependency::new("R", vec!["S"], vec!["N", "M"]));
        let updates = [
            UpdateExpr::insert_possible(
                "R",
                Tuple::from_iter([Value::int(185), Value::text("Clone"), Value::int(2)]),
                0.5,
            ),
            UpdateExpr::condition(vec![fd.clone()]),
        ];
        let mut udb = from_wsd(&example_census_wsd()).unwrap();
        apply_update(&mut udb, &updates[0]).unwrap();
        let mass = apply_update(&mut udb, &updates[1]).unwrap();
        assert!(mass > 0.0 && mass < 1.0, "the key must bite: {mass}");
        udb.validate().unwrap();
        let actual = WorldSet::from_weighted_worlds(udb.enumerate_worlds(1 << 20).unwrap());
        let expected = oracle(&updates);
        assert!(expected.same_worlds(&actual));
        assert!(expected.same_distribution(&actual, 1e-9));
    }

    #[test]
    fn unsatisfiable_conditioning_is_inconsistent() {
        let mut udb = from_wsd(&example_census_wsd()).unwrap();
        // Names are certain: "Smith ⇒ Smith ≠ Smith" can never hold.
        let impossible = Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "N",
            "Smith",
            "N",
            CmpOp::Ne,
            "Smith",
        ));
        assert!(matches!(
            apply_update(&mut udb, &UpdateExpr::condition(vec![impossible])),
            Err(UrelError::Inconsistent)
        ));
    }

    #[test]
    fn tautological_conditioning_is_a_mass_one_noop() {
        let mut udb = from_wsd(&example_census_wsd()).unwrap();
        let before = WorldSet::from_weighted_worlds(udb.enumerate_worlds(1 << 20).unwrap());
        let mass = apply_update(&mut udb, &UpdateExpr::condition(vec![])).unwrap();
        assert_eq!(mass, 1.0);
        let after = WorldSet::from_weighted_worlds(udb.enumerate_worlds(1 << 20).unwrap());
        assert!(before.same_worlds(&after));
    }
}
