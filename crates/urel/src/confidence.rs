//! Confidence computation on U-relations.
//!
//! The confidence of a tuple is the probability that at least one of its
//! annotated occurrences is present, i.e. the probability of the disjunction
//! of its descriptors.  Exact computation is #P-hard in general (the
//! descriptors form a DNF over the world-table variables), so this module
//! offers two evaluators:
//!
//! * [`conf`] — exact, by enumerating the joint assignments of the variables
//!   that actually appear in the tuple's descriptors (all other variables
//!   marginalize out).  Fails with [`UrelError::ExactTooLarge`] beyond a
//!   configurable assignment budget.
//! * [`approx_conf`] — a seeded Monte-Carlo estimator that samples total
//!   assignments of the relevant variables from the world table, with a
//!   fixed sample budget;
//! * [`approx`] — the (ε, δ) refinement of the same estimator: the sample
//!   count is derived from an additive error bound and failure probability
//!   via the shared Hoeffding planner, blocks fan out on a
//!   [`WorkerPool`], and [`approx::possible_with_confidence`] parallelizes
//!   per tuple-group.

pub mod approx;

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ws_relational::{Tuple, WorkerPool};

use crate::database::UDatabase;
use crate::descriptor::WsDescriptor;
use crate::error::{Result, UrelError};
use crate::world::Assignment;

/// Default budget of exact enumeration: up to this many joint assignments.
pub const DEFAULT_EXACT_LIMIT: u128 = 1 << 20;

/// Exact confidence of `tuple` in `relation` with the default budget.
pub fn conf(udb: &UDatabase, relation: &str, tuple: &Tuple) -> Result<f64> {
    conf_with_limit(udb, relation, tuple, DEFAULT_EXACT_LIMIT)
}

/// Exact confidence with an explicit enumeration budget.
pub fn conf_with_limit(udb: &UDatabase, relation: &str, tuple: &Tuple, limit: u128) -> Result<f64> {
    let descriptors = udb.relation(relation)?.descriptors_of(tuple);
    if descriptors.is_empty() {
        return Ok(0.0);
    }
    // A tuple with an empty descriptor is present in every world.
    if descriptors.iter().any(|d| d.is_empty()) {
        return Ok(1.0);
    }
    let variables: Vec<String> = descriptors
        .iter()
        .flat_map(|d| d.variables().map(str::to_string))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let assignments = udb.world_table().enumerate_assignments(&variables, limit)?;
    let mut total = 0.0;
    for (assignment, p) in assignments {
        if descriptors.iter().any(|d| d.satisfied_by(&assignment)) {
            total += p;
        }
    }
    Ok(total)
}

/// Monte-Carlo estimate of the confidence of `tuple`, using `samples` draws
/// from a deterministic RNG seeded with `seed`.
pub fn approx_conf(
    udb: &UDatabase,
    relation: &str,
    tuple: &Tuple,
    samples: usize,
    seed: u64,
) -> Result<f64> {
    if samples == 0 {
        return Err(UrelError::invalid("approx_conf needs at least one sample"));
    }
    let descriptors = udb.relation(relation)?.descriptors_of(tuple);
    if descriptors.is_empty() {
        return Ok(0.0);
    }
    if descriptors.iter().any(|d| d.is_empty()) {
        return Ok(1.0);
    }
    let variables: Vec<String> = descriptors
        .iter()
        .flat_map(|d| d.variables().map(str::to_string))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let distributions: Vec<(String, Vec<f64>)> = variables
        .iter()
        .map(|v| Ok((v.clone(), udb.world_table().distribution(v)?.to_vec())))
        .collect::<Result<_>>()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..samples {
        let mut assignment = Assignment::new();
        for (var, dist) in &distributions {
            let mut draw: f64 = rng.gen();
            let mut chosen = dist.len() - 1;
            for (idx, p) in dist.iter().enumerate() {
                if draw < *p {
                    chosen = idx;
                    break;
                }
                draw -= p;
            }
            assignment.insert(var.clone(), chosen);
        }
        if descriptors.iter().any(|d| d.satisfied_by(&assignment)) {
            hits += 1;
        }
    }
    Ok(hits as f64 / samples as f64)
}

/// The possible tuples of a relation together with their exact confidences.
pub fn possible_with_confidence(udb: &UDatabase, relation: &str) -> Result<Vec<(Tuple, f64)>> {
    possible_with_confidence_with(udb, relation, &WorkerPool::serial())
}

/// [`possible_with_confidence`] with the per-tuple exact DNF evaluations
/// fanned out on `pool`; output order is the serial order for any thread
/// count.
pub fn possible_with_confidence_with(
    udb: &UDatabase,
    relation: &str,
    pool: &WorkerPool,
) -> Result<Vec<(Tuple, f64)>> {
    let possible = udb.relation(relation)?.possible_tuples();
    let rows = possible.rows();
    let confidences = pool.map_coarse(rows, |t| conf(udb, relation, t));
    rows.iter()
        .zip(confidences)
        .map(|(t, c)| Ok((t.clone(), c?)))
        .collect()
}

/// Whether a tuple is certain (present in every world).
pub fn is_certain(udb: &UDatabase, relation: &str, tuple: &Tuple) -> Result<bool> {
    Ok(conf(udb, relation, tuple)? >= 1.0 - 1e-9)
}

/// The expected number of (distinct) tuples of a relation: the sum of the
/// possible tuples' confidences.
pub fn expected_cardinality(udb: &UDatabase, relation: &str) -> Result<f64> {
    Ok(possible_with_confidence(udb, relation)?
        .into_iter()
        .map(|(_, c)| c)
        .sum())
}

/// Helper used by tests and benches: the probability of a single descriptor.
pub fn descriptor_probability(udb: &UDatabase, descriptor: &WsDescriptor) -> Result<f64> {
    descriptor.probability(udb.world_table())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::from_wsd;
    use ws_core::wsd::example_census_wsd;
    use ws_relational::{Predicate, RaExpr, Value};

    #[test]
    fn example11_projection_confidences_match_the_paper() {
        // Q = π_S(R) over the Fig. 4 WSD: conf(185)=0.6, conf(186)=0.6,
        // conf(785)=0.8 (Example 11).
        let mut udb = from_wsd(&example_census_wsd()).unwrap();
        ws_relational::engine::evaluate_query(&mut udb, &RaExpr::rel("R").project(vec!["S"]), "Q")
            .unwrap();
        for (value, expected) in [(185i64, 0.6), (186, 0.6), (785, 0.8)] {
            let t = Tuple::from_iter([Value::int(value)]);
            let c = conf(&udb, "Q", &t).unwrap();
            assert!(
                (c - expected).abs() < 1e-9,
                "conf({value}) = {c}, want {expected}"
            );
        }
    }

    #[test]
    fn confidence_matches_the_wsd_layer_on_query_answers() {
        let wsd = example_census_wsd();
        let mut udb = from_wsd(&wsd).unwrap();
        let query = RaExpr::rel("R")
            .select(Predicate::eq_const("M", 1i64))
            .project(vec!["S", "M"]);
        ws_relational::engine::evaluate_query(&mut udb, &query, "Q").unwrap();

        let mut wsd_q = wsd.clone();
        ws_relational::engine::evaluate_query(&mut wsd_q, &query, "Q").unwrap();
        let expected = ws_core::confidence::possible_with_confidence(&wsd_q, "Q").unwrap();
        assert!(!expected.is_empty());
        for (tuple, c) in expected {
            let ours = conf(&udb, "Q", &tuple).unwrap();
            assert!((ours - c).abs() < 1e-9, "conf({tuple}) = {ours}, want {c}");
        }
    }

    #[test]
    fn missing_and_certain_tuples() {
        let udb = from_wsd(&example_census_wsd()).unwrap();
        let absent = Tuple::from_iter([Value::int(999), Value::text("Nobody"), Value::int(1)]);
        assert_eq!(conf(&udb, "R", &absent).unwrap(), 0.0);
        assert!(!is_certain(&udb, "R", &absent).unwrap());
        assert_eq!(approx_conf(&udb, "R", &absent, 100, 7).unwrap(), 0.0);
        assert!(conf(&udb, "NOPE", &absent).is_err());

        // A certain tuple (empty descriptor) has confidence one.
        let mut rel =
            ws_relational::Relation::new(ws_relational::Schema::new("S", &["X"]).unwrap());
        rel.push_values([5i64]).unwrap();
        let mut wsd = ws_core::Wsd::new();
        wsd.add_certain_relation(&rel).unwrap();
        let udb2 = from_wsd(&wsd).unwrap();
        let five = Tuple::from_iter([5i64]);
        assert_eq!(conf(&udb2, "S", &five).unwrap(), 1.0);
        assert_eq!(approx_conf(&udb2, "S", &five, 10, 1).unwrap(), 1.0);
        assert!(is_certain(&udb2, "S", &five).unwrap());
    }

    #[test]
    fn expected_cardinality_sums_confidences() {
        let udb = from_wsd(&example_census_wsd()).unwrap();
        let with_conf = possible_with_confidence(&udb, "R").unwrap();
        let expected: f64 = with_conf.iter().map(|(_, c)| c).sum();
        assert!((expected_cardinality(&udb, "R").unwrap() - expected).abs() < 1e-12);
        // Two tuples exist in every world of the running example.
        assert!((expected - 2.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_estimates_converge_to_the_exact_value() {
        let mut udb = from_wsd(&example_census_wsd()).unwrap();
        ws_relational::engine::evaluate_query(&mut udb, &RaExpr::rel("R").project(vec!["S"]), "Q")
            .unwrap();
        let tuple = Tuple::from_iter([Value::int(785)]);
        let exact = conf(&udb, "Q", &tuple).unwrap();
        let estimate = approx_conf(&udb, "Q", &tuple, 20_000, 42).unwrap();
        assert!(
            (estimate - exact).abs() < 0.02,
            "Monte-Carlo estimate {estimate} too far from exact {exact}"
        );
        assert!(approx_conf(&udb, "Q", &tuple, 0, 42).is_err());
    }

    #[test]
    fn exact_limit_is_enforced_and_descriptor_probability_works() {
        let udb = from_wsd(&example_census_wsd()).unwrap();
        let possible = udb.relation("R").unwrap().possible_tuples();
        let tuple = possible.rows()[0].clone();
        assert!(matches!(
            conf_with_limit(&udb, "R", &tuple, 1),
            Err(UrelError::ExactTooLarge { .. })
        ));
        let descriptor = udb.relation("R").unwrap().rows()[0].1.clone();
        let p = descriptor_probability(&udb, &descriptor).unwrap();
        assert!(p > 0.0 && p <= 1.0);
    }
}
