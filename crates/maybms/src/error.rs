//! The unified error type of the `maybms` front door.
//!
//! Every backend crate has its own error enum (`RelationalError`, `WsError`,
//! `UwsdtError`, `UrelError`); sessions run the same plan on any of them, so
//! the session API reports all of those through one [`Error`] that carries
//! the *plan context* — which query was being prepared or executed when the
//! failure happened — alongside the backend's diagnosis.

use std::fmt;
use ws_core::WsError;
use ws_relational::RelationalError;
use ws_storage::{DurableError, StorageError};
use ws_urel::UrelError;
use ws_uwsdt::UwsdtError;

/// Result alias of the session layer.
pub type Result<T> = std::result::Result<T, Error>;

/// What went wrong, independent of where in a plan it went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    /// A query failed to typecheck against the session's catalog before any
    /// evaluation started (unknown relation/attribute, incompatible union,
    /// clashing product attributes, …).
    Typecheck(String),
    /// An error surfaced from the relational substrate.
    Relational(RelationalError),
    /// An error surfaced from the WSD layer (also covers the explicit
    /// world-set oracle, which shares `WsError`).
    Ws(WsError),
    /// An error surfaced from the UWSDT layer.
    Uwsdt(UwsdtError),
    /// An error surfaced from the U-relation layer.
    Urel(UrelError),
    /// An error surfaced from the persistence layer (snapshot/WAL I/O,
    /// corruption, format drift) of a durable session.
    Storage(StorageError),
    /// Anything else worth reporting with a message.
    Other(String),
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Typecheck(msg) => write!(f, "typecheck failed: {msg}"),
            ErrorKind::Relational(e) => write!(f, "{e}"),
            ErrorKind::Ws(e) => write!(f, "{e}"),
            ErrorKind::Uwsdt(e) => write!(f, "{e}"),
            ErrorKind::Urel(e) => write!(f, "{e}"),
            ErrorKind::Storage(e) => write!(f, "{e}"),
            ErrorKind::Other(msg) => write!(f, "{msg}"),
        }
    }
}

/// The session layer's error: a backend/typecheck diagnosis plus the plan it
/// belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    kind: ErrorKind,
    plan: Option<String>,
}

impl Error {
    /// Wrap a diagnosis without plan context.
    pub fn new(kind: ErrorKind) -> Self {
        Error { kind, plan: None }
    }

    /// A typecheck failure.
    pub fn typecheck(msg: impl Into<String>) -> Self {
        Error::new(ErrorKind::Typecheck(msg.into()))
    }

    /// A free-form session error.
    pub fn other(msg: impl Into<String>) -> Self {
        Error::new(ErrorKind::Other(msg.into()))
    }

    /// Attach (or replace) the plan this error belongs to; shown by
    /// [`fmt::Display`] so failures in deep pipelines name their query.
    pub fn with_plan(mut self, plan: impl fmt::Display) -> Self {
        self.plan = Some(plan.to_string());
        self
    }

    /// The diagnosis, independent of plan context.
    pub fn kind(&self) -> &ErrorKind {
        &self.kind
    }

    /// The rendered plan the error is about, if any.
    pub fn plan(&self) -> Option<&str> {
        self.plan.as_deref()
    }

    /// Whether this error reports an inconsistent (empty) world-set —
    /// conditioning removed every world — regardless of which backend
    /// noticed it.
    pub fn is_inconsistent(&self) -> bool {
        matches!(
            &self.kind,
            ErrorKind::Ws(WsError::Inconsistent)
                | ErrorKind::Uwsdt(UwsdtError::Inconsistent)
                | ErrorKind::Urel(UrelError::Inconsistent)
                | ErrorKind::Relational(RelationalError::Inconsistent)
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.plan {
            Some(plan) => write!(f, "{} (while evaluating plan {plan})", self.kind),
            None => write!(f, "{}", self.kind),
        }
    }
}

impl std::error::Error for Error {}

impl From<ErrorKind> for Error {
    fn from(kind: ErrorKind) -> Self {
        Error::new(kind)
    }
}

impl From<RelationalError> for Error {
    fn from(e: RelationalError) -> Self {
        Error::new(ErrorKind::Relational(e))
    }
}

impl From<WsError> for Error {
    fn from(e: WsError) -> Self {
        Error::new(ErrorKind::Ws(e))
    }
}

impl From<UwsdtError> for Error {
    fn from(e: UwsdtError) -> Self {
        Error::new(ErrorKind::Uwsdt(e))
    }
}

impl From<UrelError> for Error {
    fn from(e: UrelError) -> Self {
        Error::new(ErrorKind::Urel(e))
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Self {
        Error::new(ErrorKind::Storage(e))
    }
}

/// A durable backend's error is either the wrapped backend's own diagnosis
/// (converted as usual) or a persistence failure.
impl<E: Into<Error>> From<DurableError<E>> for Error {
    fn from(e: DurableError<E>) -> Self {
        match e {
            DurableError::Backend(e) => e.into(),
            DurableError::Storage(e) => e.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_context_is_displayed() {
        let e = Error::from(RelationalError::UnknownRelation("R".into())).with_plan("σ[A=1](R)");
        assert!(e.to_string().contains("unknown relation"));
        assert!(e.to_string().contains("σ[A=1](R)"));
        assert_eq!(e.plan(), Some("σ[A=1](R)"));
        let bare = Error::typecheck("boom");
        assert!(bare.plan().is_none());
        assert!(bare.to_string().starts_with("typecheck failed"));
    }

    #[test]
    fn every_backend_error_converts() {
        assert!(matches!(
            Error::from(WsError::Inconsistent).kind(),
            ErrorKind::Ws(_)
        ));
        assert!(matches!(
            Error::from(UwsdtError::invalid("x")).kind(),
            ErrorKind::Uwsdt(_)
        ));
        assert!(matches!(
            Error::from(UrelError::invalid("x")).kind(),
            ErrorKind::Urel(_)
        ));
        assert!(matches!(
            Error::from(RelationalError::Invalid("x".into())).kind(),
            ErrorKind::Relational(_)
        ));
    }
}
