//! Lineage extraction: map each possible-worlds representation onto the
//! finite-domain variables of [`ws_relational::lineage`], so the tiered
//! [`crate::Session::confidence`] strategy can shadow-evaluate a prepared
//! plan extensionally (safe plans) or through the d-tree compiler.
//!
//! Every extractor answers `Option<LineageDb>`:
//!
//! * `Some(db)` — a **faithful** translation: for every base relation the
//!   plan reads, the annotated rows and their clauses describe exactly the
//!   same distribution over worlds as the backend itself.  Tier results
//!   computed from it are exact.
//! * `None` — the representation opted out (per-tuple joint spaces above
//!   [`MAX_TUPLE_COMBOS`], un-normalized world weights, anything the mapping
//!   cannot express).  The session falls back to the backend's native exact
//!   path, so opting out is always safe.
//!
//! The variable vocabularies per backend:
//!
//! | backend    | variable                  | domain                          |
//! |------------|---------------------------|---------------------------------|
//! | `Database` | —                         | every row is certain            |
//! | `Wsd`      | one per multi-world slot  | the slot's local worlds         |
//! | `Uwsdt`    | one per multi-world `Cid` | the component's `WorldEntry`s   |
//! | `UDatabase`| one per world-table var   | its distribution, verbatim      |
//! | `WorldSet` | a single selector         | the enumerated worlds           |

use std::collections::{BTreeMap, BTreeSet};

use ws_core::{FieldId, WorldSet, Wsd};
use ws_relational::lineage::{Clause, LineageDb, LineageRelation, Var, VarTable};
use ws_relational::{Database, Tuple, Value};
use ws_urel::UDatabase;
use ws_uwsdt::Uwsdt;

/// Cap on the per-tuple joint choice space an extractor will enumerate
/// (product of the covering components' local-world counts).  Beyond this the
/// extractor opts out and the session uses the backend's native exact path.
pub const MAX_TUPLE_COMBOS: usize = 4096;

/// Decode `code` into one choice per radix (row-major, first radix most
/// significant), reusing `choice` as scratch.
fn decode_choice(mut code: usize, radices: &[usize], choice: &mut [usize]) {
    for i in (0..radices.len()).rev() {
        choice[i] = code % radices[i];
        code /= radices[i];
    }
}

/// The joint choice count over `radices`, or `None` past [`MAX_TUPLE_COMBOS`].
fn combo_count(radices: &[usize]) -> Option<usize> {
    let mut combos = 1usize;
    for &r in radices {
        if r == 0 {
            return None;
        }
        combos = combos.checked_mul(r)?;
        if combos > MAX_TUPLE_COMBOS {
            return None;
        }
    }
    Some(combos)
}

/// A single certain world: every row of every read relation carries the empty
/// clause (present in the one world with probability 1).
pub fn database_lineage(db: &Database, relations: &BTreeSet<String>) -> Option<LineageDb> {
    let mut out = LineageDb::new(VarTable::new());
    for name in relations {
        let rel = db.relation(name).ok()?;
        let mut annotated = LineageRelation::new(rel.schema().clone());
        for row in rel.rows() {
            annotated.push(row.clone(), Clause::empty()).ok()?;
        }
        out.insert_relation(annotated);
    }
    Some(out)
}

/// One variable per component slot with at least two local worlds; a tuple's
/// concrete variants are the joint local-world choices of the slots covering
/// its fields (skipping combinations that leave a field `⊥`, i.e. absent).
pub fn wsd_lineage(wsd: &Wsd, relations: &BTreeSet<String>) -> Option<LineageDb> {
    let mut vars = VarTable::new();
    // Slots are global to the WSD (a component may span relations), so the
    // slot → variable map is shared across the whole extraction.
    let mut slot_vars: BTreeMap<usize, Var> = BTreeMap::new();
    let mut annotated = Vec::new();
    for name in relations {
        let meta = wsd.meta(name).ok()?;
        let attrs: Vec<_> = meta.attrs.clone();
        let mut rel = LineageRelation::new(meta.schema(name));
        for t in meta.live_tuples() {
            // The slots covering this tuple, with each covered attribute's
            // position inside its component row.
            let mut covering: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
            for (attr_idx, attr) in attrs.iter().enumerate() {
                let field = FieldId::new(name.as_str(), t, attr.as_ref());
                let slot = wsd.slot_of(&field).ok()?;
                let comp = wsd.component(slot).ok()?;
                let pos = comp.fields.iter().position(|f| f == &field)?;
                covering.entry(slot).or_default().push((attr_idx, pos));
            }
            let slots: Vec<usize> = covering.keys().copied().collect();
            let comps: Vec<_> = slots
                .iter()
                .map(|&s| wsd.component(s).ok())
                .collect::<Option<Vec<_>>>()?;
            let radices: Vec<usize> = comps.iter().map(|c| c.rows.len()).collect();
            let combos = combo_count(&radices)?;
            for (&slot, comp) in slots.iter().zip(&comps) {
                if comp.rows.len() >= 2 && !slot_vars.contains_key(&slot) {
                    let dist: Vec<f64> = comp.rows.iter().map(|w| w.prob).collect();
                    let var = vars.add_var(format!("c{slot}"), dist).ok()?;
                    slot_vars.insert(slot, var);
                }
            }
            let mut choice = vec![0usize; slots.len()];
            for code in 0..combos {
                decode_choice(code, &radices, &mut choice);
                let mut values = vec![Value::Bottom; attrs.len()];
                for ((slot, comp), &pick) in slots.iter().zip(&comps).zip(&choice) {
                    let world = &comp.rows[pick];
                    for &(attr_idx, pos) in &covering[slot] {
                        values[attr_idx] = world.values.get(pos)?.clone();
                    }
                }
                // A ⊥ field means the tuple is absent in this combination.
                if values.iter().any(Value::is_bottom) {
                    continue;
                }
                let clause = Clause::from_bindings(
                    slots
                        .iter()
                        .zip(&choice)
                        .filter_map(|(slot, &pick)| {
                            slot_vars.get(slot).map(|&var| (var, pick as u32))
                        })
                        .collect::<Vec<_>>(),
                )?;
                rel.push(Tuple::new(values), clause).ok()?;
            }
        }
        annotated.push(rel);
    }
    let mut out = LineageDb::new(vars);
    for rel in annotated {
        out.insert_relation(rel);
    }
    Some(out)
}

/// One variable per multi-world component (`Cid`); a template tuple's
/// variants are the joint local-world choices of the components behind its
/// placeholders and presence conditions, filtered by those conditions.
pub fn uwsdt_lineage(uwsdt: &Uwsdt, relations: &BTreeSet<String>) -> Option<LineageDb> {
    let mut vars = VarTable::new();
    let mut cid_vars: BTreeMap<usize, Var> = BTreeMap::new();
    let mut annotated = Vec::new();
    for name in relations {
        let template = uwsdt.template(name).ok()?;
        let schema = template.schema().clone();
        let attrs: Vec<String> = schema.attrs().iter().map(|a| a.to_string()).collect();
        let mut rel = LineageRelation::new(schema);
        for (t, row) in template.rows().iter().enumerate() {
            // The components this tuple depends on: its placeholder fields
            // plus its presence conditions.
            let mut placeholders: Vec<(usize, FieldId, usize)> = Vec::new();
            let mut cids: BTreeSet<usize> = BTreeSet::new();
            for (attr_idx, attr) in attrs.iter().enumerate() {
                let field = FieldId::new(name.as_str(), t, attr);
                if let Some(cid) = uwsdt.component_of(&field) {
                    placeholders.push((attr_idx, field, cid));
                    cids.insert(cid);
                }
            }
            let presence = uwsdt.presence_of(name, t);
            cids.extend(presence.iter().map(|cond| cond.cid));
            let cid_list: Vec<usize> = cids.into_iter().collect();
            let worlds: Vec<_> = cid_list
                .iter()
                .map(|&cid| uwsdt.component_worlds(cid).ok())
                .collect::<Option<Vec<_>>>()?;
            let radices: Vec<usize> = worlds.iter().map(|w| w.len()).collect();
            let combos = combo_count(&radices)?;
            for (&cid, entries) in cid_list.iter().zip(&worlds) {
                if entries.len() >= 2 && !cid_vars.contains_key(&cid) {
                    let dist: Vec<f64> = entries.iter().map(|w| w.prob).collect();
                    let var = vars.add_var(format!("w{cid}"), dist).ok()?;
                    cid_vars.insert(cid, var);
                }
            }
            let cid_pos: BTreeMap<usize, usize> =
                cid_list.iter().enumerate().map(|(i, &c)| (c, i)).collect();
            let mut choice = vec![0usize; cid_list.len()];
            for code in 0..combos {
                decode_choice(code, &radices, &mut choice);
                // The tuple exists only in local worlds its presence
                // conditions list.
                let present = presence.iter().all(|cond| {
                    cid_pos
                        .get(&cond.cid)
                        .is_some_and(|&i| cond.lwids.contains(&worlds[i][choice[i]].lwid))
                });
                if !present {
                    continue;
                }
                let mut values: Vec<Value> = row.values().to_vec();
                for (attr_idx, field, cid) in &placeholders {
                    let i = cid_pos[cid];
                    let lwid = worlds[i][choice[i]].lwid;
                    // Every local world of a placeholder's component carries
                    // a value; a gap means the mapping cannot be trusted.
                    values[*attr_idx] = uwsdt
                        .placeholder_values(field)
                        .and_then(|m| m.get(&lwid))?
                        .clone();
                }
                // A leftover `?` (or `⊥`) would leak a marker into the
                // answer; decline rather than guess.
                if values.iter().any(|v| v.is_unknown() || v.is_bottom()) {
                    return None;
                }
                let clause = Clause::from_bindings(
                    cid_list
                        .iter()
                        .zip(&choice)
                        .filter_map(|(cid, &pick)| cid_vars.get(cid).map(|&var| (var, pick as u32)))
                        .collect::<Vec<_>>(),
                )?;
                rel.push(Tuple::new(values), clause).ok()?;
            }
        }
        annotated.push(rel);
    }
    let mut out = LineageDb::new(vars);
    for rel in annotated {
        out.insert_relation(rel);
    }
    Some(out)
}

/// U-relations translate verbatim: world-table variables become lineage
/// variables (in sorted name order), descriptors become clauses.
pub fn urel_lineage(udb: &UDatabase, relations: &BTreeSet<String>) -> Option<LineageDb> {
    let table = udb.world_table();
    let names: BTreeSet<String> = table.variables().map(str::to_string).collect();
    let mut vars = VarTable::new();
    let mut var_ids: BTreeMap<String, Var> = BTreeMap::new();
    for name in names {
        let dist = table.distribution(&name).ok()?.to_vec();
        let var = vars.add_var(name.clone(), dist).ok()?;
        var_ids.insert(name, var);
    }
    let mut out = LineageDb::new(vars);
    for name in relations {
        let rel = udb.relation(name).ok()?;
        let mut annotated = LineageRelation::new(rel.schema().clone());
        for (tuple, descriptor) in rel.rows() {
            let mut atoms = Vec::with_capacity(descriptor.len());
            for (var, index) in descriptor.bindings() {
                atoms.push((*var_ids.get(var)?, u32::try_from(index).ok()?));
            }
            let clause = Clause::from_bindings(atoms)?;
            annotated.push(tuple.clone(), clause).ok()?;
        }
        out.insert_relation(annotated);
    }
    Some(out)
}

/// The explicit enumeration maps onto a single selector variable whose domain
/// is the world list; a tuple's clause binds the selector to each world
/// containing it.  Un-normalized weights fail [`VarTable`] validation and opt
/// out.
pub fn worldset_lineage(ws: &WorldSet, relations: &BTreeSet<String>) -> Option<LineageDb> {
    let worlds = ws.worlds();
    if worlds.is_empty() {
        return None;
    }
    let mut vars = VarTable::new();
    let dist: Vec<f64> = worlds.iter().map(|(_, p)| *p).collect();
    let selector = vars.add_var("world", dist).ok()?;
    let mut out = LineageDb::new(vars);
    for name in relations {
        let mut annotated: Option<LineageRelation> = None;
        for (i, (world, _)) in worlds.iter().enumerate() {
            let rel = world.relation(name).ok()?;
            let target =
                annotated.get_or_insert_with(|| LineageRelation::new(rel.schema().clone()));
            // Set semantics inside one world: a duplicate row adds no new
            // derivation.
            let mut seen: BTreeSet<&Tuple> = BTreeSet::new();
            for row in rel.rows() {
                if seen.insert(row) {
                    target
                        .push(row.clone(), Clause::of(selector, i as u32))
                        .ok()?;
                }
            }
        }
        out.insert_relation(annotated?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_relational::lineage::enumerate_probability;

    fn relset(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|n| n.to_string()).collect()
    }

    /// Probability that `tuple` appears in `relation`, by brute-force joint
    /// enumeration over the extracted lineage.
    fn lineage_conf(db: &LineageDb, relation: &str, tuple: &Tuple) -> f64 {
        let dnf: Vec<Clause> = db
            .relation(relation)
            .unwrap()
            .rows()
            .iter()
            .filter(|(t, _)| t == tuple)
            .map(|(_, c)| c.clone())
            .collect();
        enumerate_probability(&dnf, db.vars(), 1 << 20).unwrap()
    }

    #[test]
    fn database_rows_are_certain() {
        let mut db = Database::new();
        let mut rel =
            ws_relational::Relation::new(ws_relational::Schema::new("R", &["A"]).unwrap());
        rel.push_values([1i64]).unwrap();
        rel.push_values([2i64]).unwrap();
        db.insert_relation(rel);
        let lin = database_lineage(&db, &relset(&["R"])).unwrap();
        assert_eq!(lin.vars().len(), 0);
        assert_eq!(lineage_conf(&lin, "R", &Tuple::from_iter([1i64])), 1.0);
    }

    #[test]
    fn wsd_extraction_matches_exact_confidence() {
        let wsd = ws_core::wsd::example_census_wsd();
        let lin = wsd_lineage(&wsd, &relset(&["R"])).unwrap();
        for (tuple, exact) in ws_core::confidence::possible_with_confidence(&wsd, "R").unwrap() {
            let got = lineage_conf(&lin, "R", &tuple);
            // The brute-force joint enumeration sums in a different order
            // than the native exact path, so non-dyadic probabilities can
            // differ in the last ulp; bit-identity on dyadic inputs is
            // covered by the session-level equivalence suite.
            assert!(
                (got - exact).abs() < 1e-12,
                "conf({tuple}) = {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn urel_extraction_matches_exact_confidence() {
        let udb = ws_urel::convert::from_wsd(&ws_core::wsd::example_census_wsd()).unwrap();
        let lin = urel_lineage(&udb, &relset(&["R"])).unwrap();
        for (tuple, exact) in ws_urel::confidence::possible_with_confidence(&udb, "R").unwrap() {
            let got = lineage_conf(&lin, "R", &tuple);
            // The brute-force joint enumeration sums in a different order
            // than the native exact path, so non-dyadic probabilities can
            // differ in the last ulp; bit-identity on dyadic inputs is
            // covered by the session-level equivalence suite.
            assert!(
                (got - exact).abs() < 1e-12,
                "conf({tuple}) = {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn uwsdt_extraction_matches_exact_confidence() {
        let wsd = ws_core::wsd::example_census_wsd();
        let uwsdt = ws_uwsdt::build::from_wsd(&wsd).unwrap();
        let lin = uwsdt_lineage(&uwsdt, &relset(&["R"])).unwrap();
        for (tuple, exact) in ws_uwsdt::confidence::possible_with_confidence(&uwsdt, "R").unwrap() {
            let got = lineage_conf(&lin, "R", &tuple);
            // The brute-force joint enumeration sums in a different order
            // than the native exact path, so non-dyadic probabilities can
            // differ in the last ulp; bit-identity on dyadic inputs is
            // covered by the session-level equivalence suite.
            assert!(
                (got - exact).abs() < 1e-12,
                "conf({tuple}) = {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn worldset_extraction_matches_enumeration() {
        let wsd = ws_core::wsd::example_census_wsd();
        let ws = wsd.rep().unwrap();
        let lin = worldset_lineage(&ws, &relset(&["R"])).unwrap();
        for (tuple, exact) in ws_core::confidence::possible_with_confidence(&wsd, "R").unwrap() {
            let got = lineage_conf(&lin, "R", &tuple);
            assert!(
                (got - exact).abs() < 1e-12,
                "conf({tuple}) = {got}, exact {exact}"
            );
        }
    }
}
