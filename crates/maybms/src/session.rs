//! The MayBMS-style front door: open a [`Session`] on any possible-worlds
//! backend, build queries fluently, prepare once / execute many, stream
//! results.
//!
//! Every representation of this repository evaluates queries through the one
//! `optimize → execute` pipeline of [`ws_relational::engine`]; what used to
//! differ per backend was the *calling convention* — five `evaluate_query`
//! free functions, separate exact/approximate confidence entry points, and
//! hand-managed result-relation names.  A session hides all of that behind
//! four verbs:
//!
//! ```
//! use maybms::{q, Session};
//! use maybms::prelude::Predicate;
//!
//! let wsd = maybms::core::wsd::example_census_wsd();
//! let mut session = Session::new(wsd);
//! let married = session
//!     .prepare(q("R").select(Predicate::eq_const("M", 1i64)).project(["S"]))
//!     .unwrap();
//! let answers: Vec<_> = session.execute(&married).unwrap().collect();
//! let confidences = session.confidence(&married).unwrap();
//! assert_eq!(answers.len(), confidences.len());
//! ```
//!
//! * [`Session::prepare`] typechecks the plan against the backend's catalog
//!   ([`crate::builder::typecheck`]), normalizes and fingerprints it
//!   ([`mod@ws_relational::fingerprint`]), and runs the rule-based optimizer
//!   **once** per distinct plan: re-preparing the same query — even written
//!   with its conjuncts in a different order — is a cache hit.
//! * [`Session::execute`] replays the cached physical plan and returns a
//!   streaming [`Rows`] cursor that pulls row batches from the materialized
//!   result instead of copying it out wholesale.
//! * [`Session::confidence`] / [`Session::confidence_approx`] compute the
//!   paper's §6 tuple confidences (exact, or (ε, δ)-approximate where the
//!   backend has a Monte-Carlo evaluator) on the same prepared plan.
//!
//! [`Session::over`] wraps the five concrete representations in one dynamic
//! [`AnyBackend`], so code that picks a backend at run time still goes
//! through the same typed session.

use crate::builder::{typecheck, typecheck_update, IntoQuery};
use crate::error::{Error, Result};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use ws_core::confidence::approx::ApproxConfig;
use ws_core::ops::update::{apply_update, UpdateExpr};
use ws_core::{WorldSet, Wsd};
use ws_obs::{Observer, ProfileNode};
use ws_relational::engine::{self, EngineConfig, ExecContext, QueryBackend, SchemaCatalog};
use ws_relational::lineage::{self, DtreeCompiler, LineageDb};
use ws_relational::{
    fingerprint, optimizer, Database, Dependency, Predicate, RaExpr, Schema, Tuple, Value,
    WorkerPool, WriteBackend,
};
use ws_storage::DurabilityStats;
use ws_urel::UDatabase;
use ws_uwsdt::Uwsdt;

// ---------------------------------------------------------------------------
// Backend capabilities beyond QueryBackend.
// ---------------------------------------------------------------------------

/// How a session pulls rows out of a materialized query result.
pub enum RowSource {
    /// Rows stay inside the backend; the cursor fetches batches by range
    /// (the single-world database, whose result relation is already the
    /// answer).
    InPlace {
        /// Total number of streamable rows.
        len: usize,
    },
    /// The backend extracted the possible tuples of the represented result
    /// once (world-set representations, where the stored result is a
    /// *representation*, not the answer).
    Owned(Vec<Tuple>),
}

/// What a [`Session`] needs from a backend on top of the shared
/// [`QueryBackend`] operators: result streaming and confidence extraction.
///
/// Implemented for the five representations ([`Database`], [`Wsd`],
/// [`Uwsdt`], [`UDatabase`], [`WorldSet`]) and for the dynamic
/// [`AnyBackend`].
pub trait SessionBackend: QueryBackend {
    /// Short name used in stats and diagnostics.
    fn backend_name(&self) -> &'static str;

    /// Whether result relations are self-contained, i.e. dropping them after
    /// streaming cannot perturb the rest of the store.  Component-sharing
    /// representations (WSD, UWSDT) return `false` and keep their results
    /// registered, mirroring [`EngineConfig::drop_temps`]'s guidance.
    fn self_contained(&self) -> bool;

    /// Prepare the materialized result `out` for streaming and describe how
    /// rows are pulled from it.
    fn open_rows(&mut self, out: &str) -> Result<RowSource>;

    /// Fetch rows `offset .. offset + limit` of an [`RowSource::InPlace`]
    /// result.  Backends that always hand out [`RowSource::Owned`] never see
    /// this call.
    fn fetch_batch(&self, out: &str, offset: usize, limit: usize) -> Result<Vec<Tuple>> {
        let _ = (out, offset, limit);
        Ok(Vec::new())
    }

    /// The possible tuples of result `out` with their exact confidences.
    fn confidence_rows(&self, out: &str, pool: &WorkerPool) -> Result<Vec<(Tuple, f64)>>;

    /// The possible tuples of result `out` with (ε, δ)-approximate
    /// confidences.  Backends without a Monte-Carlo evaluator (UWSDT, the
    /// explicit world-set oracle, the single-world database) fall back to
    /// the exact computation — the approximation guarantee then holds
    /// trivially.
    fn confidence_rows_approx(
        &self,
        out: &str,
        config: &ApproxConfig,
        pool: &WorkerPool,
    ) -> Result<Vec<(Tuple, f64)>> {
        let _ = config;
        self.confidence_rows(out, pool)
    }

    /// The durability counters of a persistent backend; `None` for the
    /// in-memory representations.  [`Session::stats`] folds these into
    /// [`SessionStats`] so WAL and checkpoint activity shows up next to the
    /// query counters.
    fn durability(&self) -> Option<DurabilityStats> {
        None
    }

    /// Extract a [`LineageDb`] covering `relations` — a faithful mapping of
    /// this representation onto independent finite-domain variables, feeding
    /// the safe-plan and compiled-lineage confidence tiers.  `None` opts the
    /// backend out (the session then uses [`SessionBackend::confidence_rows`]
    /// directly), which is always safe; see [`crate::lineage`].
    fn lineage(&self, relations: &BTreeSet<String>) -> Option<LineageDb> {
        let _ = relations;
        None
    }
}

impl SessionBackend for Database {
    fn backend_name(&self) -> &'static str {
        "database"
    }

    fn self_contained(&self) -> bool {
        true
    }

    fn open_rows(&mut self, out: &str) -> Result<RowSource> {
        // The single world's answer uses set semantics, matching the
        // possible-tuple extraction of the world-set backends.
        let mut rel = self
            .remove_relation(out)
            .ok_or_else(|| Error::other(format!("result relation `{out}` vanished")))?;
        rel.dedup();
        let len = rel.len();
        self.insert_relation(rel);
        Ok(RowSource::InPlace { len })
    }

    fn fetch_batch(&self, out: &str, offset: usize, limit: usize) -> Result<Vec<Tuple>> {
        let rows = self.relation(out).map_err(Error::from)?.rows();
        let end = offset.saturating_add(limit).min(rows.len());
        Ok(rows.get(offset..end).unwrap_or_default().to_vec())
    }

    fn confidence_rows(&self, out: &str, _pool: &WorkerPool) -> Result<Vec<(Tuple, f64)>> {
        // One world: every distinct answer tuple is certain.
        let mut rel = self.relation(out).map_err(Error::from)?.clone();
        rel.dedup();
        Ok(rel.rows().iter().map(|t| (t.clone(), 1.0)).collect())
    }

    fn lineage(&self, relations: &BTreeSet<String>) -> Option<LineageDb> {
        crate::lineage::database_lineage(self, relations)
    }
}

impl SessionBackend for Wsd {
    fn backend_name(&self) -> &'static str {
        "wsd"
    }

    fn self_contained(&self) -> bool {
        false
    }

    fn open_rows(&mut self, out: &str) -> Result<RowSource> {
        let possible = ws_core::confidence::possible(self, out)?;
        Ok(RowSource::Owned(possible.rows().to_vec()))
    }

    fn confidence_rows(&self, out: &str, pool: &WorkerPool) -> Result<Vec<(Tuple, f64)>> {
        Ok(ws_core::confidence::possible_with_confidence_with(
            self, out, pool,
        )?)
    }

    fn confidence_rows_approx(
        &self,
        out: &str,
        config: &ApproxConfig,
        pool: &WorkerPool,
    ) -> Result<Vec<(Tuple, f64)>> {
        Ok(ws_core::confidence::approx::possible_with_confidence_with(
            self, out, config, pool,
        )?)
    }

    fn lineage(&self, relations: &BTreeSet<String>) -> Option<LineageDb> {
        crate::lineage::wsd_lineage(self, relations)
    }
}

impl SessionBackend for Uwsdt {
    fn backend_name(&self) -> &'static str {
        "uwsdt"
    }

    fn self_contained(&self) -> bool {
        false
    }

    fn open_rows(&mut self, out: &str) -> Result<RowSource> {
        Ok(RowSource::Owned(ws_uwsdt::ops::possible_tuples(self, out)?))
    }

    fn confidence_rows(&self, out: &str, _pool: &WorkerPool) -> Result<Vec<(Tuple, f64)>> {
        Ok(ws_uwsdt::confidence::possible_with_confidence(self, out)?)
    }

    fn lineage(&self, relations: &BTreeSet<String>) -> Option<LineageDb> {
        crate::lineage::uwsdt_lineage(self, relations)
    }
}

impl SessionBackend for UDatabase {
    fn backend_name(&self) -> &'static str {
        "urel"
    }

    fn self_contained(&self) -> bool {
        true
    }

    fn open_rows(&mut self, out: &str) -> Result<RowSource> {
        let possible = self.relation(out).map_err(Error::from)?.possible_tuples();
        Ok(RowSource::Owned(possible.rows().to_vec()))
    }

    fn confidence_rows(&self, out: &str, pool: &WorkerPool) -> Result<Vec<(Tuple, f64)>> {
        Ok(ws_urel::confidence::possible_with_confidence_with(
            self, out, pool,
        )?)
    }

    fn confidence_rows_approx(
        &self,
        out: &str,
        config: &ApproxConfig,
        pool: &WorkerPool,
    ) -> Result<Vec<(Tuple, f64)>> {
        Ok(ws_urel::confidence::approx::possible_with_confidence_with(
            self, out, config, pool,
        )?)
    }

    fn lineage(&self, relations: &BTreeSet<String>) -> Option<LineageDb> {
        crate::lineage::urel_lineage(self, relations)
    }
}

impl SessionBackend for WorldSet {
    fn backend_name(&self) -> &'static str {
        "worlds"
    }

    fn self_contained(&self) -> bool {
        true
    }

    fn open_rows(&mut self, out: &str) -> Result<RowSource> {
        Ok(RowSource::Owned(ws_baselines::possible_tuples(self, out)?))
    }

    fn confidence_rows(&self, out: &str, _pool: &WorkerPool) -> Result<Vec<(Tuple, f64)>> {
        let possible = ws_baselines::possible_tuples(self, out)?;
        possible
            .into_iter()
            .map(|t| {
                let c = ws_baselines::confidence(self, out, &t)?;
                Ok((t, c))
            })
            .collect()
    }

    fn lineage(&self, relations: &BTreeSet<String>) -> Option<LineageDb> {
        crate::lineage::worldset_lineage(self, relations)
    }
}

// ---------------------------------------------------------------------------
// The dynamic backend.
// ---------------------------------------------------------------------------

/// Any of the five possible-worlds representations behind one type, for code
/// that picks its backend at run time ([`Session::over`]).
///
/// `AnyBackend` implements the full backend stack ([`SchemaCatalog`],
/// [`QueryBackend`], [`SessionBackend`]) by dispatch, with every error
/// converted into the unified [`Error`].
#[derive(Clone, Debug)]
pub enum AnyBackend {
    /// One ordinary single-world database.
    Db(Database),
    /// A world-set decomposition (§3–§5).
    Wsd(Wsd),
    /// The uniform WSDT representation (§7).
    Uwsdt(Uwsdt),
    /// U-relations (the intensional follow-up representation).
    Urel(UDatabase),
    /// The explicit world-enumeration oracle.
    Worlds(WorldSet),
}

impl From<Database> for AnyBackend {
    fn from(b: Database) -> Self {
        AnyBackend::Db(b)
    }
}

impl From<Wsd> for AnyBackend {
    fn from(b: Wsd) -> Self {
        AnyBackend::Wsd(b)
    }
}

impl From<Uwsdt> for AnyBackend {
    fn from(b: Uwsdt) -> Self {
        AnyBackend::Uwsdt(b)
    }
}

impl From<UDatabase> for AnyBackend {
    fn from(b: UDatabase) -> Self {
        AnyBackend::Urel(b)
    }
}

impl From<WorldSet> for AnyBackend {
    fn from(b: WorldSet) -> Self {
        AnyBackend::Worlds(b)
    }
}

/// Dispatch a method call to whichever representation is inside.
macro_rules! dispatch {
    ($self:expr, $b:ident => $body:expr) => {
        match $self {
            AnyBackend::Db($b) => $body,
            AnyBackend::Wsd($b) => $body,
            AnyBackend::Uwsdt($b) => $body,
            AnyBackend::Urel($b) => $body,
            AnyBackend::Worlds($b) => $body,
        }
    };
}

impl SchemaCatalog for AnyBackend {
    fn schema_of(&self, relation: &str) -> ws_relational::Result<Schema> {
        dispatch!(self, b => b.schema_of(relation))
    }

    fn contains_relation(&self, relation: &str) -> bool {
        dispatch!(self, b => b.contains_relation(relation))
    }
}

impl QueryBackend for AnyBackend {
    type Error = Error;

    fn materialize_base(&mut self, name: &str, out: &str) -> Result<()> {
        dispatch!(self, b => b.materialize_base(name, out).map_err(Error::from))
    }

    fn apply_select(
        &mut self,
        input: &str,
        pred: &Predicate,
        out: &str,
        ctx: &mut ExecContext,
    ) -> Result<()> {
        dispatch!(self, b => b.apply_select(input, pred, out, ctx).map_err(Error::from))
    }

    fn apply_project(
        &mut self,
        input: &str,
        attrs: &[String],
        out: &str,
        ctx: &mut ExecContext,
    ) -> Result<()> {
        dispatch!(self, b => b.apply_project(input, attrs, out, ctx).map_err(Error::from))
    }

    fn apply_product(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
        ctx: &mut ExecContext,
    ) -> Result<()> {
        dispatch!(self, b => b.apply_product(left, right, out, ctx).map_err(Error::from))
    }

    fn apply_equi_join(
        &mut self,
        left: &str,
        right: &str,
        left_attr: &str,
        right_attr: &str,
        out: &str,
        ctx: &mut ExecContext,
    ) -> Result<()> {
        dispatch!(self, b => {
            b.apply_equi_join(left, right, left_attr, right_attr, out, ctx)
                .map_err(Error::from)
        })
    }

    fn apply_union(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        dispatch!(self, b => b.apply_union(left, right, out).map_err(Error::from))
    }

    fn apply_difference(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        dispatch!(self, b => b.apply_difference(left, right, out).map_err(Error::from))
    }

    fn apply_rename(&mut self, input: &str, from: &str, to: &str, out: &str) -> Result<()> {
        dispatch!(self, b => b.apply_rename(input, from, to, out).map_err(Error::from))
    }

    fn drop_scratch(&mut self, name: &str) {
        dispatch!(self, b => b.drop_scratch(name))
    }

    fn profile_rows(&self, relation: &str) -> Option<u64> {
        dispatch!(self, b => b.profile_rows(relation))
    }
}

impl WriteBackend for AnyBackend {
    fn insert_certain(&mut self, relation: &str, tuple: &Tuple) -> Result<()> {
        dispatch!(self, b => b.insert_certain(relation, tuple).map_err(Error::from))
    }

    fn insert_possible(&mut self, relation: &str, tuple: &Tuple, prob: f64) -> Result<()> {
        dispatch!(self, b => b.insert_possible(relation, tuple, prob).map_err(Error::from))
    }

    fn delete_where(&mut self, relation: &str, pred: &Predicate) -> Result<()> {
        dispatch!(self, b => b.delete_where(relation, pred).map_err(Error::from))
    }

    fn modify_where(
        &mut self,
        relation: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<()> {
        dispatch!(self, b => b.modify_where(relation, pred, assignments).map_err(Error::from))
    }

    fn apply_condition(&mut self, constraints: &[Dependency]) -> Result<f64> {
        dispatch!(self, b => b.apply_condition(constraints).map_err(Error::from))
    }
}

impl SessionBackend for AnyBackend {
    fn backend_name(&self) -> &'static str {
        dispatch!(self, b => b.backend_name())
    }

    fn self_contained(&self) -> bool {
        dispatch!(self, b => b.self_contained())
    }

    fn open_rows(&mut self, out: &str) -> Result<RowSource> {
        dispatch!(self, b => b.open_rows(out))
    }

    fn fetch_batch(&self, out: &str, offset: usize, limit: usize) -> Result<Vec<Tuple>> {
        dispatch!(self, b => b.fetch_batch(out, offset, limit))
    }

    fn confidence_rows(&self, out: &str, pool: &WorkerPool) -> Result<Vec<(Tuple, f64)>> {
        dispatch!(self, b => b.confidence_rows(out, pool))
    }

    fn confidence_rows_approx(
        &self,
        out: &str,
        config: &ApproxConfig,
        pool: &WorkerPool,
    ) -> Result<Vec<(Tuple, f64)>> {
        dispatch!(self, b => b.confidence_rows_approx(out, config, pool))
    }

    fn lineage(&self, relations: &BTreeSet<String>) -> Option<LineageDb> {
        dispatch!(self, b => b.lineage(relations))
    }
}

// ---------------------------------------------------------------------------
// Prepared plans and stats.
// ---------------------------------------------------------------------------

/// A typechecked, optimized, fingerprinted plan — prepare once, execute many.
#[derive(Clone, Debug, PartialEq)]
pub struct Prepared {
    display: String,
    plan: RaExpr,
    key: String,
    fingerprint: u64,
    attrs: Vec<String>,
}

impl Prepared {
    /// The physical (already optimized) plan the executor replays.
    pub fn plan(&self) -> &RaExpr {
        &self.plan
    }

    /// The (ordered) output attributes, as resolved by the typechecker.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// The compact 64-bit digest of the normalized plan.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The collision-proof cache key (the normalized plan, rendered).
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl fmt::Display for Prepared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [#{:016x}]", self.display, self.fingerprint)
    }
}

/// How [`Session::confidence`] picks its evaluation tier.
///
/// Exact confidence computation is `#P`-hard in general, but large classes of
/// plans and inputs admit cheaper *exact* evaluation.  The session tries, in
/// order:
///
/// 1. **Safe plan** — when the plan shape is hierarchical
///    ([`lineage::is_safe_shape`]) and every extensional rewrite step is
///    verifiably sound on the actual lineage
///    ([`lineage::safe_probabilities`]), probabilities are aggregated inside
///    the plan (independent-AND / disjoint-OR / independent-project) in one
///    linear pass.
/// 2. **Compiled lineage** — otherwise the output DNFs are compiled to a
///    Shannon-expansion d-tree with memoized cofactor sharing
///    ([`DtreeCompiler`]), still exact, within a node budget.
/// 3. **Native exact** — when the backend has no lineage mapping or a tier
///    declines, the backend's own exact enumeration answers.
///
/// Every tier is exact; the strategy only chooses *how* the same numbers are
/// computed, and [`SessionStats`] records which tier fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConfidenceStrategy {
    /// Safe plan, then compiled lineage, then the native exact path.
    #[default]
    Tiered,
    /// Skip the safe-plan tier: always compile the lineage d-tree (with the
    /// native exact path as fallback).  Mostly useful for testing and
    /// benchmarking the compiler.
    CompiledOnly,
    /// Always use the backend's native exact enumeration (the pre-tier
    /// behavior).
    ExactOnly,
}

/// Which lineage tier produced an answer (internal bookkeeping for the
/// [`SessionStats`] counters).
enum LineageTier {
    Safe,
    Compiled,
}

/// Counters of one session's lifetime, for benches and capacity planning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Optimizer runs — [`Session::prepare`] calls that missed the cache.
    pub plans_prepared: u64,
    /// [`Session::prepare`] calls answered from the prepared-plan cache.
    pub cache_hits: u64,
    /// Plan executions ([`Session::execute`], [`Session::confidence`],
    /// [`Session::confidence_approx`]).
    pub executions: u64,
    /// Rows pulled through [`Rows`] cursors and confidence calls.
    pub rows_streamed: u64,
    /// Updates applied through [`Session::apply`] / [`Session::apply_all`] /
    /// [`Session::condition`].
    pub updates_applied: u64,
    /// Prepared-plan cache entries evicted because an update touched one of
    /// their base relations.
    pub plans_invalidated: u64,
    /// Write-ahead-log records appended since the last checkpoint (durable
    /// sessions only; 0 on in-memory backends).
    pub wal_records: u64,
    /// Write-ahead-log bytes appended since the last checkpoint (durable
    /// sessions only).
    pub wal_bytes: u64,
    /// Checkpoints taken through [`Session::checkpoint`] (durable sessions
    /// only).
    pub checkpoints: u64,
    /// [`Session::confidence`] calls answered by the safe-plan (extensional)
    /// tier.
    pub conf_safe: u64,
    /// [`Session::confidence`] calls answered by the compiled-lineage
    /// (d-tree) tier.
    pub conf_compiled: u64,
    /// [`Session::confidence`] calls answered by the backend's native exact
    /// path (the lineage tiers declined or were disabled).
    pub conf_exact: u64,
    /// [`Session::confidence_approx`] calls (Monte-Carlo or the backend's
    /// exact fallback).
    pub conf_approx: u64,
    /// Read snapshots pinned from a concurrent store (ws-server sessions
    /// only; 0 on plain sessions).
    pub snapshots_pinned: u64,
    /// Group-commit batches the concurrent store's committer flushed.
    pub commit_batches: u64,
    /// Updates carried by those batches; `mean_batch()` is the ratio.
    pub batched_updates: u64,
    /// Bytes received over the wire protocol (ws-server only).
    pub wire_bytes_in: u64,
    /// Bytes sent over the wire protocol (ws-server only).
    pub wire_bytes_out: u64,
}

impl SessionStats {
    /// Fold another stats block into this one, field by field.  The server
    /// carries a connection's counters across snapshot re-pins with this:
    /// each re-pin rebuilds the session (zeroing its counters), so the old
    /// session's stats are absorbed first and the remote `summary()` keeps
    /// accumulating — matching what a local session would report.
    pub fn absorb(&mut self, other: &SessionStats) {
        self.plans_prepared += other.plans_prepared;
        self.cache_hits += other.cache_hits;
        self.executions += other.executions;
        self.rows_streamed += other.rows_streamed;
        self.updates_applied += other.updates_applied;
        self.plans_invalidated += other.plans_invalidated;
        self.wal_records += other.wal_records;
        self.wal_bytes += other.wal_bytes;
        self.checkpoints += other.checkpoints;
        self.conf_safe += other.conf_safe;
        self.conf_compiled += other.conf_compiled;
        self.conf_exact += other.conf_exact;
        self.conf_approx += other.conf_approx;
        self.snapshots_pinned += other.snapshots_pinned;
        self.commit_batches += other.commit_batches;
        self.batched_updates += other.batched_updates;
        self.wire_bytes_in += other.wire_bytes_in;
        self.wire_bytes_out += other.wire_bytes_out;
    }

    /// Mean updates per group-commit batch (0.0 before the first batch) —
    /// the amortization factor each batch fsync buys.
    pub fn mean_batch(&self) -> f64 {
        if self.commit_batches == 0 {
            0.0
        } else {
            self.batched_updates as f64 / self.commit_batches as f64
        }
    }
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plans-prepared={} cache-hits={} executions={} rows-streamed={} \
             updates-applied={} plans-invalidated={} wal-records={} wal-bytes={} \
             checkpoints={} conf-safe={} conf-compiled={} conf-exact={} conf-approx={}",
            self.plans_prepared,
            self.cache_hits,
            self.executions,
            self.rows_streamed,
            self.updates_applied,
            self.plans_invalidated,
            self.wal_records,
            self.wal_bytes,
            self.checkpoints,
            self.conf_safe,
            self.conf_compiled,
            self.conf_exact,
            self.conf_approx,
        )?;
        // The service counters print unconditionally (0 on plain sessions),
        // so a local and a remote `summary()` always show the same fields.
        write!(
            f,
            " snapshots-pinned={} commit-batches={} mean-batch={:.1} \
             wire-bytes-in={} wire-bytes-out={}",
            self.snapshots_pinned,
            self.commit_batches,
            self.mean_batch(),
            self.wire_bytes_in,
            self.wire_bytes_out,
        )
    }
}

/// What [`Session::explain_analyze`] returns: real measurements of one
/// profiled execution — a per-operator tree plus the query-level facts
/// (row count, confidence tier, plan-cache hit).
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// The profiled plan, rendered.
    pub plan: String,
    /// The per-operator execution tree: rows in/out, batches, wall-clock
    /// and the columnar-vs-row path each operator took.
    pub root: ProfileNode,
    /// The confidence step: rows in = streamed answers, rows out = distinct
    /// tuples with confidences, detail = the tier that fired.
    pub confidence: ProfileNode,
    /// Which confidence tier answered: `"safe"`, `"compiled"` or `"exact"`.
    pub tier: &'static str,
    /// Whether the plan was in the prepared-plan cache: `"hit"` or `"miss"`.
    pub cache: &'static str,
    /// Rows the execution materialized (matches the streamed answer count).
    pub rows: u64,
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query: {}", self.plan)?;
        writeln!(
            f,
            "rows={} tier={} plan-cache={}",
            self.rows, self.tier, self.cache
        )?;
        f.write_str(&self.root.render())?;
        f.write_str(&self.confidence.render())
    }
}

/// One prepared-plan cache entry: the optimized plan plus the metadata the
/// update verbs need to invalidate it (its fingerprint and the base
/// relations it reads).
#[derive(Clone, Debug)]
struct CachedPlan {
    plan: RaExpr,
    fingerprint: u64,
    relations: BTreeSet<String>,
}

// ---------------------------------------------------------------------------
// The session.
// ---------------------------------------------------------------------------

/// Default number of rows a [`Rows`] cursor pulls per batch: the executor's
/// native batch granularity ([`ws_relational::cursor::NATIVE_BATCH_ROWS`],
/// one columnar morsel), so a refill moves exactly one kernel-sized unit.
pub const DEFAULT_BATCH_SIZE: usize = ws_relational::cursor::NATIVE_BATCH_ROWS;

/// A stateful connection to one possible-worlds backend: catalog, engine
/// configuration, prepared-plan cache and usage stats in one place.
#[derive(Debug)]
pub struct Session<B: SessionBackend> {
    backend: B,
    config: EngineConfig,
    plans: HashMap<String, CachedPlan>,
    stats: SessionStats,
    batch_size: usize,
    strategy: ConfidenceStrategy,
    scratch: usize,
    /// Scratch result relations still registered in the backend (results on
    /// component-sharing backends outlive their cursor; see
    /// [`Session::apply`] for the staleness rule).
    live_results: Vec<String>,
    /// The observability domain queries report into, when one was attached
    /// with [`Session::set_observer`].
    observer: Option<Arc<Observer>>,
    /// This session's id in the observer's trace stream (0 when unobserved).
    session_id: u64,
}

impl Session<AnyBackend> {
    /// Open a session over a run-time-chosen backend.
    pub fn over(backend: impl Into<AnyBackend>) -> Session<AnyBackend> {
        Session::new(backend.into())
    }
}

impl<B: SessionBackend> Session<B>
where
    B::Error: Into<Error>,
{
    /// Open a session with the default [`EngineConfig`].
    pub fn new(backend: B) -> Session<B> {
        Session::with_config(backend, EngineConfig::default())
    }

    /// Open a session with explicit engine knobs (threads, optimizer,
    /// plan-cache, …).
    pub fn with_config(backend: B, config: EngineConfig) -> Session<B> {
        Session {
            backend,
            config,
            plans: HashMap::new(),
            stats: SessionStats::default(),
            batch_size: DEFAULT_BATCH_SIZE,
            strategy: ConfidenceStrategy::default(),
            scratch: 0,
            live_results: Vec::new(),
            observer: None,
            session_id: 0,
        }
    }

    /// Attach an observability domain: queries and updates emit trace spans
    /// and metrics to `observer` from here on, and the engine's hot-path
    /// instrumentation turns on ([`EngineConfig::observe`] is set — results
    /// stay bit-identical).
    pub fn set_observer(&mut self, observer: Arc<Observer>) {
        self.session_id = observer.next_session_id();
        self.config.observe = true;
        self.observer = Some(observer);
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&Arc<Observer>> {
        self.observer.as_ref()
    }

    /// This session's id in the observer's trace stream (0 when unobserved).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The engine configuration the session plans and executes under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Shared access to the underlying backend (for representation-specific
    /// inspection: stats, world counts, …).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the underlying backend (loading data, chasing
    /// dependencies).  Structural changes to *schemas* invalidate prepared
    /// plans; call [`Session::clear_plan_cache`] afterwards.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Tear the session down and hand the backend back.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Lifetime counters: plans prepared, cache hits, executions, rows
    /// streamed — plus, on durable sessions, the WAL/checkpoint counters of
    /// the persistence layer.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.stats;
        if let Some(durability) = self.backend.durability() {
            stats.wal_records = durability.wal_records;
            stats.wal_bytes = durability.wal_bytes;
            stats.checkpoints = durability.checkpoints;
            stats.commit_batches = durability.commit_batches;
            stats.batched_updates = durability.batched_updates;
        }
        stats
    }

    /// A one-line description of the session for bench output: backend,
    /// engine configuration and usage counters.
    pub fn summary(&self) -> String {
        format!(
            "backend={} {} | {} cached-plans={}",
            self.backend.backend_name(),
            self.config.summary(),
            self.stats(),
            self.plans.len(),
        )
    }

    /// How [`Session::confidence`] picks its evaluation tier (default
    /// [`ConfidenceStrategy::Tiered`]).
    pub fn confidence_strategy(&self) -> ConfidenceStrategy {
        self.strategy
    }

    /// Change the confidence evaluation strategy.  Every strategy computes
    /// the same exact numbers; this only selects which machinery does.
    pub fn set_confidence_strategy(&mut self, strategy: ConfidenceStrategy) {
        self.strategy = strategy;
    }

    /// Rows per [`Rows`] batch pull (default [`DEFAULT_BATCH_SIZE`]).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Change the cursor batch size (`0` is treated as 1).
    pub fn set_batch_size(&mut self, batch_size: usize) {
        self.batch_size = batch_size.max(1);
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Drop every cached plan (required after schema-changing backend
    /// mutations).
    pub fn clear_plan_cache(&mut self) {
        self.plans.clear();
    }

    /// Typecheck, normalize, fingerprint and (on a cache miss) optimize a
    /// query into a [`Prepared`] plan.
    ///
    /// Accepts anything [`IntoQuery`]: a fluent [`crate::builder::Query`] or
    /// a raw [`RaExpr`].
    pub fn prepare(&mut self, query: impl IntoQuery) -> Result<Prepared> {
        let expr = query.into_query().lower();
        let attrs = typecheck(&self.backend, &expr)?;
        let key = fingerprint::plan_key(&expr);
        let digest = fingerprint::fingerprint(&expr);
        let plan = if self.config.plan_cache {
            if let Some(cached) = self.plans.get(&key) {
                self.stats.cache_hits += 1;
                cached.plan.clone()
            } else {
                let planned = self.optimize(&expr)?;
                self.plans.insert(
                    key.clone(),
                    CachedPlan {
                        plan: planned.clone(),
                        fingerprint: digest,
                        relations: expr
                            .base_relations()
                            .into_iter()
                            .map(str::to_string)
                            .collect(),
                    },
                );
                self.stats.plans_prepared += 1;
                planned
            }
        } else {
            self.stats.plans_prepared += 1;
            self.optimize(&expr)?
        };
        Ok(Prepared {
            display: expr.to_string(),
            plan,
            key,
            fingerprint: digest,
            attrs,
        })
    }

    fn optimize(&self, expr: &RaExpr) -> Result<RaExpr> {
        if self.config.optimize {
            optimizer::optimize(&self.backend, expr).map_err(|e| Error::from(e).with_plan(expr))
        } else {
            Ok(expr.clone())
        }
    }

    /// Replay a prepared plan and stream its possible answer tuples.
    ///
    /// The result is materialized inside the backend under a fresh scratch
    /// name and pulled out in batches of [`Session::batch_size`] rows; on
    /// self-contained backends the scratch result is dropped when the cursor
    /// is done with it.
    pub fn execute(&mut self, prepared: &Prepared) -> Result<Rows<'_, B>> {
        let out = self.run(prepared)?;
        let source = self
            .backend
            .open_rows(&out)
            .map_err(|e| e.with_plan(&prepared.display))?;
        let (inner, cleanup) = match source {
            RowSource::InPlace { len } => (RowsInner::InPlace { len, offset: 0 }, true),
            RowSource::Owned(rows) => {
                // The extraction already detached the answer from the store.
                if self.backend.self_contained() {
                    self.backend.drop_scratch(&out);
                    self.live_results.retain(|r| r != &out);
                }
                (RowsInner::Owned(rows.into_iter()), false)
            }
        };
        Ok(Rows {
            backend: &mut self.backend,
            stats: &mut self.stats,
            live_results: &mut self.live_results,
            out,
            batch: self.batch_size,
            inner,
            buf: Vec::new().into_iter(),
            cleanup,
        })
    }

    /// Prepare and execute in one step (still cached: repeated one-shot
    /// queries hit the plan cache).
    pub fn query(&mut self, query: impl IntoQuery) -> Result<Rows<'_, B>> {
        let prepared = self.prepare(query)?;
        self.execute(&prepared)
    }

    /// Execute a prepared plan and leave its result *materialized in the
    /// backend* under the returned scratch name, without streaming anything
    /// out — for callers that want to inspect the result representation
    /// (UWSDT stats, component counts) or chain further queries over it.
    ///
    /// The result stays registered on every backend; drop it through
    /// [`Session::backend_mut`] when done.
    pub fn materialize(&mut self, prepared: &Prepared) -> Result<String> {
        self.run(prepared)
    }

    /// The possible answer tuples of a prepared plan with their **exact**
    /// confidences (§6).
    ///
    /// Under the default [`ConfidenceStrategy::Tiered`] the session
    /// shadow-evaluates the plan over the backend's extracted lineage and
    /// answers from the cheapest applicable exact tier — safe-plan
    /// extensional evaluation, then the compiled d-tree — falling back to
    /// the backend's native exact enumeration (on the session's worker pool)
    /// whenever a tier declines.  Every tier computes the same numbers;
    /// [`SessionStats`] records which one fired.
    pub fn confidence(&mut self, prepared: &Prepared) -> Result<Vec<(Tuple, f64)>> {
        let out = self.run(prepared)?;
        let rows = self.confidence_rows_tiered(prepared, &out);
        self.finish_result(&out);
        let rows = rows?;
        self.stats.rows_streamed += rows.len() as u64;
        Ok(rows)
    }

    /// The tier ladder behind [`Session::confidence`]: lineage tiers first
    /// (unless [`ConfidenceStrategy::ExactOnly`]), the backend's native
    /// exact path as the unconditional fallback.
    fn confidence_rows_tiered(
        &mut self,
        prepared: &Prepared,
        out: &str,
    ) -> Result<Vec<(Tuple, f64)>> {
        let observer = self.observer.clone();
        if self.strategy != ConfidenceStrategy::ExactOnly {
            let started = Instant::now();
            if let Some((tier, probs)) = self.lineage_probabilities(prepared) {
                if let Some(rows) = self.lineage_rows(out, &probs)? {
                    let name = match tier {
                        LineageTier::Safe => {
                            self.stats.conf_safe += 1;
                            "safe"
                        }
                        LineageTier::Compiled => {
                            self.stats.conf_compiled += 1;
                            "compiled"
                        }
                    };
                    if let Some(observer) = &observer {
                        let metrics = observer.metrics();
                        metrics.counter(&format!("conf.tier.{name}.hits")).inc();
                        metrics
                            .histogram(&format!("conf.tier.{name}.ns"))
                            .record_duration(started.elapsed());
                    }
                    return Ok(rows);
                }
            }
            if let Some(observer) = &observer {
                // The lineage tiers were tried and declined; the native
                // exact path below answers.
                observer
                    .metrics()
                    .counter("conf.tier.lineage.declined")
                    .inc();
            }
        }
        self.stats.conf_exact += 1;
        let started = Instant::now();
        let pool = WorkerPool::new(self.config.threads);
        let rows = self
            .backend
            .confidence_rows(out, &pool)
            .map_err(|e| e.with_plan(&prepared.display));
        if let Some(observer) = &observer {
            let metrics = observer.metrics();
            metrics.counter("conf.tier.exact.hits").inc();
            metrics
                .histogram("conf.tier.exact.ns")
                .record_duration(started.elapsed());
        }
        rows
    }

    /// Shadow-evaluate `prepared` over the backend's lineage, returning each
    /// possible output tuple's exact probability — by the safe-plan tier
    /// when the plan is hierarchical and every extensional step is sound on
    /// the actual lineage, by the d-tree compiler otherwise.  `None` when no
    /// lineage tier applies (no mapping, negation in the plan, compiler
    /// budget exhausted).
    fn lineage_probabilities(
        &self,
        prepared: &Prepared,
    ) -> Option<(LineageTier, BTreeMap<Tuple, f64>)> {
        let relations: BTreeSet<String> = prepared
            .plan
            .base_relations()
            .into_iter()
            .map(str::to_string)
            .collect();
        let db = self.backend.lineage(&relations)?;
        if self.strategy == ConfidenceStrategy::Tiered && lineage::is_safe_shape(&prepared.plan) {
            if let Ok(Some(probs)) = lineage::safe_probabilities(&db, &prepared.plan) {
                return Some((LineageTier::Safe, probs));
            }
        }
        let output = lineage::evaluate_lineage(&db, &prepared.plan).ok()?;
        let mut compiler = DtreeCompiler::new(db.vars());
        let mut probs = BTreeMap::new();
        for (tuple, dnf) in output.dnfs() {
            probs.insert(tuple, compiler.probability(&dnf).ok()?);
        }
        Some((LineageTier::Compiled, probs))
    }

    /// Pair the materialized result's possible tuples (in their canonical
    /// streaming order) with the lineage-computed probabilities.  `None`
    /// when any streamed tuple is missing from the map — the native exact
    /// path then answers, so a divergence can never produce wrong numbers.
    fn lineage_rows(
        &mut self,
        out: &str,
        probs: &BTreeMap<Tuple, f64>,
    ) -> Result<Option<Vec<(Tuple, f64)>>> {
        let tuples = match self.backend.open_rows(out)? {
            RowSource::Owned(rows) => rows,
            RowSource::InPlace { len } => self.backend.fetch_batch(out, 0, len)?,
        };
        let mut rows = Vec::with_capacity(tuples.len());
        let mut seen: BTreeSet<Tuple> = BTreeSet::new();
        for tuple in tuples {
            if !seen.insert(tuple.clone()) {
                continue;
            }
            match probs.get(&tuple) {
                Some(&p) => rows.push((tuple, p)),
                None => return Ok(None),
            }
        }
        Ok(Some(rows))
    }

    /// The possible answer tuples of a prepared plan with (ε, δ)-approximate
    /// confidences, where the backend has a Monte-Carlo evaluator (WSDs,
    /// U-relations); other backends answer exactly.
    pub fn confidence_approx(
        &mut self,
        prepared: &Prepared,
        config: &ApproxConfig,
    ) -> Result<Vec<(Tuple, f64)>> {
        let out = self.run(prepared)?;
        let pool = WorkerPool::new(self.config.threads);
        let rows = self
            .backend
            .confidence_rows_approx(&out, config, &pool)
            .map_err(|e| e.with_plan(&prepared.display));
        self.finish_result(&out);
        let rows = rows?;
        self.stats.conf_approx += 1;
        self.stats.rows_streamed += rows.len() as u64;
        Ok(rows)
    }

    /// Execute `prepared` with profiling on and return a [`QueryProfile`]:
    /// rows in/out, batches, wall-clock and the columnar-vs-row path of
    /// every operator, plus which confidence tier answered and whether the
    /// plan cache held the plan.  The query runs twice — once streamed for
    /// the per-operator tree and the row count, once for the confidence
    /// step — so every number is a real measurement, not an estimate.
    ///
    /// Works with or without an attached observer; profiling is scoped to
    /// this call and [`EngineConfig::observe`] is restored afterwards.
    pub fn explain_analyze(&mut self, prepared: &Prepared) -> Result<QueryProfile> {
        let saved = self.config.observe;
        self.config.observe = true;
        let result = self.explain_analyze_profiled(prepared);
        self.config.observe = saved;
        result
    }

    fn explain_analyze_profiled(&mut self, prepared: &Prepared) -> Result<QueryProfile> {
        let cache = if self.plans.contains_key(prepared.key()) {
            "hit"
        } else {
            "miss"
        };
        // First pass: stream the answer under a profile collector.
        ws_obs::profile::begin();
        let counted = self.execute(prepared).map(|rows| rows.count() as u64);
        let children = ws_obs::profile::take();
        let rows = counted?;
        // Second pass: the confidence tiers (no collector — the tree above
        // already covers the plan; the stats delta identifies the tier).
        let before = self.stats;
        let started = Instant::now();
        let out = self.run(prepared)?;
        let conf = self.confidence_rows_tiered(prepared, &out);
        self.finish_result(&out);
        let confidences = conf?.len() as u64;
        let conf_elapsed = started.elapsed();
        let tier = if self.stats.conf_safe > before.conf_safe {
            "safe"
        } else if self.stats.conf_compiled > before.conf_compiled {
            "compiled"
        } else {
            "exact"
        };
        let mut root = ProfileNode::new("query", prepared.display.clone());
        root.rows_out = rows;
        root.batches = 1;
        root.path = if children.iter().any(|c| c.path != "row") {
            "columnar"
        } else {
            "row"
        };
        root.elapsed_ns = children.iter().map(|c| c.elapsed_ns).sum();
        root.children = children;
        root.derive_rows_in();
        let mut confidence = ProfileNode::new("confidence", format!("tier={tier}"));
        confidence.rows_in = rows;
        confidence.rows_out = confidences;
        confidence.batches = 1;
        confidence.path = "row";
        confidence.elapsed_ns = u64::try_from(conf_elapsed.as_nanos()).unwrap_or(u64::MAX);
        Ok(QueryProfile {
            plan: prepared.display.clone(),
            root,
            confidence,
            tier,
            cache,
            rows,
        })
    }

    /// Execute the physical plan into a fresh scratch result, returning its
    /// name.
    fn run(&mut self, prepared: &Prepared) -> Result<String> {
        let out = loop {
            let candidate = format!("__session_q{}", self.scratch);
            self.scratch += 1;
            if !self.backend.contains_relation(&candidate) {
                break candidate;
            }
        };
        // The plan is already optimized; replay it as-is.
        let exec = EngineConfig {
            optimize: false,
            drop_temps: self.backend.self_contained(),
            ..self.config
        };
        // With an observer attached, scope this execution (the engine's
        // hooks read the scope back thread-locally) and trace it as a
        // `query` span; the span emits on drop, errors included.
        let _guard = self.observer.as_ref().map(|observer| {
            ws_obs::attach(ws_obs::Scope {
                observer: Arc::clone(observer),
                session: self.session_id,
                request: observer.next_request_id(),
            })
        });
        let _span = self
            .observer
            .as_ref()
            .map(|observer| observer.span("query").field("plan", &prepared.display));
        engine::evaluate_query_with(&mut self.backend, &prepared.plan, &out, exec)
            .map_err(|e| Into::<Error>::into(e).with_plan(&prepared.display))?;
        self.stats.executions += 1;
        self.live_results.push(out.clone());
        Ok(out)
    }

    fn finish_result(&mut self, out: &str) {
        if self.backend.self_contained() {
            self.backend.drop_scratch(out);
            self.live_results.retain(|r| r != out);
        }
    }

    /// Drop every scratch result still registered in the backend — the
    /// staleness rule's cleanup before updates, and the pre-checkpoint sweep
    /// of durable sessions (a snapshot must never embalm a session scratch
    /// relation).
    pub(crate) fn drop_live_results(&mut self) {
        for out in std::mem::take(&mut self.live_results) {
            self.backend.drop_scratch(&out);
        }
    }
}

// ---------------------------------------------------------------------------
// The update verbs.
// ---------------------------------------------------------------------------

impl<B: SessionBackend + WriteBackend> Session<B>
where
    B::Error: Into<Error>,
{
    /// Apply one update (insert / delete / modify / condition) to the
    /// backend, in every possible world at once.
    ///
    /// The update is typechecked against the catalog first
    /// ([`crate::builder::typecheck_update`]), so a malformed update never
    /// mutates the store.  On success the returned value is the surviving
    /// probability mass: `P(ψ)` for [`UpdateExpr::Condition`], `1.0` for
    /// every other verb.
    ///
    /// **Staleness rule.** Applying an update invalidates everything derived
    /// from the pre-update state:
    ///
    /// * prepared-plan cache entries whose base relations the update touches
    ///   are evicted by fingerprint (conditioning evicts *all* entries —
    ///   removing worlds reweights every correlated relation), so the next
    ///   [`Session::prepare`] of such a plan re-optimizes (a cache miss in
    ///   [`SessionStats`]);
    /// * scratch results still registered in the backend — results of
    ///   [`Session::materialize`], and streamed results on component-sharing
    ///   backends (WSD, UWSDT), which outlive their [`Rows`] cursor — are
    ///   dropped before the update runs.  Names returned by `materialize`
    ///   must therefore not be read after an `apply`; re-execute the plan
    ///   instead.  (A live [`Rows`] cursor borrows the session mutably, so
    ///   no cursor can ever observe a mid-stream update.)
    pub fn apply(&mut self, update: &UpdateExpr) -> Result<f64> {
        let _span = self.observer.as_ref().map(|observer| {
            observer
                .span("apply")
                .ids(self.session_id, observer.next_request_id())
                .field("update", update)
        });
        typecheck_update(&self.backend, update)?;
        // Drop stale scratch results *before* mutating: on component-sharing
        // backends a registered result relation would otherwise be updated
        // (and, under conditioning, chased) along with the base relations.
        self.drop_live_results();
        let mass = apply_update(&mut self.backend, update)
            .map_err(|e| Into::<Error>::into(e).with_plan(update))?;
        self.stats.updates_applied += 1;
        self.invalidate_plans(update);
        Ok(mass)
    }

    /// Apply a sequence of updates in order, returning the product of the
    /// surviving masses (the joint `P(ψ1 ∧ ψ2 ∧ …)` of all conditioning
    /// steps, each taken on the state its predecessors left behind).
    ///
    /// Stops at the first failing update; updates already applied stay
    /// applied (clone the backend first for transactional behavior).
    pub fn apply_all(&mut self, updates: &[UpdateExpr]) -> Result<f64> {
        let mut mass = 1.0;
        for update in updates {
            mass *= self.apply(update)?;
        }
        Ok(mass)
    }

    /// Condition the backend on integrity constraints: keep exactly the
    /// worlds satisfying every dependency, renormalized, and return `P(ψ)`.
    ///
    /// Sugar for [`Session::apply`] with [`UpdateExpr::Condition`]; an empty
    /// constraint list is the tautology `⊤` (mass 1, no change).
    pub fn condition(&mut self, constraints: &[Dependency]) -> Result<f64> {
        self.apply(&UpdateExpr::condition(constraints.to_vec()))
    }

    /// Evict the cache entries the update invalidates, counting them.
    fn invalidate_plans(&mut self, update: &UpdateExpr) {
        let before = self.plans.len();
        match update {
            // Conditioning reweights (and can empty) every correlated
            // relation, so no cached plan survives it.
            UpdateExpr::Condition { .. } => self.plans.clear(),
            _ => {
                let touched: BTreeSet<&str> = update.relations().into_iter().collect();
                self.plans.retain(|_, cached| {
                    cached
                        .relations
                        .iter()
                        .all(|r| !touched.contains(r.as_str()))
                });
            }
        }
        self.stats.plans_invalidated += (before - self.plans.len()) as u64;
    }

    /// The fingerprints of the currently cached plans (diagnostics; the
    /// invalidation unit tests assert eviction through this).
    pub fn cached_fingerprints(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.plans.values().map(|c| c.fingerprint).collect();
        out.sort_unstable();
        out
    }
}

// ---------------------------------------------------------------------------
// The streaming cursor.
// ---------------------------------------------------------------------------

enum RowsInner {
    InPlace { len: usize, offset: usize },
    Owned(std::vec::IntoIter<Tuple>),
}

/// A streaming cursor over one execution's possible answer tuples.
///
/// Pulls batches of [`Session::batch_size`] rows from the backend-resident
/// result instead of copying the whole answer out at once; consume it with
/// the [`Iterator`] combinators (`collect()`, `count()`, `take(n)`, …).
/// Dropping the cursor — fully consumed or not — releases the scratch result
/// on self-contained backends.
pub struct Rows<'s, B: SessionBackend> {
    backend: &'s mut B,
    stats: &'s mut SessionStats,
    live_results: &'s mut Vec<String>,
    out: String,
    batch: usize,
    inner: RowsInner,
    buf: std::vec::IntoIter<Tuple>,
    cleanup: bool,
}

impl<B: SessionBackend> fmt::Debug for Rows<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rows")
            .field("result", &self.out)
            .field("batch", &self.batch)
            .field("remaining", &self.len_hint())
            .finish()
    }
}

impl<B: SessionBackend> Rows<'_, B> {
    /// Total number of answer rows this cursor will stream.
    pub fn len_hint(&self) -> usize {
        match &self.inner {
            RowsInner::InPlace { len, offset } => len - offset + self.buf.len(),
            RowsInner::Owned(rows) => rows.len(),
        }
    }

    /// The scratch relation the result was materialized under (still
    /// registered on non-self-contained backends after the cursor is gone).
    pub fn result_name(&self) -> &str {
        &self.out
    }

    fn refill(&mut self) {
        let RowsInner::InPlace { len, offset } = &mut self.inner else {
            return;
        };
        if offset < len {
            let limit = self.batch.min(*len - *offset);
            let batch = self
                .backend
                .fetch_batch(&self.out, *offset, limit)
                .unwrap_or_default();
            *offset += batch.len();
            if batch.is_empty() {
                // Defensive: a vanished result ends the stream.
                *offset = *len;
            }
            // One copy total: `fetch_batch` clones the batch out of the
            // backend, and the cursor hands that same allocation out row by
            // row — no per-row requeue into a second buffer.
            self.buf = batch.into_iter();
        }
    }
}

impl<B: SessionBackend> Iterator for Rows<'_, B> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let row = match &mut self.inner {
            // Extracted results are already owned; stream them directly.
            RowsInner::Owned(rows) => rows.next(),
            RowsInner::InPlace { .. } => {
                if self.buf.as_slice().is_empty() {
                    self.refill();
                }
                self.buf.next()
            }
        };
        if row.is_some() {
            self.stats.rows_streamed += 1;
        }
        row
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len_hint();
        (n, Some(n))
    }
}

impl<B: SessionBackend> Drop for Rows<'_, B> {
    fn drop(&mut self) {
        if self.cleanup {
            self.backend.drop_scratch(&self.out);
            self.live_results.retain(|r| r != &self.out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::q;
    use ws_relational::{CmpOp, Relation};

    fn db() -> Database {
        let mut d = Database::new();
        let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        for (a, b) in [(1i64, 10i64), (2, 20), (3, 10), (4, 30), (2, 20)] {
            r.push_values([a, b]).unwrap();
        }
        d.insert_relation(r);
        d
    }

    #[test]
    fn prepare_execute_streams_deduplicated_rows_and_cleans_up() {
        let mut session = Session::new(db());
        session.set_batch_size(2);
        let plan = session
            .prepare(q("R").select(Predicate::cmp_const("A", CmpOp::Ge, 2i64)))
            .unwrap();
        assert_eq!(plan.attrs(), ["A", "B"]);
        let rows: Vec<Tuple> = session.execute(&plan).unwrap().collect();
        assert_eq!(rows.len(), 3, "duplicate (2, 20) must collapse");
        // The scratch result is gone afterwards.
        assert_eq!(session.backend().relation_names(), vec!["R"]);
        let stats = session.stats();
        assert_eq!(stats.plans_prepared, 1);
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.rows_streamed, 3);
    }

    #[test]
    fn preparing_twice_hits_the_cache_even_with_reordered_conjuncts() {
        let mut session = Session::new(db());
        let a = Predicate::cmp_const("A", CmpOp::Ge, 2i64);
        let b = Predicate::cmp_const("B", CmpOp::Le, 20i64);
        let p1 = session
            .prepare(q("R").select(Predicate::and(vec![a.clone(), b.clone()])))
            .unwrap();
        let p2 = session
            .prepare(q("R").select(Predicate::and(vec![b, a])))
            .unwrap();
        assert_eq!(p1.key(), p2.key());
        assert_eq!(p1.fingerprint(), p2.fingerprint());
        assert_eq!(p1.plan(), p2.plan());
        let stats = session.stats();
        assert_eq!((stats.plans_prepared, stats.cache_hits), (1, 1));
        assert_eq!(session.cached_plans(), 1);
        session.clear_plan_cache();
        assert_eq!(session.cached_plans(), 0);
    }

    #[test]
    fn plan_cache_can_be_disabled() {
        let config = EngineConfig {
            plan_cache: false,
            ..EngineConfig::default()
        };
        let mut session = Session::with_config(db(), config);
        let query = q("R").project(["A"]);
        session.prepare(query.clone()).unwrap();
        session.prepare(query).unwrap();
        let stats = session.stats();
        assert_eq!((stats.plans_prepared, stats.cache_hits), (2, 0));
        assert_eq!(session.cached_plans(), 0);
    }

    #[test]
    fn typecheck_failures_carry_plan_context() {
        let mut session = Session::new(db());
        let err = session.prepare(q("R").project(["Z"])).unwrap_err();
        assert!(err.plan().is_some());
        let err = session.prepare(q("NOPE")).unwrap_err();
        assert!(err.to_string().contains("NOPE"));
    }

    #[test]
    fn single_world_confidence_is_always_one() {
        let mut session = Session::new(db());
        let plan = session.prepare(q("R").project(["B"])).unwrap();
        let conf = session.confidence(&plan).unwrap();
        assert_eq!(conf.len(), 3);
        assert!(conf.iter().all(|(_, c)| *c == 1.0));
        let approx = session
            .confidence_approx(&plan, &ApproxConfig::new(0.05, 0.05))
            .unwrap();
        assert_eq!(conf, approx, "database backend answers exactly");
    }

    #[test]
    fn dynamic_sessions_agree_with_typed_sessions() {
        let wsd = ws_core::wsd::example_census_wsd();
        let query = q("R").select(Predicate::eq_const("M", 1i64)).project(["S"]);

        let mut typed = Session::new(wsd.clone());
        let p = typed.prepare(query.clone()).unwrap();
        let typed_rows: Vec<Tuple> = typed.execute(&p).unwrap().collect();

        let mut dynamic = Session::over(wsd);
        assert_eq!(dynamic.backend().backend_name(), "wsd");
        let p = dynamic.prepare(query).unwrap();
        let dynamic_rows: Vec<Tuple> = dynamic.execute(&p).unwrap().collect();
        assert_eq!(typed_rows, dynamic_rows);
    }

    #[test]
    fn summary_names_backend_config_and_counters() {
        let session = Session::new(db());
        let summary = session.summary();
        assert!(summary.contains("backend=database"));
        assert!(summary.contains("plan-cache=on"));
        assert!(summary.contains("plans-prepared=0"));
        assert!(summary.contains("cached-plans=0"));
    }
}
