//! Durable sessions: the `ws_storage` persistence subsystem mounted behind
//! the [`Session`] front door.
//!
//! ```no_run
//! use maybms::{q, Session};
//! use maybms::prelude::Predicate;
//!
//! // First run: initialize a store directory from an in-memory backend.
//! let wsd = maybms::core::wsd::example_census_wsd();
//! let mut session = Session::create_durable("census.store", wsd)?;
//! session.apply(&maybms::UpdateExpr::delete(
//!     "R",
//!     Predicate::eq_const("M", 4i64),
//! ))?;                        // write-ahead logged, then applied
//! session.checkpoint()?;      // snapshot + WAL truncation
//! session.close()?;           // fsync, surfacing I/O errors
//!
//! // Any later run (including after a crash): recover and keep going.
//! let mut session = Session::open_durable("census.store")?;
//! let plan = session.prepare(q("R").project(["S"]))?;
//! let rows: Vec<_> = session.execute(&plan)?.collect();
//! # let _ = rows;
//! # Ok::<(), maybms::Error>(())
//! ```
//!
//! A durable session is an ordinary `Session<Durable<AnyBackend>>`: every
//! `apply`/`apply_all`/`condition` routes through the [`Durable`] wrapper's
//! log-then-apply verbs, queries pass straight through to the wrapped
//! representation, and [`SessionStats`](crate::SessionStats) picks up the WAL/checkpoint
//! counters.  For explicit control over the engine configuration or the
//! storage medium, build the wrapper yourself and hand it to
//! [`Session::with_config`] — `Durable<AnyBackend>` (or `Durable<Wsd>`,
//! `Durable<UDatabase>`, …) is a first-class [`SessionBackend`].

use crate::error::{Error, Result};
use crate::session::{AnyBackend, RowSource, Session, SessionBackend};
use std::path::Path;
use ws_core::confidence::approx::ApproxConfig;
use ws_core::{WorldSet, Wsd};
use ws_relational::{Database, Tuple, WorkerPool, WriteBackend};
use ws_storage::codec::{Reader, Writer};
use ws_storage::persist::{TAG_DATABASE, TAG_UREL, TAG_UWSDT, TAG_WORLDS, TAG_WSD};
use ws_storage::vfs::Vfs;
use ws_storage::{DurabilityStats, Durable, Persist, StorageError};
use ws_urel::UDatabase;
use ws_uwsdt::Uwsdt;

// ---------------------------------------------------------------------------
// AnyBackend is persistable: encode dispatches, decode reads the tag.
// ---------------------------------------------------------------------------

impl Persist for AnyBackend {
    fn encode_state(&self, w: &mut Writer) {
        match self {
            AnyBackend::Db(b) => b.encode_state(w),
            AnyBackend::Wsd(b) => b.encode_state(w),
            AnyBackend::Uwsdt(b) => b.encode_state(w),
            AnyBackend::Urel(b) => b.encode_state(w),
            AnyBackend::Worlds(b) => b.encode_state(w),
        }
    }

    fn decode_state(r: &mut Reader) -> ws_storage::error::Result<Self> {
        match r.peek_u8("representation tag")? {
            TAG_DATABASE => Database::decode_state(r).map(AnyBackend::Db),
            TAG_WSD => Wsd::decode_state(r).map(AnyBackend::Wsd),
            TAG_UWSDT => Uwsdt::decode_state(r).map(AnyBackend::Uwsdt),
            TAG_UREL => UDatabase::decode_state(r).map(AnyBackend::Urel),
            TAG_WORLDS => WorldSet::decode_state(r).map(AnyBackend::Worlds),
            tag => Err(StorageError::corrupt(format!(
                "snapshot holds unknown representation tag {tag}"
            ))),
        }
    }

    fn scrub_scratch(&mut self) {
        match self {
            AnyBackend::Db(b) => b.scrub_scratch(),
            AnyBackend::Wsd(b) => b.scrub_scratch(),
            AnyBackend::Uwsdt(b) => b.scrub_scratch(),
            AnyBackend::Urel(b) => b.scrub_scratch(),
            AnyBackend::Worlds(b) => b.scrub_scratch(),
        }
    }
}

// ---------------------------------------------------------------------------
// A durable backend is a session backend: reads delegate, stats surface.
// ---------------------------------------------------------------------------

impl<B: SessionBackend> SessionBackend for Durable<B> {
    fn backend_name(&self) -> &'static str {
        self.inner().backend_name()
    }

    fn self_contained(&self) -> bool {
        self.inner().self_contained()
    }

    fn open_rows(&mut self, out: &str) -> Result<RowSource> {
        self.inner_mut().open_rows(out)
    }

    fn fetch_batch(&self, out: &str, offset: usize, limit: usize) -> Result<Vec<Tuple>> {
        self.inner().fetch_batch(out, offset, limit)
    }

    fn confidence_rows(&self, out: &str, pool: &WorkerPool) -> Result<Vec<(Tuple, f64)>> {
        self.inner().confidence_rows(out, pool)
    }

    fn confidence_rows_approx(
        &self,
        out: &str,
        config: &ApproxConfig,
        pool: &WorkerPool,
    ) -> Result<Vec<(Tuple, f64)>> {
        self.inner().confidence_rows_approx(out, config, pool)
    }

    fn durability(&self) -> Option<DurabilityStats> {
        Some(self.stats())
    }
}

// ---------------------------------------------------------------------------
// The session verbs of durability.
// ---------------------------------------------------------------------------

impl Session<Durable<AnyBackend>> {
    /// Initialize a store *directory* from an in-memory backend and open a
    /// durable session over it: snapshot generation 0 is written
    /// immediately, and every subsequent [`Session::apply`] is write-ahead
    /// logged before it touches the representation.
    pub fn create_durable(path: impl AsRef<Path>, backend: impl Into<AnyBackend>) -> Result<Self> {
        Ok(Session::new(Durable::create_dir(path, backend.into())?))
    }

    /// Recover a durable session from a store directory: newest valid
    /// snapshot, torn WAL tail truncated, remaining records replayed through
    /// the backend's own update verbs.
    pub fn open_durable(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Session::new(Durable::open_dir(path)?))
    }

    /// [`Session::create_durable`] on an explicit storage medium (e.g. the
    /// fault-injecting [`ws_storage::MemVfs`] of the crash-recovery tests).
    pub fn create_durable_on(vfs: Box<dyn Vfs>, backend: impl Into<AnyBackend>) -> Result<Self> {
        Ok(Session::new(Durable::create(vfs, backend.into())?))
    }

    /// [`Session::open_durable`] on an explicit storage medium.
    pub fn open_durable_on(vfs: Box<dyn Vfs>) -> Result<Self> {
        Ok(Session::new(Durable::open(vfs)?))
    }
}

impl<B> Session<Durable<B>>
where
    B: SessionBackend + WriteBackend + Persist + Clone,
    B::Error: Into<Error>,
{
    /// Checkpoint the durable backend: drop the session's live scratch
    /// results, snapshot the state (scrubbed of any remaining `__` scratch
    /// relations) as the next generation, and truncate the WAL.  Returns
    /// the new snapshot generation.
    pub fn checkpoint(&mut self) -> Result<u64> {
        // Scratch results are derived state; a snapshot must only ever hold
        // base relations (re-execute plans after recovery instead).
        self.drop_live_results();
        Ok(self.backend_mut().checkpoint()?)
    }

    /// Tear the session down with a result: flush and fsync the WAL,
    /// surfacing I/O errors that a plain `Drop` would have to swallow.
    pub fn close(mut self) -> Result<()> {
        self.drop_live_results();
        self.into_backend().close()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::q;
    use crate::session::SessionStats;
    use crate::UpdateExpr;
    use ws_relational::Predicate;
    use ws_storage::MemVfs;

    fn boxed(vfs: &MemVfs) -> Box<dyn Vfs> {
        Box::new(vfs.clone())
    }

    #[test]
    fn durable_sessions_log_apply_and_recover() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let query = q("R").project(["S"]);

        let mut session = Session::create_durable_on(boxed(&vfs), wsd.clone()).unwrap();
        assert_eq!(session.backend().backend_name(), "wsd");
        session
            .apply(&UpdateExpr::delete("R", Predicate::eq_const("N", "Brown")))
            .unwrap();
        let stats = session.stats();
        assert_eq!((stats.updates_applied, stats.wal_records), (1, 1));
        assert!(stats.wal_bytes > 0);
        let p = session.prepare(query.clone()).unwrap();
        let live: Vec<_> = session.execute(&p).unwrap().collect();
        session.close().unwrap();

        let mut recovered = Session::open_durable_on(boxed(&vfs)).unwrap();
        let p = recovered.prepare(query).unwrap();
        let rows: Vec<_> = recovered.execute(&p).unwrap().collect();
        assert_eq!(rows, live, "recovery must reproduce the possible answers");
        assert_eq!(
            recovered.stats().wal_records,
            1,
            "the WAL tail was replayed"
        );
    }

    #[test]
    fn checkpoint_resets_wal_counters_and_survives_reopen() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut session = Session::create_durable_on(boxed(&vfs), wsd).unwrap();
        session
            .apply(&UpdateExpr::insert(
                "R",
                ws_relational::Tuple::from_iter([
                    ws_relational::Value::int(7),
                    ws_relational::Value::text("Eve"),
                    ws_relational::Value::int(2),
                ]),
            ))
            .unwrap();
        // A live materialized result must not leak into the snapshot.
        let p = session.prepare(q("R")).unwrap();
        let out = session.materialize(&p).unwrap();
        assert!(out.starts_with("__"));
        assert_eq!(session.checkpoint().unwrap(), 1);
        let stats = session.stats();
        assert_eq!((stats.wal_records, stats.checkpoints), (0, 1));
        assert!(session.summary().contains("checkpoints=1"));

        let recovered = Session::open_durable_on(boxed(&vfs)).unwrap();
        let names = match recovered.backend().inner() {
            AnyBackend::Wsd(wsd) => wsd.relation_names(),
            other => panic!("expected a WSD, got {}", other.backend_name()),
        };
        assert!(
            names.iter().all(|n| !n.starts_with("__")),
            "snapshot embalmed scratch relations: {names:?}"
        );
    }

    #[test]
    fn open_durable_on_an_empty_medium_is_not_found() {
        let err = Session::open_durable_on(Box::new(MemVfs::new())).unwrap_err();
        assert!(matches!(
            err.kind(),
            crate::ErrorKind::Storage(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn default_stats_have_zero_durability_counters() {
        let stats = SessionStats::default();
        assert_eq!(
            (stats.wal_records, stats.wal_bytes, stats.checkpoints),
            (0, 0, 0)
        );
        let rendered = stats.to_string();
        assert!(rendered.contains("wal-records=0"));
        assert!(rendered.contains("checkpoints=0"));
    }
}
