//! The fluent, typed query builder behind [`crate::session::Session`].
//!
//! Queries used to be hand-assembled [`RaExpr`] trees; the builder keeps the
//! same named-perspective algebra but reads like a query and is checked as
//! one: [`q`] starts from a base relation, combinators wrap operators around
//! it, and [`typecheck`] resolves the whole tree against a
//! [`SchemaCatalog`] *before* anything is evaluated — unknown relations,
//! unknown attributes inside predicates, clashing product attributes and
//! union-incompatible operands all surface as one
//! [`crate::Error`] carrying the offending plan.
//!
//! ```
//! use maybms::q;
//! use maybms::prelude::{CmpOp, Predicate};
//!
//! let pairs = q("R")
//!     .project(["S"])
//!     .rename("S", "S1")
//!     .product(q("R").project(["S"]).rename("S", "S2"))
//!     .select(Predicate::cmp_attr("S1", CmpOp::Ne, "S2"));
//! assert_eq!(
//!     pairs.lower().to_string(),
//!     "σ[S1!=S2]((δ[S→S1](π[S](R)) × δ[S→S2](π[S](R))))"
//! );
//! ```

use crate::error::{Error, Result};
use std::collections::BTreeSet;
use ws_core::ops::update::UpdateExpr;
use ws_relational::{Dependency, Predicate, RaExpr, SchemaCatalog};

/// Start a query from base relation `name` — the front door of the fluent
/// builder.
pub fn q(name: impl Into<String>) -> Query {
    Query {
        expr: RaExpr::rel(name),
    }
}

/// A relational-algebra query under construction.
///
/// A thin, typed wrapper around [`RaExpr`]: combinators consume `self` and
/// return the extended query, and [`Query::lower`] hands the finished tree to
/// the engine.  Anything accepted where a query is expected ([`IntoQuery`])
/// can be mixed in as an operand, so existing `RaExpr` trees compose with
/// built queries.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    expr: RaExpr,
}

impl Query {
    /// Wrap an already-built expression tree.
    pub fn from_expr(expr: RaExpr) -> Query {
        Query { expr }
    }

    /// Selection `σ_pred`.
    pub fn select(self, pred: Predicate) -> Query {
        Query {
            expr: self.expr.select(pred),
        }
    }

    /// Projection `π_attrs` (attributes keep the given order).
    pub fn project<S: Into<String>>(self, attrs: impl IntoIterator<Item = S>) -> Query {
        Query {
            expr: self.expr.project(attrs.into_iter().collect::<Vec<S>>()),
        }
    }

    /// θ-join `⋈_on` with another query, lowered to `σ_on(self × other)`;
    /// the executor recognizes equality conjuncts and runs a physical
    /// equi-join.
    pub fn join(self, other: impl IntoQuery, on: Predicate) -> Query {
        Query {
            expr: self.expr.join(other.into_query().expr, on),
        }
    }

    /// Product `×` with another query (attribute sets must be disjoint).
    pub fn product(self, other: impl IntoQuery) -> Query {
        Query {
            expr: self.expr.product(other.into_query().expr),
        }
    }

    /// Union `∪` (set semantics; operands must be union-compatible).
    pub fn union(self, other: impl IntoQuery) -> Query {
        Query {
            expr: self.expr.union(other.into_query().expr),
        }
    }

    /// Difference `−` (set semantics; operands must be union-compatible).
    pub fn difference(self, other: impl IntoQuery) -> Query {
        Query {
            expr: self.expr.difference(other.into_query().expr),
        }
    }

    /// Attribute renaming `δ_{from→to}`.
    pub fn rename(self, from: impl Into<String>, to: impl Into<String>) -> Query {
        Query {
            expr: self.expr.rename(from, to),
        }
    }

    /// Lower the builder to the engine's plan representation.
    pub fn lower(self) -> RaExpr {
        self.expr
    }

    /// The plan without consuming the builder.
    pub fn as_expr(&self) -> &RaExpr {
        &self.expr
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.expr.fmt(f)
    }
}

/// Anything a query combinator accepts as an operand.
pub trait IntoQuery {
    /// Convert into a [`Query`].
    fn into_query(self) -> Query;
}

impl IntoQuery for Query {
    fn into_query(self) -> Query {
        self
    }
}

impl IntoQuery for RaExpr {
    fn into_query(self) -> Query {
        Query::from_expr(self)
    }
}

impl IntoQuery for &RaExpr {
    fn into_query(self) -> Query {
        Query::from_expr(self.clone())
    }
}

impl From<Query> for RaExpr {
    fn from(query: Query) -> RaExpr {
        query.lower()
    }
}

impl From<RaExpr> for Query {
    fn from(expr: RaExpr) -> Query {
        Query::from_expr(expr)
    }
}

/// Resolve a plan against a catalog, returning its (ordered) output
/// attributes or a [`crate::Error`] with plan context.
///
/// This is the static half of query evaluation: it follows exactly the
/// attribute rules the physical operators enforce at run time (projection
/// subsets, disjoint products, union compatibility, rename freshness) plus
/// predicate scoping — every attribute a predicate mentions must be visible
/// in its input.  Plans that pass typecheck can still fail on a backend that
/// does not support an operator (U-relations reject `−`), but they cannot
/// fail on name resolution.
pub fn typecheck<C: SchemaCatalog + ?Sized>(catalog: &C, expr: &RaExpr) -> Result<Vec<String>> {
    check(catalog, expr).map_err(|e| e.with_plan(expr))
}

/// Resolve an update against a catalog before any mutation happens: the
/// target relation must exist, inserted tuples must match its arity (and
/// carry no `⊥`/`?` markers), probabilities must lie in `[0, 1]`, and every
/// attribute a predicate, assignment or constraint mentions must be part of
/// the relation's schema.
///
/// Like [`typecheck`], failures carry the rendered update as plan context.
pub fn typecheck_update<C: SchemaCatalog + ?Sized>(catalog: &C, update: &UpdateExpr) -> Result<()> {
    check_update(catalog, update).map_err(|e| e.with_plan(update))
}

fn check_update<C: SchemaCatalog + ?Sized>(catalog: &C, update: &UpdateExpr) -> Result<()> {
    let schema_of = |relation: &str| {
        catalog
            .schema_of(relation)
            .map_err(|_| Error::typecheck(format!("unknown base relation `{relation}`")))
    };
    let check_attr = |schema: &ws_relational::Schema, attr: &str, role: &str| {
        if schema.position(attr).is_none() {
            return Err(Error::typecheck(format!(
                "{role} references `{attr}`, which is not in the schema of `{}`",
                schema.relation()
            )));
        }
        Ok(())
    };
    match update {
        UpdateExpr::InsertCertain { relation, tuple } => {
            let schema = schema_of(relation)?;
            ws_relational::engine::check_insertable(&schema, tuple)
                .map_err(|e| Error::typecheck(e.to_string()))
        }
        UpdateExpr::InsertPossible {
            relation,
            tuple,
            prob,
        } => {
            let schema = schema_of(relation)?;
            ws_relational::engine::check_insertable(&schema, tuple)
                .map_err(|e| Error::typecheck(e.to_string()))?;
            ws_relational::engine::check_probability(*prob)
                .map_err(|e| Error::typecheck(e.to_string()))
        }
        UpdateExpr::Delete { relation, pred } => {
            let schema = schema_of(relation)?;
            for attr in pred.referenced_attrs() {
                check_attr(&schema, attr, "delete predicate")?;
            }
            Ok(())
        }
        UpdateExpr::Modify {
            relation,
            pred,
            assignments,
        } => {
            let schema = schema_of(relation)?;
            for attr in pred.referenced_attrs() {
                check_attr(&schema, attr, "modify predicate")?;
            }
            for (attr, _) in assignments {
                check_attr(&schema, attr, "assignment")?;
            }
            ws_relational::engine::check_assignments(assignments)
                .map_err(|e| Error::typecheck(e.to_string()))
        }
        UpdateExpr::Condition { constraints } => {
            for dep in constraints {
                let schema = schema_of(dep.relation())?;
                match dep {
                    Dependency::Fd(fd) => {
                        for attr in fd.lhs.iter().chain(&fd.rhs) {
                            check_attr(&schema, attr, "functional dependency")?;
                        }
                    }
                    Dependency::Egd(egd) => {
                        for attr in egd.attrs() {
                            check_attr(&schema, attr, "dependency")?;
                        }
                    }
                }
            }
            Ok(())
        }
    }
}

fn check<C: SchemaCatalog + ?Sized>(catalog: &C, expr: &RaExpr) -> Result<Vec<String>> {
    match expr {
        RaExpr::Rel(name) => {
            let schema = catalog
                .schema_of(name)
                .map_err(|_| Error::typecheck(format!("unknown base relation `{name}`")))?;
            Ok(schema.attrs().iter().map(|a| a.to_string()).collect())
        }
        RaExpr::Select { pred, input } => {
            let attrs = check(catalog, input)?;
            let visible: BTreeSet<&str> = attrs.iter().map(String::as_str).collect();
            for used in pred.referenced_attrs() {
                if !visible.contains(used) {
                    return Err(Error::typecheck(format!(
                        "selection references `{used}`, which is not among the input attributes {attrs:?}"
                    )));
                }
            }
            Ok(attrs)
        }
        RaExpr::Project { attrs, input } => {
            let input_attrs = check(catalog, input)?;
            if attrs.is_empty() {
                return Err(Error::typecheck("projection list is empty"));
            }
            let visible: BTreeSet<&str> = input_attrs.iter().map(String::as_str).collect();
            let mut seen = BTreeSet::new();
            for attr in attrs {
                if !visible.contains(attr.as_str()) {
                    return Err(Error::typecheck(format!(
                        "projection keeps `{attr}`, which is not among the input attributes {input_attrs:?}"
                    )));
                }
                if !seen.insert(attr.as_str()) {
                    return Err(Error::typecheck(format!("projection lists `{attr}` twice")));
                }
            }
            Ok(attrs.clone())
        }
        RaExpr::Product { left, right } => {
            let l = check(catalog, left)?;
            let r = check(catalog, right)?;
            if let Some(clash) = l.iter().find(|a| r.contains(a)) {
                return Err(Error::typecheck(format!(
                    "product operands share attribute `{clash}`; rename one side first"
                )));
            }
            Ok(l.into_iter().chain(r).collect())
        }
        RaExpr::Union { left, right } | RaExpr::Difference { left, right } => {
            let l = check(catalog, left)?;
            let r = check(catalog, right)?;
            if l != r {
                let op = if matches!(expr, RaExpr::Union { .. }) {
                    "union"
                } else {
                    "difference"
                };
                return Err(Error::typecheck(format!(
                    "{op} operands are not union-compatible: {l:?} vs {r:?}"
                )));
            }
            Ok(l)
        }
        RaExpr::Rename { from, to, input } => {
            let attrs = check(catalog, input)?;
            if !attrs.iter().any(|a| a == from) {
                return Err(Error::typecheck(format!(
                    "rename source `{from}` is not among the input attributes {attrs:?}"
                )));
            }
            if attrs.iter().any(|a| a == to) {
                return Err(Error::typecheck(format!(
                    "rename target `{to}` already exists among the input attributes"
                )));
            }
            Ok(attrs
                .into_iter()
                .map(|a| if a == *from { to.clone() } else { a })
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_relational::{CmpOp, Database, Relation, Schema};

    fn catalog() -> Database {
        let mut db = Database::new();
        db.insert_relation(Relation::new(Schema::new("R", &["A", "B"]).unwrap()));
        db.insert_relation(Relation::new(Schema::new("S", &["C"]).unwrap()));
        db
    }

    #[test]
    fn builder_lowers_to_the_expected_tree() {
        let built = q("R")
            .select(Predicate::eq_const("A", 1i64))
            .project(["B"])
            .union(q("S").rename("C", "B"))
            .lower();
        let manual = RaExpr::rel("R")
            .select(Predicate::eq_const("A", 1i64))
            .project(vec!["B"])
            .union(RaExpr::rel("S").rename("C", "B"));
        assert_eq!(built, manual);
    }

    #[test]
    fn raw_exprs_compose_with_built_queries() {
        let raw = RaExpr::rel("S");
        let built = q("R").join(&raw, Predicate::cmp_attr("B", CmpOp::Eq, "C"));
        assert_eq!(
            built.as_expr().base_relations(),
            vec!["R", "S"],
            "operand conversion lost a relation"
        );
        let _query: Query = RaExpr::rel("R").into();
        let _expr: RaExpr = q("R").into();
    }

    #[test]
    fn typecheck_resolves_output_attributes() {
        let db = catalog();
        let plan = q("R")
            .product(q("S"))
            .select(Predicate::cmp_attr("B", CmpOp::Eq, "C"))
            .project(["A", "C"])
            .lower();
        assert_eq!(typecheck(&db, &plan).unwrap(), vec!["A", "C"]);
        let renamed = q("R").rename("A", "A2").lower();
        assert_eq!(typecheck(&db, &renamed).unwrap(), vec!["A2", "B"]);
    }

    #[test]
    fn typecheck_rejects_bad_plans_with_plan_context() {
        let db = catalog();
        let cases: Vec<(RaExpr, &str)> = vec![
            (q("NOPE").lower(), "unknown base relation"),
            (
                q("R").select(Predicate::eq_const("Z", 1i64)).lower(),
                "selection references",
            ),
            (q("R").project(["Z"]).lower(), "projection keeps"),
            (q("R").project(["A", "A"]).lower(), "twice"),
            (q("R").project(Vec::<String>::new()).lower(), "empty"),
            (q("R").product(q("R")).lower(), "share attribute"),
            (q("R").union(q("S")).lower(), "not union-compatible"),
            (q("R").difference(q("S")).lower(), "not union-compatible"),
            (q("R").rename("Z", "Y").lower(), "rename source"),
            (q("R").rename("A", "B").lower(), "rename target"),
        ];
        for (plan, needle) in cases {
            let err = typecheck(&db, &plan).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "expected `{needle}` in `{msg}` for {plan}"
            );
            assert!(err.plan().is_some(), "typecheck error lost plan context");
        }
    }
}
