//! # maybms — facade crate for the world-set decomposition stack
//!
//! This crate re-exports the whole reproduction of *"10^(10^6) Worlds and
//! Beyond"* under one roof, mirroring how the paper's prototype system
//! (MayBMS) packaged WSD-based incomplete-information management:
//!
//! * [`relational`] — the in-memory relational substrate (stand-in for
//!   PostgreSQL) **and the unified query engine**: the rule-based optimizer
//!   plus the shared executor behind every representation's
//!   `evaluate_query` ([`relational::engine`]),
//! * [`core`] — world-set decompositions: representation, relational algebra,
//!   normalization, confidence computation and the chase,
//! * [`uwsdt`] — the uniform, RDBMS-friendly representation used at scale,
//! * [`urel`] — U-relations, the intensional (blow-up-free) refinement the
//!   paper points to for join-heavy workloads,
//! * [`census`] — the synthetic IPUMS-like evaluation workload,
//! * [`apps`] — the §10 application scenarios (minimal repairs / consistent
//!   query answering, linked medical data), and
//! * [`baselines`] — or-sets, tuple-independent probabilistic databases,
//!   c-tables, ULDB-style x-relations and the explicit world-enumeration
//!   oracle.
//!
//! ## One pipeline, every backend
//!
//! Queries are written once as [`prelude::RaExpr`] plans and evaluated on any
//! backend through the same `optimize → execute` pipeline (§5 of the paper):
//! `ws_core::ops::evaluate_query` (WSDs), `ws_uwsdt::evaluate_query`
//! (UWSDTs), `ws_urel::evaluate_query` (U-relations),
//! `ws_baselines::query_worlds` (explicit worlds) and
//! `ws_relational::evaluate_query` (one ordinary database) are all thin
//! wrappers over [`relational::engine::evaluate_query`]; the
//! `tests/engine_equivalence.rs` property test checks that the five agree
//! with the optimizer both on and off.
//!
//! ## Parallelism and approximation
//!
//! The shared executor fans scans, selections, projections and equi-join
//! build/probe phases out over a fixed-size [`prelude::WorkerPool`]
//! (`std::thread` only), controlled by [`prelude::EngineConfig::threads`];
//! `threads = 1` reproduces the serial engine exactly, and parallel output
//! is canonicalized to the serial order for any thread count.  The NP-hard
//! §6 confidence computation additionally has (ε, δ)-approximate
//! Monte-Carlo evaluators — `ws_core::confidence::approx` over WSD
//! component local worlds and `ws_urel::confidence::approx` over
//! U-relational DNF descriptors — both driven by
//! [`prelude::ApproxConfig`] and parallelized on the same pool.
//!
//! The repository-level `examples/` and `tests/` directories are compiled as
//! part of this crate; see the README for a guided tour.

pub use ws_apps as apps;
pub use ws_baselines as baselines;
pub use ws_census as census;
pub use ws_core as core;
pub use ws_relational as relational;
pub use ws_urel as urel;
pub use ws_uwsdt as uwsdt;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use ws_apps::{
        consistent_answers, possible_answers, repair_key_violations, MedicalScenario,
        PatientRecord, RepairReport,
    };
    pub use ws_baselines::{
        OrSet, OrSetRelation, TupleIndependentDb, TupleIndependentRelation, UldbRelation, XTuple,
    };
    pub use ws_census::CensusScenario;
    pub use ws_core::{
        chase::{
            chase, AttrComparison, Dependency, EqualityGeneratingDependency, FunctionalDependency,
        },
        conditional::{conditional_conf, joint_probability, satisfaction_probability},
        confidence::{
            approx::{hoeffding_samples, ApproxConfig},
            conf, possible, possible_with_confidence, possible_with_confidence_with,
            TupleLevelView,
        },
        interval::{IntervalView, ProbInterval},
        normalize::normalize,
        Component, FieldId, LocalWorld, TupleId, WorldSet, WorldSetRelation, WsError, Wsd, Wsdt,
    };
    pub use ws_relational::{
        engine, evaluate_query, evaluate_query_with, CmpOp, Database, EngineConfig, ExecContext,
        Predicate, QueryBackend, RaExpr, Relation, Schema, SchemaCatalog, Tuple, Value, WorkerPool,
    };
    pub use ws_urel::{UDatabase, URelation, WsDescriptor};
    pub use ws_uwsdt::{
        from_or_relation, from_wsd, from_wsdt, stats_for, OrField, Uwsdt, UwsdtError, UwsdtStats,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired_up() {
        let wsd = crate::core::wsd::example_census_wsd();
        assert_eq!(wsd.world_count(), 24);
        assert_eq!(crate::census::ATTRIBUTE_COUNT, 50);
        let db = crate::baselines::figure6_database();
        assert_eq!(db.world_count(), 8);
        let uwsdt = crate::uwsdt::from_wsd(&wsd).unwrap();
        assert_eq!(uwsdt.world_count(), 24);
    }
}
