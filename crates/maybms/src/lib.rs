//! # maybms — one fluent, prepared, streaming API over every possible-worlds
//! backend
//!
//! This crate is the front door of the *"10^(10^6) Worlds and Beyond"*
//! reproduction, mirroring how the paper's prototype system (MayBMS) packaged
//! WSD-based incomplete-information management: the representation systems
//! are interchangeable backends behind **one query surface**.
//!
//! ## The session API
//!
//! Open a [`Session`] on any backend, build queries with [`q`], prepare once,
//! execute many, stream results:
//!
//! ```
//! use maybms::{q, Session};
//! use maybms::prelude::Predicate;
//!
//! // Any of the five representations works here: an ordinary Database, a
//! // Wsd, a Uwsdt, a UDatabase (U-relations) or an explicit WorldSet.
//! let wsd = maybms::core::wsd::example_census_wsd();
//! let mut session = Session::new(wsd);
//!
//! // Fluent, typed query building; `prepare` typechecks against the
//! // session's catalog and runs the optimizer once per distinct plan.
//! let married = session
//!     .prepare(q("R").select(Predicate::eq_const("M", 1i64)).project(["S"]))?;
//!
//! // Streaming execution: `Rows` is an Iterator pulling row batches.
//! let answers: Vec<_> = session.execute(&married)?.collect();
//! assert!(!answers.is_empty());
//!
//! // Tuple confidences (§6) on the same prepared plan.
//! let with_conf = session.confidence(&married)?;
//! assert_eq!(answers.len(), with_conf.len());
//!
//! // Re-preparing the same query is a plan-cache hit — no second
//! // optimizer run.
//! let again = session.prepare(q("R").select(Predicate::eq_const("M", 1i64)).project(["S"]))?;
//! assert_eq!(again.plan(), married.plan());
//! assert_eq!(session.stats().cache_hits, 1);
//! # Ok::<(), maybms::Error>(())
//! ```
//!
//! [`Session::over`] wraps a run-time-chosen backend in [`AnyBackend`];
//! [`Session::confidence_approx`] switches to the (ε, δ)-approximate §6
//! evaluators where the backend has one.  Errors from every layer surface as
//! one [`Error`] carrying the plan they belong to.
//!
//! ## The representation crates
//!
//! * [`relational`] — the in-memory relational substrate (stand-in for
//!   PostgreSQL) **and the unified query engine**: the rule-based optimizer,
//!   the shared executor behind every representation, plan
//!   normalization/fingerprinting ([`mod@relational::fingerprint`]) and the
//!   volcano-style streaming [`relational::cursor`],
//! * [`core`] — world-set decompositions: representation, relational algebra,
//!   normalization, confidence computation and the chase,
//! * [`uwsdt`] — the uniform, RDBMS-friendly representation used at scale,
//! * [`urel`] — U-relations, the intensional (blow-up-free) refinement the
//!   paper points to for join-heavy workloads,
//! * [`storage`] — durability: a hand-rolled binary codec for every
//!   representation, atomic snapshots and the update-language write-ahead
//!   log behind [`Session::open_durable`] / [`Session::checkpoint`] (see
//!   the [`durable`] module),
//! * [`census`] — the synthetic IPUMS-like evaluation workload,
//! * [`apps`] — the §10 application scenarios (minimal repairs / consistent
//!   query answering, linked medical data), and
//! * [`baselines`] — or-sets, tuple-independent probabilistic databases,
//!   c-tables, ULDB-style x-relations and the explicit world-enumeration
//!   oracle.
//!
//! ## Under the hood
//!
//! Sessions drive the same `optimize → execute` pipeline (§5 of the paper)
//! the old per-crate `evaluate_query` free functions used — those functions
//! are still exported as deprecated shims for migration.  The shared
//! executor fans scans, selections, projections and equi-join build/probe
//! phases out over a fixed-size [`prelude::WorkerPool`] controlled by
//! [`prelude::EngineConfig::threads`]; `threads = 1` reproduces the serial
//! engine exactly, and parallel output is canonicalized to the serial order
//! for any thread count, so prepared re-execution is bit-identical at any
//! parallelism.  The NP-hard §6 confidence computation additionally has
//! (ε, δ)-approximate Monte-Carlo evaluators driven by
//! [`prelude::ApproxConfig`].
//!
//! The repository-level `examples/` and `tests/` directories are compiled as
//! part of this crate; see the README for a guided tour and the old-API →
//! new-API migration table.

pub mod builder;
pub mod durable;
pub mod error;
pub mod lineage;
pub mod session;

pub use builder::{q, typecheck, typecheck_update, IntoQuery, Query};
pub use error::{Error, ErrorKind, Result};
pub use session::{
    AnyBackend, ConfidenceStrategy, Prepared, QueryProfile, RowSource, Rows, Session,
    SessionBackend, SessionStats, DEFAULT_BATCH_SIZE,
};
pub use ws_core::ops::update::{apply_update, UpdateExpr};
pub use ws_storage::{DurabilityStats, Durable, Persist, StorageError};

pub use ws_apps as apps;
pub use ws_baselines as baselines;
pub use ws_census as census;
pub use ws_core as core;
pub use ws_obs as obs;
pub use ws_relational as relational;
pub use ws_storage as storage;
pub use ws_urel as urel;
pub use ws_uwsdt as uwsdt;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use crate::builder::{q, typecheck, typecheck_update, IntoQuery, Query};
    pub use crate::error::{Error, ErrorKind};
    pub use crate::session::{
        AnyBackend, ConfidenceStrategy, Prepared, QueryProfile, RowSource, Rows, Session,
        SessionBackend, SessionStats,
    };
    pub use ws_apps::{
        consistent_answers, possible_answers, repair_key_violations, MedicalScenario,
        PatientRecord, RepairReport,
    };
    pub use ws_baselines::{
        OrSet, OrSetRelation, TupleIndependentDb, TupleIndependentRelation, UldbRelation, XTuple,
    };
    pub use ws_census::CensusScenario;
    pub use ws_core::{
        chase::{
            chase, AttrComparison, Dependency, EqualityGeneratingDependency, FunctionalDependency,
        },
        conditional::{conditional_conf, joint_probability, satisfaction_probability},
        confidence::{
            approx::{hoeffding_samples, ApproxConfig},
            conf, possible, possible_with_confidence, possible_with_confidence_with,
            TupleLevelView,
        },
        interval::{IntervalView, ProbInterval},
        normalize::normalize,
        ops::update::{apply_update, UpdateExpr},
        Component, FieldId, LocalWorld, TupleId, WorldSet, WorldSetRelation, WsError, Wsd, Wsdt,
    };
    pub use ws_obs::{
        HistogramSummary, LineSink, MetricsRegistry, MetricsSnapshot, NullSink, Observer,
        ProfileNode, RingSink, TraceEvent, TraceSink,
    };
    pub use ws_relational::{
        engine, evaluate_query, evaluate_query_with, world_satisfies, Clause, CmpOp, Cursor,
        Database, DtreeCompiler, EngineConfig, ExecContext, LineageDb, LineageRelation, Predicate,
        QueryBackend, RaExpr, Relation, Schema, SchemaCatalog, Tuple, Value, VarTable, WorkerPool,
        WriteBackend,
    };
    pub use ws_storage::{
        DirVfs, DurabilityStats, Durable, DurableError, MemVfs, Persist, StorageError, Vfs,
    };
    pub use ws_urel::{UDatabase, URelation, WsDescriptor};
    pub use ws_uwsdt::{
        from_or_relation, from_wsd, from_wsdt, stats_for, OrField, Uwsdt, UwsdtError, UwsdtStats,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired_up() {
        let wsd = crate::core::wsd::example_census_wsd();
        assert_eq!(wsd.world_count(), 24);
        assert_eq!(crate::census::ATTRIBUTE_COUNT, 50);
        let db = crate::baselines::figure6_database();
        assert_eq!(db.world_count(), 8);
        let uwsdt = crate::uwsdt::from_wsd(&wsd).unwrap();
        assert_eq!(uwsdt.world_count(), 24);
    }

    #[test]
    fn every_backend_opens_a_session() {
        use crate::{q, Session};
        let wsd = crate::core::wsd::example_census_wsd();
        let query = q("R").project(["S"]);
        let mut expected: Option<Vec<crate::prelude::Tuple>> = None;
        let backends: Vec<crate::AnyBackend> = vec![
            wsd.enumerate_worlds(1 << 20).unwrap()[0].0.clone().into(),
            wsd.clone().into(),
            crate::uwsdt::from_wsd(&wsd).unwrap().into(),
            crate::urel::from_wsd(&wsd).unwrap().into(),
            wsd.rep().unwrap().into(),
        ];
        for backend in backends {
            let single_world = matches!(backend, crate::AnyBackend::Db(_));
            let mut session = Session::over(backend);
            let prepared = session.prepare(query.clone()).unwrap();
            let mut rows: Vec<_> = session.execute(&prepared).unwrap().collect();
            rows.sort();
            if single_world {
                // One world sees a subset of the possible answers.
                assert!(!rows.is_empty());
            } else {
                match &expected {
                    None => expected = Some(rows),
                    Some(e) => assert_eq!(e, &rows, "backends disagree on π_S(R)"),
                }
            }
        }
    }
}
