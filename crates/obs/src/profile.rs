//! Per-operator query profiles: the tree `explain_analyze` renders.
//!
//! The executor is recursive and single-threaded at the operator level (the
//! worker pool fans out *inside* an operator), so profiling is a thread-local
//! stack: [`begin`] installs a collector, [`enter`] pushes a node and returns
//! a token, [`OpToken::finish`] pops it — filling in rows, batches and the
//! measured latency — and attaches it to its parent, and [`take`] uninstalls
//! the collector and returns the finished roots.  When no collector is
//! installed every hook is a cheap thread-local check returning `None`, so
//! instrumented code paths cost nothing unless a profile was requested.

use std::cell::RefCell;
use std::fmt;
use std::time::Instant;

/// One operator's measurements in a profile tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// The operator (`"select"`, `"project"`, `"hash-join"`, …).
    pub op: String,
    /// Operator detail: the predicate, attribute list, relation name, ….
    pub detail: String,
    /// Rows flowing into the operator (sum of child outputs when derived).
    pub rows_in: u64,
    /// Rows the operator produced (0 when the backend cannot count its
    /// representation cheaply).
    pub rows_out: u64,
    /// Column batches (or morsels) the operator processed.
    pub batches: u64,
    /// Wall-clock nanoseconds spent in the operator, children included.
    pub elapsed_ns: u64,
    /// Which execution path ran: `"columnar"`, `"row"` or `"view"`.
    pub path: &'static str,
    /// Child operators, in evaluation order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// A fresh node with only its identity filled in.
    pub fn new(op: impl Into<String>, detail: impl Into<String>) -> ProfileNode {
        ProfileNode {
            op: op.into(),
            detail: detail.into(),
            ..ProfileNode::default()
        }
    }

    /// Derive each node's `rows_in` from its children's `rows_out` wherever
    /// it was left unset (leaves keep `rows_in = rows_out`).
    pub fn derive_rows_in(&mut self) {
        for child in &mut self.children {
            child.derive_rows_in();
        }
        if self.rows_in == 0 {
            self.rows_in = if self.children.is_empty() {
                self.rows_out
            } else {
                self.children.iter().map(|c| c.rows_out).sum()
            };
        }
    }

    /// Total node count of the tree (the root included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProfileNode::size).sum::<usize>()
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, root: bool) {
        let branch = if root {
            ""
        } else if last {
            "└─ "
        } else {
            "├─ "
        };
        let detail = if self.detail.is_empty() {
            String::new()
        } else {
            format!("({})", self.detail)
        };
        out.push_str(&format!(
            "{prefix}{branch}{}{detail} [{}] in={} out={} batches={} {:.3}ms\n",
            self.op,
            self.path,
            self.rows_in,
            self.rows_out,
            self.batches,
            self.elapsed_ns as f64 / 1e6,
        ));
        let child_prefix = if root {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &child_prefix, i + 1 == self.children.len(), false);
        }
    }

    /// The tree rendered as indented text (what `explain_analyze` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", true, true);
        out
    }
}

impl fmt::Display for ProfileNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The in-flight collector: a stack of open operators plus finished roots.
#[derive(Debug, Default)]
struct Collector {
    stack: Vec<(ProfileNode, Instant)>,
    roots: Vec<ProfileNode>,
}

impl Collector {
    /// Pop the top operator and attach it to its parent (or the roots).
    fn pop_into_parent(&mut self) {
        if let Some((node, started)) = self.stack.pop() {
            let mut node = node;
            if node.elapsed_ns == 0 {
                node.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
            match self.stack.last_mut() {
                Some((parent, _)) => parent.children.push(node),
                None => self.roots.push(node),
            }
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Install a fresh collector on this thread (replacing any prior one).
pub fn begin() {
    COLLECTOR.with(|slot| *slot.borrow_mut() = Some(Collector::default()));
}

/// Whether a collector is installed on this thread.
pub fn active() -> bool {
    COLLECTOR.with(|slot| slot.borrow().is_some())
}

/// Uninstall the collector and return the finished roots (operators still
/// open — an error unwound past them — are closed as-is).
pub fn take() -> Vec<ProfileNode> {
    COLLECTOR.with(|slot| {
        let Some(mut collector) = slot.borrow_mut().take() else {
            return Vec::new();
        };
        while !collector.stack.is_empty() {
            collector.pop_into_parent();
        }
        collector.roots
    })
}

/// The handle [`enter`] returns: finishing it closes the operator.
#[derive(Debug)]
#[must_use = "finish the token to close the profile node"]
pub struct OpToken {
    /// Stack depth at entry, used to re-balance after error unwinds.
    depth: usize,
}

/// Open an operator node.  Returns `None` (and never calls `detail`) when no
/// collector is installed on this thread.
pub fn enter(op: &str, detail: impl FnOnce() -> String) -> Option<OpToken> {
    COLLECTOR.with(|slot| {
        let mut slot = slot.borrow_mut();
        let collector = slot.as_mut()?;
        collector
            .stack
            .push((ProfileNode::new(op, detail()), Instant::now()));
        Some(OpToken {
            depth: collector.stack.len(),
        })
    })
}

impl OpToken {
    /// Close the operator: record its measurements and attach it to the
    /// parent.  Children abandoned by an error unwind are folded in first.
    pub fn finish(self, rows_out: u64, batches: u64, path: &'static str) {
        COLLECTOR.with(|slot| {
            let mut slot = slot.borrow_mut();
            let Some(collector) = slot.as_mut() else {
                return;
            };
            while collector.stack.len() > self.depth {
                collector.pop_into_parent();
            }
            if let Some((node, started)) = collector.stack.last_mut() {
                node.rows_out = rows_out;
                node.batches = batches;
                node.path = path;
                node.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
            collector.pop_into_parent();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_a_collector() {
        assert!(!active());
        assert!(enter("select", || unreachable!("detail must stay lazy")).is_none());
        assert!(take().is_empty());
    }

    #[test]
    fn nesting_builds_a_tree() {
        begin();
        let outer = enter("project", || "A, B".into()).unwrap();
        let inner = enter("select", || "A = 1".into()).unwrap();
        inner.finish(10, 1, "columnar");
        outer.finish(4, 1, "columnar");
        let mut roots = take();
        assert_eq!(roots.len(), 1);
        let root = &mut roots[0];
        root.derive_rows_in();
        assert_eq!(root.op, "project");
        assert_eq!(root.rows_out, 4);
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].op, "select");
        assert_eq!(root.children[0].rows_out, 10);
        assert_eq!(root.size(), 2);
        let text = root.render();
        assert!(text.contains("project(A, B) [columnar] in=10 out=4"));
        assert!(text.contains("└─ select(A = 1)"));
    }

    #[test]
    fn derive_rows_in_sums_children() {
        begin();
        let union = enter("union", String::new).unwrap();
        enter("rel", || "R".into()).unwrap().finish(3, 1, "row");
        enter("rel", || "S".into()).unwrap().finish(2, 1, "row");
        union.finish(5, 1, "row");
        let mut root = take().remove(0);
        root.derive_rows_in();
        assert_eq!(root.rows_in, 5);
        assert_eq!(root.children[0].rows_in, 3);
    }

    #[test]
    fn error_unwinds_rebalance_the_stack() {
        begin();
        let outer = enter("product", String::new).unwrap();
        // An inner operator whose token was dropped by an unwind.
        let _abandoned = enter("select", String::new);
        outer.finish(0, 0, "row");
        let roots = take();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].op, "select");
    }
}
