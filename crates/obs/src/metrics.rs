//! The metrics registry: named counters, gauges and histograms, created on
//! first use and folded into a plain [`MetricsSnapshot`] on scrape.
//!
//! Handles are `Arc`s — a hot path looks its instrument up once and then
//! records through the `Arc` with relaxed atomics, never touching the
//! registry lock again.  Names are dotted lowercase paths
//! (`exec.op.select.ns`, `wal.fsync.ns`); the Prometheus renderer maps them
//! to `ws_`-prefixed underscore form.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSummary};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Add `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Named instruments, created lazily on first use.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Fold every instrument into a plain snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(name, h)| (name.clone(), h.fold()))
                .collect(),
        }
    }

    /// The snapshot rendered in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as single samples, histograms as
    /// summaries with `quantile` labels plus `_sum`, `_count` and `_max`.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// One folded scrape of a [`MetricsRegistry`]: plain, comparable data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Folded histograms by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Map a dotted metric name to a Prometheus identifier: `ws_` prefix, every
/// non-alphanumeric byte folded to `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("ws_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

impl MetricsSnapshot {
    /// See [`MetricsRegistry::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let id = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {id} counter");
            let _ = writeln!(out, "{id} {value}");
        }
        for (name, value) in &self.gauges {
            let id = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {id} gauge");
            let _ = writeln!(out, "{id} {value}");
        }
        for (name, hist) in &self.histograms {
            let id = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {id} summary");
            for (q, v) in [
                ("0.5", hist.p50()),
                ("0.95", hist.p95()),
                ("0.99", hist.p99()),
            ] {
                let _ = writeln!(out, "{id}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{id}_sum {}", hist.sum);
            let _ = writeln!(out, "{id}_count {}", hist.count);
            let _ = writeln!(out, "{id}_max {}", hist.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("session.query");
        let b = registry.counter("session.query");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("session.query").get(), 3);
        let gauge = registry.gauge("pool.size");
        gauge.set(4);
        gauge.add(-1);
        assert_eq!(registry.gauge("pool.size").get(), 3);
        registry.histogram("exec.ns").record(10);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["session.query"], 3);
        assert_eq!(snapshot.gauges["pool.size"], 3);
        assert_eq!(snapshot.histograms["exec.ns"].count, 1);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let registry = MetricsRegistry::new();
        registry.counter("wal.append").add(7);
        registry.gauge("store.pins").set(-2);
        let hist = registry.histogram("exec.op.select.ns");
        hist.record(100);
        hist.record(3000);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE ws_wal_append counter\nws_wal_append 7\n"));
        assert!(text.contains("# TYPE ws_store_pins gauge\nws_store_pins -2\n"));
        assert!(text.contains("# TYPE ws_exec_op_select_ns summary"));
        assert!(text.contains("ws_exec_op_select_ns{quantile=\"0.5\"}"));
        assert!(text.contains("ws_exec_op_select_ns_count 2"));
        assert!(text.contains("ws_exec_op_select_ns_sum 3100"));
        assert!(text.contains("ws_exec_op_select_ns_max 3000"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }
}
