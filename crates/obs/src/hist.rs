//! Log-bucketed latency histograms: lock-free recording into per-thread
//! shards, folded into a plain [`HistogramSummary`] on scrape.
//!
//! The bucket layout is power-of-two: bucket `0` holds the value `0` and
//! bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so 64 buckets cover the
//! whole `u64` range and a nanosecond latency lands in a bucket with at most
//! 2× relative error.  Quantiles are read as the *upper bound* of the bucket
//! where the cumulative count crosses the rank — deliberately pessimistic,
//! never under-reporting a tail latency.
//!
//! Recording is a relaxed `fetch_add` on one shard (threads are spread over
//! [`SHARD_COUNT`] shards round-robin, so concurrent recorders rarely touch
//! the same cache line); folding sums the shards.  Summaries merge by bucket
//! addition, which is associative and commutative — the property test in
//! `tests/observability_equivalence.rs` checks it.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets: enough for every `u64` value.
pub const BUCKET_COUNT: usize = 64;

/// Number of per-thread shards a [`Histogram`] spreads its recorders over.
pub const SHARD_COUNT: usize = 16;

/// The bucket a value lands in: `0 → 0`, otherwise `⌊log2 v⌋ + 1`.
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKET_COUNT - 1)
}

/// The largest value bucket `index` can hold (the quantile read-out point).
fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        (1u64 << index).wrapping_sub(1)
    }
}

/// One shard: a bucket array plus exact running `sum` and `max`.
#[derive(Debug)]
struct Shard {
    counts: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Round-robin shard assignment: each thread caches its index on first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static MINE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    MINE.with(|mine| {
        let mut index = mine.get();
        if index == usize::MAX {
            index = NEXT.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
            mine.set(index);
        }
        index
    })
}

/// A concurrent log-bucketed histogram; see the module docs for the layout.
#[derive(Debug)]
pub struct Histogram {
    shards: Vec<Shard>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            shards: (0..SHARD_COUNT).map(|_| Shard::new()).collect(),
        }
    }

    /// Record one value (relaxed atomics on this thread's shard).
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_index()];
        shard.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as whole nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Fold every shard into one plain summary (the scrape-time step).
    pub fn fold(&self) -> HistogramSummary {
        let mut out = HistogramSummary::default();
        for shard in &self.shards {
            for (bucket, count) in shard.counts.iter().enumerate() {
                let n = count.load(Ordering::Relaxed);
                out.buckets[bucket] += n;
                out.count += n;
            }
            out.sum += shard.sum.load(Ordering::Relaxed);
            out.max = out.max.max(shard.max.load(Ordering::Relaxed));
        }
        out
    }
}

/// A folded histogram: plain data, mergeable, comparable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Total number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts (see the module docs for the bucket layout).
    pub buckets: [u64; BUCKET_COUNT],
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKET_COUNT],
        }
    }
}

impl HistogramSummary {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// where the cumulative count reaches `⌈q·count⌉` (0 when empty).  The
    /// exact `max` caps the answer, so `quantile(1.0) == max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(bucket).min(self.max);
            }
        }
        self.max
    }

    /// The median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The merge of two summaries: bucket-wise addition, exact `sum`, exact
    /// `max`.  Associative and commutative.
    pub fn merged(&self, other: &HistogramSummary) -> HistogramSummary {
        let mut out = self.clone();
        out.count += other.count;
        out.sum += other.sum;
        out.max = out.max.max(other.max);
        for (mine, theirs) in out.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKET_COUNT - 1);
        // Every value is ≤ its bucket's upper bound.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40] {
            assert!(v <= bucket_upper_bound(bucket_of(v)));
        }
    }

    #[test]
    fn record_and_fold_round_trip() {
        let hist = Histogram::new();
        for v in [0u64, 1, 1, 100, 1000, 1_000_000] {
            hist.record(v);
        }
        let summary = hist.fold();
        assert_eq!(summary.count, 6);
        assert_eq!(summary.sum, 1_001_102);
        assert_eq!(summary.max, 1_000_000);
        assert!(!summary.is_empty());
        assert!((summary.mean() - 1_001_102.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_never_under_report() {
        let hist = Histogram::new();
        for v in 1..=100u64 {
            hist.record(v);
        }
        let s = hist.fold();
        // Bucket upper bounds are ≥ the true quantile and ≤ 2× over it.
        assert!(s.p50() >= 50 && s.p50() <= 127);
        assert!(s.p95() >= 95 && s.p95() <= 255);
        assert!(s.p99() >= 99 && s.p99() <= 255);
        assert_eq!(s.quantile(1.0), 100); // capped by the exact max
        assert_eq!(HistogramSummary::default().p99(), 0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let summaries: Vec<HistogramSummary> = [vec![1u64, 5, 9], vec![2, 2], vec![1 << 30]]
            .iter()
            .map(|values| {
                let h = Histogram::new();
                for &v in values {
                    h.record(v);
                }
                h.fold()
            })
            .collect();
        let (a, b, c) = (&summaries[0], &summaries[1], &summaries[2]);
        assert_eq!(a.merged(b), b.merged(a));
        assert_eq!(a.merged(b).merged(c), a.merged(&b.merged(c)));
        let all = a.merged(b).merged(c);
        assert_eq!(all.count, 6);
        assert_eq!(all.max, 1 << 30);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 1_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let hist = std::sync::Arc::clone(&hist);
                scope.spawn(move || {
                    for v in 0..per_thread {
                        hist.record(t * per_thread + v);
                    }
                });
            }
        });
        let s = hist.fold();
        assert_eq!(s.count, threads * per_thread);
        assert_eq!(s.max, threads * per_thread - 1);
    }
}
