//! # ws-obs — hand-rolled observability for the world-set stack
//!
//! Dependency-free (the build environment is offline, like the codec and the
//! CRC in `ws-storage`) metrics, tracing and profiling shared by every layer:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and log-bucketed
//!   latency [`Histogram`]s (p50/p95/p99/max, mergeable, recorded lock-free
//!   into per-thread shards and folded on scrape), renderable in the
//!   Prometheus text format;
//! * [`Span`] — an RAII trace guard carrying the session/request ids,
//!   emitted to a pluggable [`TraceSink`] ([`RingSink`] for tests and the
//!   slow-query log, [`LineSink`] for `ws-serverd`) and mirrored into a
//!   `span.<name>.ns` histogram;
//! * [`profile`] — the thread-local per-operator collector behind
//!   `Session::explain_analyze`.
//!
//! The [`Observer`] bundles one registry, one sink and the slow-query log;
//! layers hold it as `Arc<Observer>`.  The executor cannot (its
//! `EngineConfig` is `Copy`), so a session [`attach`]es a thread-local
//! [`Scope`] around each query and instrumented hot paths read it back with
//! [`scope`] — but only after checking `EngineConfig::observe`, so a
//! non-observed run never touches the thread-local at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod profile;
pub mod trace;

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use hist::{Histogram, HistogramSummary};
pub use metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use profile::ProfileNode;
pub use trace::{LineSink, NullSink, RingSink, TraceEvent, TraceSink};

/// How many spans the in-process slow-query log retains.
pub const SLOW_QUERY_RING: usize = 128;

/// One observability domain: a metrics registry, a trace sink, the
/// slow-query log and the session/request id wells.  Shared as
/// `Arc<Observer>` by every instrumented layer.
pub struct Observer {
    metrics: MetricsRegistry,
    sink: Box<dyn TraceSink>,
    slow: RingSink,
    /// Slow-query threshold in nanoseconds; `u64::MAX` disables the log.
    slow_threshold_ns: AtomicU64,
    sessions: AtomicU64,
    requests: AtomicU64,
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Observer")
            .field("slow_threshold_ns", &self.slow_threshold_ns)
            .field("slow_queries", &self.slow.len())
            .finish_non_exhaustive()
    }
}

impl Default for Observer {
    fn default() -> Self {
        Observer::new()
    }
}

impl Observer {
    /// An observer that drops trace events ([`NullSink`]) but still counts.
    pub fn new() -> Observer {
        Observer::with_sink(Box::new(NullSink))
    }

    /// An observer emitting finished spans to `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Observer {
        Observer {
            metrics: MetricsRegistry::new(),
            sink,
            slow: RingSink::new(SLOW_QUERY_RING),
            slow_threshold_ns: AtomicU64::new(u64::MAX),
            sessions: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Arm (or, with `None`, disarm) the slow-query log: any span at least
    /// this slow is retained in [`Observer::slow_queries`] and counted in
    /// the `span.slow` counter.
    pub fn set_slow_query_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(u64::MAX);
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The armed slow-query threshold, if any.
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        match self.slow_threshold_ns.load(Ordering::Relaxed) {
            u64::MAX => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// The retained slow spans, oldest first.
    pub fn slow_queries(&self) -> Vec<TraceEvent> {
        self.slow.events()
    }

    /// A fresh session id (1-based).
    pub fn next_session_id(&self) -> u64 {
        self.sessions.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// A fresh request id (1-based).
    pub fn next_request_id(&self) -> u64 {
        self.requests.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Open a span; it emits on drop (or [`Span::finish`]).  Ids default to
    /// the current [`Scope`]'s, when one is attached.
    pub fn span(self: &Arc<Self>, name: &str) -> Span {
        let (session, request) = match scope() {
            Some(s) => (s.session, s.request),
            None => (0, 0),
        };
        Span {
            observer: Arc::clone(self),
            name: name.to_string(),
            session,
            request,
            fields: Vec::new(),
            start: Instant::now(),
            emitted: false,
        }
    }
}

/// An RAII trace guard: measures from creation to drop, then emits a
/// [`TraceEvent`] to the observer's sink, records `span.<name>.ns`, and —
/// when at least as slow as the armed threshold — lands in the slow-query
/// log and the `span.slow` counter.
#[derive(Debug)]
pub struct Span {
    observer: Arc<Observer>,
    name: String,
    session: u64,
    request: u64,
    fields: Vec<(String, String)>,
    start: Instant,
    emitted: bool,
}

impl Span {
    /// Attach a `key=value` annotation.
    pub fn field(mut self, key: &str, value: impl fmt::Display) -> Span {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Override the session/request ids (servers stamp the wire ids here).
    pub fn ids(mut self, session: u64, request: u64) -> Span {
        self.session = session;
        self.request = request;
        self
    }

    /// Close the span now instead of at end of scope.
    pub fn finish(mut self) {
        self.emit();
    }

    fn emit(&mut self) {
        if self.emitted {
            return;
        }
        self.emitted = true;
        let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let event = TraceEvent {
            name: std::mem::take(&mut self.name),
            session: self.session,
            request: self.request,
            elapsed_ns,
            fields: std::mem::take(&mut self.fields),
        };
        self.observer
            .metrics
            .histogram(&format!("span.{}.ns", event.name))
            .record(elapsed_ns);
        if elapsed_ns >= self.observer.slow_threshold_ns.load(Ordering::Relaxed) {
            self.observer.metrics.counter("span.slow").inc();
            self.observer.slow.emit(&event);
        }
        self.observer.sink.emit(&event);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit();
    }
}

/// The thread-local observation context a session attaches around a query:
/// the observer plus the ids instrumented hot paths stamp on their spans.
#[derive(Clone, Debug)]
pub struct Scope {
    /// The observer every metric and span of this query goes to.
    pub observer: Arc<Observer>,
    /// The session id (stable across the session's queries).
    pub session: u64,
    /// The request id (fresh per query).
    pub request: u64,
}

thread_local! {
    static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

/// Install `scope` on this thread until the returned guard drops (the prior
/// scope, if any, is restored — attachment nests).
pub fn attach(scope: Scope) -> ScopeGuard {
    let prev = SCOPE.with(|slot| slot.borrow_mut().replace(scope));
    ScopeGuard { prev }
}

/// The current thread's scope, if one is attached.
pub fn scope() -> Option<Scope> {
    SCOPE.with(|slot| slot.borrow().clone())
}

/// The current scope's observer, if one is attached.
pub fn scoped_observer() -> Option<Arc<Observer>> {
    SCOPE.with(|slot| slot.borrow().as_ref().map(|s| Arc::clone(&s.observer)))
}

/// Restores the previously attached [`Scope`] on drop.
#[derive(Debug)]
#[must_use = "dropping the guard immediately detaches the scope"]
pub struct ScopeGuard {
    prev: Option<Scope>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        SCOPE.with(|slot| *slot.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_emit_once_and_feed_the_histogram() {
        let observer = Arc::new(Observer::with_sink(Box::new(RingSink::new(8))));
        observer
            .span("query")
            .field("plan", "π_S(R)")
            .ids(3, 9)
            .finish();
        drop(observer.span("query")); // implicit emit on drop
        let snapshot = observer.metrics().snapshot();
        assert_eq!(snapshot.histograms["span.query.ns"].count, 2);
        // The slow log stays empty while disarmed.
        assert!(observer.slow_queries().is_empty());
        assert_eq!(observer.slow_query_threshold(), None);
    }

    #[test]
    fn slow_query_log_catches_spans_over_threshold() {
        let observer = Arc::new(Observer::new());
        observer.set_slow_query_threshold(Some(Duration::ZERO));
        assert_eq!(observer.slow_query_threshold(), Some(Duration::ZERO));
        observer.span("query").field("plan", "R").finish();
        let slow = observer.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "query");
        assert_eq!(slow[0].fields, vec![("plan".into(), "R".into())]);
        assert_eq!(observer.metrics().snapshot().counters["span.slow"], 1);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert!(scope().is_none());
        let outer_observer = Arc::new(Observer::new());
        let guard = attach(Scope {
            observer: Arc::clone(&outer_observer),
            session: 1,
            request: 10,
        });
        assert_eq!(scope().unwrap().request, 10);
        {
            let _inner = attach(Scope {
                observer: Arc::clone(&outer_observer),
                session: 1,
                request: 11,
            });
            assert_eq!(scope().unwrap().request, 11);
        }
        assert_eq!(scope().unwrap().request, 10);
        assert!(scoped_observer().is_some());
        drop(guard);
        assert!(scope().is_none());
    }

    #[test]
    fn spans_inherit_scope_ids() {
        let observer = Arc::new(Observer::with_sink(Box::new(RingSink::new(4))));
        let _guard = attach(Scope {
            observer: Arc::clone(&observer),
            session: 7,
            request: 42,
        });
        observer.span("exec").finish();
        // Read the ring back through the sink the observer owns.
        let snapshot = observer.metrics().snapshot();
        assert_eq!(snapshot.histograms["span.exec.ns"].count, 1);
    }

    #[test]
    fn id_wells_are_monotone() {
        let observer = Observer::new();
        assert_eq!(observer.next_session_id(), 1);
        assert_eq!(observer.next_session_id(), 2);
        assert_eq!(observer.next_request_id(), 1);
        assert_eq!(observer.next_request_id(), 2);
    }
}
