//! Structured trace events and pluggable sinks.
//!
//! A [`TraceEvent`] is the record a finished [`crate::Span`] emits: the span
//! name, the session/request ids it was scoped to, the measured latency and
//! free-form `key=value` fields.  Sinks decide where events go: a bounded
//! [`RingSink`] for tests and the in-process slow-query log, a [`LineSink`]
//! writing one rendered line per event for `ws-serverd`, or [`NullSink`].

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::Mutex;

/// One finished span, ready for a sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span name (`"query"`, `"apply"`, …).
    pub name: String,
    /// The session the span ran under (0 when unscoped).
    pub session: u64,
    /// The request the span ran under (0 when unscoped).
    pub request: u64,
    /// The measured wall-clock latency in nanoseconds.
    pub elapsed_ns: u64,
    /// Free-form `key=value` annotations, in attachment order.
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    /// The line-oriented rendering used by [`LineSink`]:
    /// `span=query session=1 request=3 elapsed_us=1234 plan="…"`.
    pub fn render_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "span={} session={} request={} elapsed_us={}",
            self.name,
            self.session,
            self.request,
            self.elapsed_ns / 1_000
        );
        for (key, value) in &self.fields {
            let _ = write!(out, " {key}={value:?}");
        }
        out
    }
}

/// Where finished spans go.  Implementations must tolerate concurrent
/// emitters (every session thread of a server shares one sink).
pub trait TraceSink: Send + Sync {
    /// Consume one finished span.
    fn emit(&self, event: &TraceEvent);
}

/// A sink that drops everything (the default).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: &TraceEvent) {}
}

/// A bounded in-memory ring of the most recent events.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl RingSink {
    /// A ring keeping at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// How many events are retained.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained event.
    pub fn clear(&self) {
        self.events.lock().expect("trace ring poisoned").clear();
    }
}

impl TraceSink for RingSink {
    fn emit(&self, event: &TraceEvent) {
        let mut events = self.events.lock().expect("trace ring poisoned");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// A sink writing one [`TraceEvent::render_line`] line per event.
#[derive(Debug)]
pub struct LineSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> LineSink<W> {
    /// Wrap a writer (stdout, a log file, a `Vec<u8>` in tests).
    pub fn new(out: W) -> LineSink<W> {
        LineSink {
            out: Mutex::new(out),
        }
    }

    /// Unwrap the writer (tests read back what was written).
    pub fn into_inner(self) -> W {
        self.out.into_inner().expect("trace writer poisoned")
    }
}

impl<W: Write + Send> TraceSink for LineSink<W> {
    fn emit(&self, event: &TraceEvent) {
        // A full disk must not take the query path down: ignore I/O errors.
        let mut out = self.out.lock().expect("trace writer poisoned");
        let _ = writeln!(out, "{}", event.render_line());
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(n: u64) -> TraceEvent {
        TraceEvent {
            name: "query".into(),
            session: 1,
            request: n,
            elapsed_ns: 2_500,
            fields: vec![("plan".into(), "π_S(R)".into())],
        }
    }

    #[test]
    fn lines_carry_ids_and_fields() {
        let line = event(7).render_line();
        assert_eq!(
            line,
            "span=query session=1 request=7 elapsed_us=2 plan=\"π_S(R)\""
        );
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let ring = RingSink::new(2);
        assert!(ring.is_empty());
        for n in 0..3 {
            ring.emit(&event(n));
        }
        let kept = ring.events();
        assert_eq!(ring.len(), 2);
        assert_eq!(kept[0].request, 1);
        assert_eq!(kept[1].request, 2);
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn line_sink_writes_one_line_per_event() {
        let sink = LineSink::new(Vec::new());
        sink.emit(&event(1));
        sink.emit(&event(2));
        let written = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(written.lines().count(), 2);
        assert!(written.starts_with("span=query"));
    }
}
