//! Relational algebra AST and the single-world evaluator.
//!
//! The AST covers exactly the named-perspective operators of §2: selection
//! `σ`, projection `π`, product `×`, union `∪`, difference `−` and attribute
//! renaming `δ`.  The evaluator runs a query against one ordinary
//! [`Database`] (one possible world); it serves three purposes:
//!
//! 1. the "0% density" single-world baseline of Figure 30,
//! 2. the per-world oracle used to validate the world-set operators
//!    (`ws-baselines::explicit`), and
//! 3. query evaluation over template relations inside the UWSDT engine.

use crate::database::Database;
use crate::error::{RelationalError, Result};
use crate::predicate::Predicate;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::HashSet;
use std::fmt;

/// A relational algebra expression.
#[derive(Clone, Debug, PartialEq)]
pub enum RaExpr {
    /// A base relation reference `R`.
    Rel(String),
    /// Selection `σ_pred(input)`.
    Select {
        /// The selection condition.
        pred: Predicate,
        /// The input expression.
        input: Box<RaExpr>,
    },
    /// Projection `π_attrs(input)`; attributes are kept in the given order.
    Project {
        /// The projection list `U`.
        attrs: Vec<String>,
        /// The input expression.
        input: Box<RaExpr>,
    },
    /// Product `left × right` (attribute sets must be disjoint).
    Product {
        /// Left operand.
        left: Box<RaExpr>,
        /// Right operand.
        right: Box<RaExpr>,
    },
    /// Union `left ∪ right` (operands must be union-compatible).
    Union {
        /// Left operand.
        left: Box<RaExpr>,
        /// Right operand.
        right: Box<RaExpr>,
    },
    /// Difference `left − right` (operands must be union-compatible).
    Difference {
        /// Left operand.
        left: Box<RaExpr>,
        /// Right operand.
        right: Box<RaExpr>,
    },
    /// Attribute renaming `δ_{from→to}(input)`.
    Rename {
        /// The attribute to rename.
        from: String,
        /// Its new name.
        to: String,
        /// The input expression.
        input: Box<RaExpr>,
    },
}

impl RaExpr {
    /// Reference a base relation.
    pub fn rel(name: impl Into<String>) -> RaExpr {
        RaExpr::Rel(name.into())
    }

    /// Wrap `self` in a selection.
    pub fn select(self, pred: Predicate) -> RaExpr {
        RaExpr::Select {
            pred,
            input: Box::new(self),
        }
    }

    /// Wrap `self` in a projection.
    pub fn project<S: Into<String>>(self, attrs: Vec<S>) -> RaExpr {
        RaExpr::Project {
            attrs: attrs.into_iter().map(Into::into).collect(),
            input: Box::new(self),
        }
    }

    /// Product with another expression.
    pub fn product(self, other: RaExpr) -> RaExpr {
        RaExpr::Product {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Union with another expression.
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Difference with another expression.
    pub fn difference(self, other: RaExpr) -> RaExpr {
        RaExpr::Difference {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Rename one attribute.
    pub fn rename(self, from: impl Into<String>, to: impl Into<String>) -> RaExpr {
        RaExpr::Rename {
            from: from.into(),
            to: to.into(),
            input: Box::new(self),
        }
    }

    /// The θ-join `self ⋈_pred other`, expressed as `σ_pred(self × other)`.
    pub fn join(self, other: RaExpr, pred: Predicate) -> RaExpr {
        self.product(other).select(pred)
    }

    /// Names of all base relations referenced by the expression.
    pub fn base_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_relations<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            RaExpr::Rel(name) => out.push(name),
            RaExpr::Select { input, .. }
            | RaExpr::Project { input, .. }
            | RaExpr::Rename { input, .. } => input.collect_relations(out),
            RaExpr::Product { left, right }
            | RaExpr::Union { left, right }
            | RaExpr::Difference { left, right } => {
                left.collect_relations(out);
                right.collect_relations(out);
            }
        }
    }

    /// Number of operator nodes (used for reporting query complexity).
    pub fn node_count(&self) -> usize {
        match self {
            RaExpr::Rel(_) => 1,
            RaExpr::Select { input, .. }
            | RaExpr::Project { input, .. }
            | RaExpr::Rename { input, .. } => 1 + input.node_count(),
            RaExpr::Product { left, right }
            | RaExpr::Union { left, right }
            | RaExpr::Difference { left, right } => 1 + left.node_count() + right.node_count(),
        }
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Rel(n) => write!(f, "{n}"),
            RaExpr::Select { pred, input } => write!(f, "σ[{pred}]({input})"),
            RaExpr::Project { attrs, input } => write!(f, "π[{}]({input})", attrs.join(",")),
            RaExpr::Product { left, right } => write!(f, "({left} × {right})"),
            RaExpr::Union { left, right } => write!(f, "({left} ∪ {right})"),
            RaExpr::Difference { left, right } => write!(f, "({left} − {right})"),
            RaExpr::Rename { from, to, input } => write!(f, "δ[{from}→{to}]({input})"),
        }
    }
}

/// Evaluate a relational-algebra expression against one database (one world).
///
/// The result uses bag semantics internally; callers needing set semantics
/// (world comparison) should use [`Relation::set_eq`] / [`Relation::dedup`].
pub fn evaluate(db: &Database, expr: &RaExpr) -> Result<Relation> {
    match expr {
        RaExpr::Rel(name) => Ok(db.relation(name)?.clone()),
        RaExpr::Select { pred, input } => {
            let rel = evaluate(db, input)?;
            let mut out = Relation::new(rel.schema().clone());
            for row in rel.rows() {
                if pred.eval(rel.schema(), row)? {
                    out.push(row.clone())?;
                }
            }
            Ok(out)
        }
        RaExpr::Project { attrs, input } => {
            let rel = evaluate(db, input)?;
            let positions: Vec<usize> = attrs
                .iter()
                .map(|a| rel.schema().position_of(a))
                .collect::<Result<_>>()?;
            let schema = rel
                .schema()
                .projected(&attrs.iter().map(String::as_str).collect::<Vec<_>>())?;
            let mut out = Relation::new(schema);
            for row in rel.rows() {
                out.push(row.project_positions(&positions))?;
            }
            Ok(out)
        }
        RaExpr::Product { left, right } => {
            let l = evaluate(db, left)?;
            let r = evaluate(db, right)?;
            let schema = l
                .schema()
                .product(r.schema(), l.schema().relation().as_ref())?;
            let mut out = Relation::new(schema);
            for lt in l.rows() {
                for rt in r.rows() {
                    out.push(lt.concat(rt))?;
                }
            }
            Ok(out)
        }
        RaExpr::Union { left, right } => {
            let l = evaluate(db, left)?;
            let r = evaluate(db, right)?;
            l.schema().check_union_compatible(r.schema())?;
            let mut out = Relation::new(l.schema().clone());
            for row in l.rows().iter().chain(r.rows()) {
                out.push(row.clone())?;
            }
            out.dedup();
            Ok(out)
        }
        RaExpr::Difference { left, right } => {
            let l = evaluate(db, left)?;
            let r = evaluate(db, right)?;
            l.schema().check_union_compatible(r.schema())?;
            let right_rows: HashSet<&Tuple> = r.rows().iter().collect();
            let mut out = Relation::new(l.schema().clone());
            for row in l.rows() {
                if !right_rows.contains(row) {
                    out.push(row.clone())?;
                }
            }
            out.dedup();
            Ok(out)
        }
        RaExpr::Rename { from, to, input } => {
            let rel = evaluate(db, input)?;
            let schema = rel.schema().renamed_attr(from, to.as_str())?;
            Relation::with_rows(schema, rel.into_rows())
        }
    }
}

/// Evaluate and force set semantics (deduplicated rows).
pub fn evaluate_set(db: &Database, expr: &RaExpr) -> Result<Relation> {
    let mut rel = evaluate(db, expr)?;
    rel.dedup();
    Ok(rel)
}

/// Validate that an expression only references relations present in the
/// database, returning the missing names.
pub fn missing_relations(db: &Database, expr: &RaExpr) -> Vec<String> {
    expr.base_relations()
        .into_iter()
        .filter(|r| !db.contains_relation(r))
        .map(str::to_string)
        .collect()
}

/// Convenience: evaluate, mapping missing relations to a dedicated error.
pub fn evaluate_checked(db: &Database, expr: &RaExpr) -> Result<Relation> {
    let missing = missing_relations(db, expr);
    if let Some(first) = missing.into_iter().next() {
        return Err(RelationalError::UnknownRelation(first));
    }
    evaluate(db, expr)
}

/// Helper to build the schema a query would produce without evaluating it
/// (used by the world-set layers to pre-register result relations).
pub fn output_schema(db: &Database, expr: &RaExpr) -> Result<Schema> {
    // Evaluating on an emptied copy of the catalog is the simplest way to get
    // the schema; relations can be large, so build a database of empty clones.
    let mut empty = Database::new();
    for (name, rel) in db.iter() {
        let _ = name;
        empty.insert_relation(Relation::new(rel.schema().clone()));
    }
    Ok(evaluate(&empty, expr)?.schema().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::schema::Schema;

    fn db() -> Database {
        let mut d = Database::new();
        let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        r.push_values([1i64, 10]).unwrap();
        r.push_values([2i64, 20]).unwrap();
        r.push_values([3i64, 10]).unwrap();
        d.insert_relation(r);
        let mut s = Relation::new(Schema::new("S", &["C"]).unwrap());
        s.push_values([100i64]).unwrap();
        s.push_values([200i64]).unwrap();
        d.insert_relation(s);
        d
    }

    #[test]
    fn base_relation_and_selection() {
        let d = db();
        let q = RaExpr::rel("R").select(Predicate::eq_const("B", 10i64));
        let out = evaluate(&d, &q).unwrap();
        assert_eq!(out.len(), 2);
        let q = RaExpr::rel("R").select(Predicate::cmp_const("A", CmpOp::Ge, 3i64));
        assert_eq!(evaluate(&d, &q).unwrap().len(), 1);
    }

    #[test]
    fn projection_keeps_order_and_duplicates() {
        let d = db();
        let q = RaExpr::rel("R").project(vec!["B"]);
        let out = evaluate(&d, &q).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().attrs()[0].as_ref(), "B");
        let out = evaluate_set(&d, &q).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn product_and_join() {
        let d = db();
        let q = RaExpr::rel("R").product(RaExpr::rel("S"));
        let out = evaluate(&d, &q).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out.schema().arity(), 3);

        let join =
            RaExpr::rel("R").join(RaExpr::rel("S"), Predicate::cmp_attr("A", CmpOp::Lt, "C"));
        assert_eq!(evaluate(&d, &join).unwrap().len(), 6);
    }

    #[test]
    fn union_and_difference_are_set_semantics() {
        let d = db();
        let left = RaExpr::rel("R").select(Predicate::eq_const("B", 10i64));
        let right = RaExpr::rel("R").select(Predicate::eq_const("A", 1i64));
        let u = evaluate(&d, &left.clone().union(right.clone())).unwrap();
        assert_eq!(u.len(), 2); // (1,10) appears in both operands, kept once.
        let m = evaluate(&d, &left.difference(right)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.rows()[0][0], crate::value::Value::int(3));
    }

    #[test]
    fn union_requires_compatible_schemas() {
        let d = db();
        let q = RaExpr::rel("R").union(RaExpr::rel("S"));
        assert!(evaluate(&d, &q).is_err());
    }

    #[test]
    fn rename_changes_schema_only() {
        let d = db();
        let q = RaExpr::rel("R").rename("A", "A2");
        let out = evaluate(&d, &q).unwrap();
        assert!(out.schema().contains("A2"));
        assert!(!out.schema().contains("A"));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn metadata_helpers() {
        let d = db();
        let q = RaExpr::rel("R")
            .join(RaExpr::rel("S"), Predicate::cmp_attr("A", CmpOp::Eq, "C"))
            .project(vec!["A"]);
        assert_eq!(q.base_relations(), vec!["R", "S"]);
        assert_eq!(q.node_count(), 5);
        assert!(missing_relations(&d, &q).is_empty());
        let bad = RaExpr::rel("T");
        assert_eq!(missing_relations(&d, &bad), vec!["T".to_string()]);
        assert!(evaluate_checked(&d, &bad).is_err());
        assert!(evaluate_checked(&d, &q).is_ok());
        let schema = output_schema(&d, &q).unwrap();
        assert_eq!(schema.attrs().len(), 1);
        let shown = q.to_string();
        assert!(shown.contains("π[A]"));
        assert!(shown.contains("σ["));
    }

    #[test]
    fn nested_query_matches_manual_evaluation() {
        let d = db();
        // π_B(σ_{A≠2}(R)) ∪ π_B(σ_{B>15}(R))
        let q = RaExpr::rel("R")
            .select(Predicate::cmp_const("A", CmpOp::Ne, 2i64))
            .project(vec!["B"])
            .union(
                RaExpr::rel("R")
                    .select(Predicate::cmp_const("B", CmpOp::Gt, 15i64))
                    .project(vec!["B"]),
            );
        let out = evaluate(&d, &q).unwrap();
        let values: std::collections::BTreeSet<i64> =
            out.rows().iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(values, [10i64, 20].into_iter().collect());
    }
}
