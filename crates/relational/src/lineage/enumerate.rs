//! Brute-force exact probability of a DNF: enumerate the joint assignments
//! of its variables.
//!
//! This is the oracle the compiled evaluators are pinned against: sum the
//! probability of every joint assignment of the DNF's variables that
//! satisfies at least one clause.  Exponential in the number of distinct
//! variables, so it carries an explicit assignment limit; the d-tree
//! compiler ([`super::dtree`]) exists precisely to avoid this enumeration.

use super::model::{Dnf, Var, VarTable};
use crate::error::{RelationalError, Result};
use std::collections::BTreeSet;

/// Default cap on the number of joint assignments (`2²⁰`), mirroring the
/// exact U-relational evaluator's limit.
pub const DEFAULT_ENUM_LIMIT: u128 = 1 << 20;

/// The exact probability of `dnf` under the independent variables of
/// `vars`, by enumerating joint assignments of the variables the DNF
/// mentions.  Errors when more than `limit` assignments would be needed.
pub fn enumerate_probability(dnf: &Dnf, vars: &VarTable, limit: u128) -> Result<f64> {
    if dnf.is_empty() {
        return Ok(0.0);
    }
    if dnf.iter().any(|clause| clause.is_empty()) {
        return Ok(1.0);
    }
    let relevant: Vec<Var> = dnf
        .iter()
        .flat_map(|clause| clause.vars())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut count: u128 = 1;
    for &v in &relevant {
        count = count.saturating_mul(vars.domain_size(v) as u128);
        if count > limit {
            return Err(RelationalError::Invalid(format!(
                "exact lineage enumeration needs more than {limit} joint assignments"
            )));
        }
    }
    // Odometer over the joint assignments, keeping the running product of
    // the chosen probabilities per position.
    let mut choice = vec![0u32; relevant.len()];
    let mut total = 0.0;
    loop {
        let p: f64 = relevant
            .iter()
            .zip(&choice)
            .map(|(&v, &c)| vars.prob(v, c))
            .product();
        if p > 0.0 {
            let satisfied = dnf.iter().any(|clause| {
                clause.atoms().iter().all(|&(v, c)| {
                    let i = relevant.binary_search(&v).expect("relevant var");
                    choice[i] == c
                })
            });
            if satisfied {
                total += p;
            }
        }
        // Advance the odometer (most-significant position last).
        let mut pos = 0;
        loop {
            if pos == relevant.len() {
                return Ok(total);
            }
            choice[pos] += 1;
            if (choice[pos] as usize) < vars.domain_size(relevant[pos]) {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::model::Clause;

    fn two_coin_vars() -> VarTable {
        let mut vars = VarTable::new();
        vars.add_var("x", vec![0.5, 0.5]).unwrap();
        vars.add_var("y", vec![0.25, 0.75]).unwrap();
        vars
    }

    #[test]
    fn constants_and_single_clauses() {
        let vars = two_coin_vars();
        assert_eq!(enumerate_probability(&vec![], &vars, 1 << 10).unwrap(), 0.0);
        assert_eq!(
            enumerate_probability(&vec![Clause::empty()], &vars, 1 << 10).unwrap(),
            1.0
        );
        assert_eq!(
            enumerate_probability(&vec![Clause::of(1, 1)], &vars, 1 << 10).unwrap(),
            0.75
        );
    }

    #[test]
    fn disjunction_and_conjunction() {
        let vars = two_coin_vars();
        // x=1 ∨ y=1: 1 − (1−0.5)(1−0.75) = 0.875.
        let dnf = vec![Clause::of(0, 1), Clause::of(1, 1)];
        assert_eq!(enumerate_probability(&dnf, &vars, 1 << 10).unwrap(), 0.875);
        // x=1 ∧ y=1: 0.375.
        let dnf = vec![Clause::from_bindings([(0, 1), (1, 1)]).unwrap()];
        assert_eq!(enumerate_probability(&dnf, &vars, 1 << 10).unwrap(), 0.375);
        // Mutually exclusive: x=0 ∨ x=1 = 1.
        let dnf = vec![Clause::of(0, 0), Clause::of(0, 1)];
        assert_eq!(enumerate_probability(&dnf, &vars, 1 << 10).unwrap(), 1.0);
    }

    #[test]
    fn assignment_limit_is_enforced() {
        let mut vars = VarTable::new();
        let mut dnf = Vec::new();
        for i in 0..30 {
            let v = vars.add_var(format!("v{i}"), vec![0.5, 0.5]).unwrap();
            dnf.push(Clause::of(v, 1));
        }
        assert!(enumerate_probability(&dnf, &vars, 1 << 20).is_err());
    }
}
