//! Boolean provenance (lineage) over finite-domain world variables, and the
//! tiered confidence evaluators built on it.
//!
//! Confidence computation is the paper's #P-hard hot path: the probability
//! that a query answer holds is the probability of its *lineage* — the
//! boolean provenance expression describing which combinations of
//! uncertainty choices derive the tuple.  This module makes that lineage a
//! first-class engine object, independent of which possible-worlds
//! representation produced it:
//!
//! * [`model`] — the vocabulary: finite-domain world [`model::Var`]iables
//!   with probability distributions ([`model::VarTable`]), conjunctive
//!   [`model::Clause`]s (partial variable assignments, exactly the shape of
//!   U-relational ws-descriptors and of WSD local-world choices), DNFs, and
//!   lineage-annotated relations ([`model::LineageDb`]).
//! * [`eval`] — the annotated executor: evaluates any positive
//!   [`RaExpr`](crate::RaExpr) plan over a [`model::LineageDb`], propagating
//!   one clause per derivation (products conjoin, inconsistent derivations
//!   drop out) and returning each output tuple's full DNF.
//! * [`safe`] — the extensional (safe-plan) evaluator: a hierarchical-plan
//!   test over the normalized fingerprint form plus an exact
//!   independent-AND / disjoint-OR evaluation that pushes the probability
//!   aggregation into the plan itself; it either returns the exact answer
//!   or declines — it never approximates.
//! * [`dtree`] — the Shannon-expansion d-tree compiler for unsafe plans:
//!   cofactor a DNF on its most-shared variable, recurse, memoize shared
//!   cofactors, and split independent components, under an explicit node
//!   budget.
//! * [`enumerate`] — the brute-force exact oracle over the joint
//!   assignments of a DNF's variables, used by the test suites to pin the
//!   evaluators down.
//!
//! The session layer (`maybms::Session::confidence`) extracts a
//! [`model::LineageDb`] view of each backend's base relations and picks the
//! cheapest tier that is exact for the prepared plan: safe plan →
//! compiled d-tree → the backend's native exact enumeration.

pub mod dtree;
pub mod enumerate;
pub mod eval;
pub mod model;
pub mod safe;

pub use dtree::{DtreeBudget, DtreeCompiler};
pub use enumerate::enumerate_probability;
pub use eval::{evaluate_lineage, LineageOutput};
pub use model::{Clause, Dnf, LineageDb, LineageRelation, Var, VarTable};
pub use safe::{is_safe_shape, safe_probabilities};
