//! The lineage vocabulary: finite-domain world variables, conjunctive
//! clauses, DNFs and lineage-annotated relations.
//!
//! Every possible-worlds representation of this repository decomposes its
//! uncertainty into *independent finite-domain choices*: a WSD component
//! picks one of its local worlds, a U-relational world-table variable picks
//! one of its domain values, a UWSDT component picks one `Lwid`, an explicit
//! `WorldSet` picks one world.  A [`Var`] is one such choice; a [`VarTable`]
//! holds one probability distribution per variable.  A [`Clause`] is a
//! consistent partial assignment `x₁ = c₁ ∧ … ∧ xₖ = cₖ` — the exact shape
//! of a U-relational ws-descriptor — and a [`Dnf`] (disjunction of clauses)
//! is the lineage of one output tuple: the tuple exists in a world iff some
//! clause is satisfied by the world's choices.

use crate::error::{RelationalError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Index of a world variable in a [`VarTable`].
pub type Var = u32;

/// A disjunction of clauses: one output tuple's lineage.
pub type Dnf = Vec<Clause>;

/// The probability distributions of a set of independent finite-domain
/// world variables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VarTable {
    /// `dists[v][c]` = probability that variable `v` takes choice `c`.
    dists: Vec<Vec<f64>>,
    /// Diagnostic name per variable (component id, world-table name, …).
    names: Vec<String>,
}

impl VarTable {
    /// An empty table (certain database: no uncertainty at all).
    pub fn new() -> Self {
        VarTable::default()
    }

    /// Register a variable with the given choice distribution.  The
    /// distribution must be non-empty, each probability must lie in
    /// `[0, 1]`, and the probabilities must sum to 1 (within `1e-6`).
    pub fn add_var(&mut self, name: impl Into<String>, dist: Vec<f64>) -> Result<Var> {
        let name = name.into();
        if dist.is_empty() {
            return Err(RelationalError::Invalid(format!(
                "world variable `{name}` has an empty distribution"
            )));
        }
        if dist.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err(RelationalError::Invalid(format!(
                "world variable `{name}` has a probability outside [0, 1]"
            )));
        }
        let total: f64 = dist.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(RelationalError::Invalid(format!(
                "world variable `{name}` distribution sums to {total}, not 1"
            )));
        }
        let var = self.dists.len() as Var;
        self.dists.push(dist);
        self.names.push(name);
        Ok(var)
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.dists.len()
    }

    /// Whether no variable is registered (a certain database).
    pub fn is_empty(&self) -> bool {
        self.dists.is_empty()
    }

    /// The distribution of one variable.
    pub fn dist(&self, var: Var) -> &[f64] {
        &self.dists[var as usize]
    }

    /// The diagnostic name of one variable.
    pub fn name(&self, var: Var) -> &str {
        &self.names[var as usize]
    }

    /// The domain size of one variable.
    pub fn domain_size(&self, var: Var) -> usize {
        self.dists[var as usize].len()
    }

    /// `P(var = choice)`.
    pub fn prob(&self, var: Var, choice: u32) -> f64 {
        self.dists[var as usize][choice as usize]
    }
}

/// A conjunction of variable bindings `x₁ = c₁ ∧ … ∧ xₖ = cₖ`, kept sorted
/// by variable with at most one binding per variable.
///
/// The empty clause is the constant **true** (a certain derivation).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clause {
    atoms: Vec<(Var, u32)>,
}

impl Clause {
    /// The always-true clause (no bindings).
    pub fn empty() -> Self {
        Clause::default()
    }

    /// A single binding `var = choice`.
    pub fn of(var: Var, choice: u32) -> Self {
        Clause {
            atoms: vec![(var, choice)],
        }
    }

    /// Build a clause from bindings; returns `None` when the same variable
    /// is bound to two different choices (inconsistent conjunction).
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Var, u32)>) -> Option<Self> {
        let mut clause = Clause::empty();
        for (var, choice) in bindings {
            clause = clause.conjoin(&Clause::of(var, choice))?;
        }
        Some(clause)
    }

    /// The bindings, sorted by variable.
    pub fn atoms(&self) -> &[(Var, u32)] {
        &self.atoms
    }

    /// Whether this is the always-true clause.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The variables bound by this clause, ascending.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.atoms.iter().map(|&(v, _)| v)
    }

    /// The choice this clause binds `var` to, if any.
    pub fn binding(&self, var: Var) -> Option<u32> {
        self.atoms
            .binary_search_by_key(&var, |&(v, _)| v)
            .ok()
            .map(|i| self.atoms[i].1)
    }

    /// Conjoin two clauses; `None` when they bind a shared variable to
    /// different choices (the combined derivation is impossible).
    pub fn conjoin(&self, other: &Clause) -> Option<Clause> {
        let mut atoms = Vec::with_capacity(self.atoms.len() + other.atoms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.atoms.len() && j < other.atoms.len() {
            let (lv, lc) = self.atoms[i];
            let (rv, rc) = other.atoms[j];
            match lv.cmp(&rv) {
                std::cmp::Ordering::Less => {
                    atoms.push((lv, lc));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    atoms.push((rv, rc));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if lc != rc {
                        return None;
                    }
                    atoms.push((lv, lc));
                    i += 1;
                    j += 1;
                }
            }
        }
        atoms.extend_from_slice(&self.atoms[i..]);
        atoms.extend_from_slice(&other.atoms[j..]);
        Some(Clause { atoms })
    }

    /// Whether two clauses bind some shared variable to different choices
    /// (they can never hold in the same world).
    pub fn conflicts(&self, other: &Clause) -> bool {
        self.conjoin(other).is_none()
    }

    /// Whether the clauses bind no variable in common.
    pub fn var_disjoint(&self, other: &Clause) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.atoms.len() && j < other.atoms.len() {
            match self.atoms[i].0.cmp(&other.atoms[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// The probability of the clause under independent variables: the
    /// product of its atom probabilities.
    pub fn probability(&self, vars: &VarTable) -> f64 {
        self.atoms.iter().map(|&(v, c)| vars.prob(v, c)).product()
    }
}

/// One base relation annotated with lineage: each row carries the clause
/// under which it exists.
#[derive(Clone, Debug, PartialEq)]
pub struct LineageRelation {
    schema: Schema,
    rows: Vec<(Tuple, Clause)>,
}

impl LineageRelation {
    /// An empty annotated relation.
    pub fn new(schema: Schema) -> Self {
        LineageRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append a row existing under `clause`.
    pub fn push(&mut self, tuple: Tuple, clause: Clause) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.schema.relation().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        self.rows.push((tuple, clause));
        Ok(())
    }

    /// The annotated rows, in insertion order.
    pub fn rows(&self) -> &[(Tuple, Clause)] {
        &self.rows
    }

    /// Number of annotated rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A plain relation of the possible tuples (deduplicated, first
    /// occurrence order), dropping the annotations.
    pub fn possible(&self) -> Result<Relation> {
        let mut seen = BTreeSet::new();
        let mut out = Relation::new(self.schema.clone());
        for (tuple, _) in &self.rows {
            if seen.insert(tuple.clone()) {
                out.push(tuple.clone())?;
            }
        }
        Ok(out)
    }
}

/// A lineage view of a set of base relations: the variable distributions
/// plus one annotated relation per base table.  This is the common shape
/// every backend's uncertainty is translated into before the tiered
/// confidence evaluators run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LineageDb {
    vars: VarTable,
    relations: BTreeMap<String, LineageRelation>,
}

impl LineageDb {
    /// An empty lineage database.
    pub fn new(vars: VarTable) -> Self {
        LineageDb {
            vars,
            relations: BTreeMap::new(),
        }
    }

    /// The variable table.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Insert an annotated relation under its schema name.
    pub fn insert_relation(&mut self, relation: LineageRelation) {
        self.relations
            .insert(relation.schema().relation().to_string(), relation);
    }

    /// Look up an annotated relation.
    pub fn relation(&self, name: &str) -> Result<&LineageRelation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// The registered relation names, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_table_validates_distributions() {
        let mut vars = VarTable::new();
        assert!(vars.add_var("empty", vec![]).is_err());
        assert!(vars.add_var("neg", vec![-0.1, 1.1]).is_err());
        assert!(vars.add_var("short", vec![0.25, 0.25]).is_err());
        let v = vars.add_var("ok", vec![0.25, 0.75]).unwrap();
        assert_eq!(vars.domain_size(v), 2);
        assert_eq!(vars.prob(v, 1), 0.75);
        assert_eq!(vars.name(v), "ok");
        assert_eq!(vars.len(), 1);
        assert!(!vars.is_empty());
    }

    #[test]
    fn clause_conjoin_merge_and_conflict() {
        let a = Clause::from_bindings([(0, 1), (2, 0)]).unwrap();
        let b = Clause::from_bindings([(1, 3), (2, 0)]).unwrap();
        let ab = a.conjoin(&b).unwrap();
        assert_eq!(ab.atoms(), &[(0, 1), (1, 3), (2, 0)]);
        let c = Clause::of(2, 1);
        assert!(a.conflicts(&c));
        assert!(a.conjoin(&c).is_none());
        assert!(Clause::from_bindings([(0, 1), (0, 2)]).is_none());
        assert!(a.var_disjoint(&Clause::of(5, 0)));
        assert!(!a.var_disjoint(&b));
        assert_eq!(a.binding(2), Some(0));
        assert_eq!(a.binding(1), None);
        // The empty clause is true and conjoins with anything.
        assert_eq!(Clause::empty().conjoin(&a).unwrap(), a);
    }

    #[test]
    fn clause_probability_is_the_atom_product() {
        let mut vars = VarTable::new();
        let x = vars.add_var("x", vec![0.5, 0.5]).unwrap();
        let y = vars.add_var("y", vec![0.25, 0.75]).unwrap();
        let c = Clause::from_bindings([(x, 0), (y, 1)]).unwrap();
        assert_eq!(c.probability(&vars), 0.375);
        assert_eq!(Clause::empty().probability(&vars), 1.0);
    }

    #[test]
    fn lineage_relation_checks_arity_and_dedups_possible() {
        let schema = Schema::new("R", &["A"]).unwrap();
        let mut rel = LineageRelation::new(schema);
        rel.push(Tuple::from_iter([1i64]), Clause::of(0, 0))
            .unwrap();
        rel.push(Tuple::from_iter([1i64]), Clause::of(0, 1))
            .unwrap();
        rel.push(Tuple::from_iter([2i64]), Clause::empty()).unwrap();
        assert!(rel
            .push(Tuple::from_iter([1i64, 2i64]), Clause::empty())
            .is_err());
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.possible().unwrap().len(), 2);

        let mut db = LineageDb::new(VarTable::new());
        db.insert_relation(rel);
        assert!(db.relation("R").is_ok());
        assert!(db.relation("S").is_err());
        assert_eq!(db.relation_names().collect::<Vec<_>>(), vec!["R"]);
    }
}
