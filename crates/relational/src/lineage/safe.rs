//! Safe-plan detection and extensional (in-plan) confidence evaluation.
//!
//! Dalvi–Suciu's dichotomy (VLDB 2004) says that for *hierarchical* queries
//! the answer probability can be computed **extensionally**: instead of
//! materializing lineage and compiling it, push probability aggregation into
//! the relational plan itself, using only two exact identities,
//!
//! * **independent-AND** — a product/join of derivations over disjoint
//!   variable sets multiplies probabilities, and
//! * **disjoint-OR / independent-project** — merging the derivations of one
//!   output tuple at a deduplication point sums probabilities when the
//!   derivations are pairwise mutually exclusive (they bind a shared
//!   variable to different choices) and combines as `1 − Π (1 − pᵢ)` across
//!   variable-disjoint (independent) groups.
//!
//! [`is_safe_shape`] is the static detector: a cheap hierarchical-shape test
//! over the normalized fingerprint form ([`crate::fingerprint::normalize_plan`])
//! — positive plans (no difference) that touch each base relation at most
//! once.  [`safe_probabilities`] is the evaluator: it runs the plan
//! bottom-up carrying `(tuple, event)` rows, applies the two identities
//! *only when their side conditions verifiably hold*, and returns `None`
//! the moment a combination is neither independent nor disjoint.  It is
//! therefore self-validating: a `Some` result is the exact probability (the
//! identities are exact), never an approximation — the detector only
//! decides whether attempting the evaluation is worthwhile.

use super::model::{Clause, LineageDb, Var, VarTable};
use crate::algebra::RaExpr;
use crate::error::Result;
use crate::fingerprint::normalize_plan;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::{BTreeMap, BTreeSet};

/// One derivation's probability summary during extensional evaluation.
#[derive(Clone, Debug)]
struct Event {
    /// Exact probability of the derivation.
    p: f64,
    /// Every variable the derivation depends on.
    vars: BTreeSet<Var>,
    /// When the derivation is still a pure conjunction, its clause — the
    /// only shape whose mutual exclusivity with another derivation can be
    /// checked.  Aggregated (projected) derivations lose this.
    clause: Option<Clause>,
}

impl Event {
    fn from_clause(clause: &Clause, vars: &VarTable) -> Event {
        Event {
            p: clause.probability(vars),
            vars: clause.vars().collect(),
            clause: Some(clause.clone()),
        }
    }
}

/// The static hierarchical-shape test over the normalized plan: positive
/// (no difference) and every base relation referenced at most once.  A
/// sufficient condition for the extensional evaluator to apply on
/// tuple-independent and component-decomposed inputs; the evaluator itself
/// re-checks the independence/disjointness side conditions dynamically.
pub fn is_safe_shape(plan: &RaExpr) -> bool {
    let normalized = normalize_plan(plan);
    let mut names = Vec::new();
    if !positive_relations(&normalized, &mut names) {
        return false;
    }
    let distinct: BTreeSet<&String> = names.iter().copied().collect();
    distinct.len() == names.len()
}

/// Collect base relation names (with multiplicity); `false` when the plan
/// contains a difference.
fn positive_relations<'a>(expr: &'a RaExpr, out: &mut Vec<&'a String>) -> bool {
    match expr {
        RaExpr::Rel(name) => {
            out.push(name);
            true
        }
        RaExpr::Select { input, .. }
        | RaExpr::Project { input, .. }
        | RaExpr::Rename { input, .. } => positive_relations(input, out),
        RaExpr::Product { left, right } | RaExpr::Union { left, right } => {
            positive_relations(left, out) && positive_relations(right, out)
        }
        RaExpr::Difference { .. } => false,
    }
}

/// Extensional evaluation of `plan` over `db`: the exact confidence of every
/// possible output tuple, or `None` when some combination step is neither
/// independent-AND nor disjoint-OR (the plan must then go through the
/// d-tree or enumeration tiers).
pub fn safe_probabilities(db: &LineageDb, plan: &RaExpr) -> Result<Option<BTreeMap<Tuple, f64>>> {
    let Some(rows) = eval(db, plan)? else {
        return Ok(None);
    };
    let mut out = BTreeMap::new();
    for (tuple, events) in group(rows.rows) {
        match or_combine(&events) {
            Some(event) => {
                out.insert(tuple, event.p);
            }
            None => return Ok(None),
        }
    }
    Ok(Some(out))
}

struct EventRows {
    schema: Schema,
    rows: Vec<(Tuple, Event)>,
}

fn eval(db: &LineageDb, expr: &RaExpr) -> Result<Option<EventRows>> {
    match expr {
        RaExpr::Rel(name) => {
            let rel = db.relation(name)?;
            let rows = rel
                .rows()
                .iter()
                .map(|(tuple, clause)| (tuple.clone(), Event::from_clause(clause, db.vars())))
                .collect();
            Ok(Some(EventRows {
                schema: rel.schema().clone(),
                rows,
            }))
        }
        RaExpr::Select { pred, input } => {
            let Some(rel) = eval(db, input)? else {
                return Ok(None);
            };
            let mut rows = Vec::new();
            for (tuple, event) in rel.rows {
                if pred.eval(&rel.schema, &tuple)? {
                    rows.push((tuple, event));
                }
            }
            Ok(Some(EventRows {
                schema: rel.schema,
                rows,
            }))
        }
        RaExpr::Project { attrs, input } => {
            let Some(rel) = eval(db, input)? else {
                return Ok(None);
            };
            let positions: Vec<usize> = attrs
                .iter()
                .map(|a| rel.schema.position_of(a))
                .collect::<Result<_>>()?;
            let schema = rel
                .schema
                .projected(&attrs.iter().map(String::as_str).collect::<Vec<_>>())?;
            // The independent-project step: projection is a deduplication
            // point, so merge each output tuple's derivations here — this is
            // where the probability aggregate runs *inside* the plan.
            let mut rows = Vec::new();
            for (tuple, events) in group(
                rel.rows
                    .into_iter()
                    .map(|(tuple, event)| (tuple.project_positions(&positions), event)),
            ) {
                match or_combine(&events) {
                    Some(event) => rows.push((tuple, event)),
                    None => return Ok(None),
                }
            }
            Ok(Some(EventRows { schema, rows }))
        }
        RaExpr::Product { left, right } => {
            let Some(l) = eval(db, left)? else {
                return Ok(None);
            };
            let Some(r) = eval(db, right)? else {
                return Ok(None);
            };
            let schema = l.schema.product(&r.schema, l.schema.relation().as_ref())?;
            let mut rows = Vec::new();
            for (lt, le) in &l.rows {
                for (rt, re) in &r.rows {
                    match and_combine(le, re, db.vars()) {
                        AndResult::Event(event) => rows.push((lt.concat(rt), event)),
                        AndResult::Impossible => {}
                        AndResult::NotExtensional => return Ok(None),
                    }
                }
            }
            Ok(Some(EventRows { schema, rows }))
        }
        RaExpr::Union { left, right } => {
            let Some(l) = eval(db, left)? else {
                return Ok(None);
            };
            let Some(r) = eval(db, right)? else {
                return Ok(None);
            };
            l.schema.check_union_compatible(&r.schema)?;
            // Union is a deduplication point too; shared tuples are merged
            // by the same disjoint/independent-OR rule.
            let mut rows = Vec::new();
            for (tuple, events) in group(l.rows.into_iter().chain(r.rows)) {
                match or_combine(&events) {
                    Some(event) => rows.push((tuple, event)),
                    None => return Ok(None),
                }
            }
            Ok(Some(EventRows {
                schema: l.schema,
                rows,
            }))
        }
        RaExpr::Difference { .. } => Ok(None),
        RaExpr::Rename { from, to, input } => {
            let Some(rel) = eval(db, input)? else {
                return Ok(None);
            };
            let schema = rel.schema.renamed_attr(from, to.as_str())?;
            Ok(Some(EventRows {
                schema,
                rows: rel.rows,
            }))
        }
    }
}

/// Group `(tuple, event)` rows by tuple, preserving first-occurrence order
/// of events within each group.
fn group(rows: impl IntoIterator<Item = (Tuple, Event)>) -> Vec<(Tuple, Vec<Event>)> {
    let mut index: BTreeMap<Tuple, usize> = BTreeMap::new();
    let mut out: Vec<(Tuple, Vec<Event>)> = Vec::new();
    for (tuple, event) in rows {
        match index.get(&tuple) {
            Some(&i) => out[i].1.push(event),
            None => {
                index.insert(tuple.clone(), out.len());
                out.push((tuple, vec![event]));
            }
        }
    }
    out
}

enum AndResult {
    /// The combined derivation with its exact probability.
    Event(Event),
    /// The derivations conflict — no world contains both rows.
    Impossible,
    /// Neither rule applies; the plan is not extensionally evaluable.
    NotExtensional,
}

/// Independent-AND: conjoin pure clauses exactly (shared variables are
/// handled by clause conjunction, whose probability is recomputed from the
/// merged atom set so nothing double-counts), otherwise require
/// variable-disjointness and multiply.
fn and_combine(left: &Event, right: &Event, vars: &VarTable) -> AndResult {
    if let (Some(lc), Some(rc)) = (&left.clause, &right.clause) {
        return match lc.conjoin(rc) {
            Some(clause) => AndResult::Event(Event::from_clause(&clause, vars)),
            None => AndResult::Impossible,
        };
    }
    if left.vars.is_disjoint(&right.vars) {
        let mut vars = left.vars.clone();
        vars.extend(right.vars.iter().copied());
        AndResult::Event(Event {
            p: left.p * right.p,
            vars,
            clause: None,
        })
    } else {
        AndResult::NotExtensional
    }
}

/// Disjoint-OR / independent-OR over one output tuple's derivations:
/// partition into variable-disjoint connected groups; within a group every
/// pair must be mutually exclusive clauses (sum), across groups the events
/// are independent (`1 − Π (1 − p)`).  `None` when a shared-variable pair is
/// not exclusive — the fan-out shape only the d-tree handles.
fn or_combine(events: &[Event]) -> Option<Event> {
    if events.len() == 1 {
        return Some(events[0].clone());
    }
    // Connected components over shared variables.
    let mut component: Vec<usize> = (0..events.len()).collect();
    for i in 0..events.len() {
        for j in (i + 1)..events.len() {
            if !events[i].vars.is_disjoint(&events[j].vars) {
                let (ci, cj) = (component[i], component[j]);
                if ci != cj {
                    let target = ci.min(cj);
                    let source = ci.max(cj);
                    for c in &mut component {
                        if *c == source {
                            *c = target;
                        }
                    }
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<&Event>> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        groups.entry(component[i]).or_default().push(event);
    }
    let mut miss = 1.0;
    let mut vars = BTreeSet::new();
    for group in groups.values() {
        let p = if group.len() == 1 {
            group[0].p
        } else {
            // Every pair shares the group through some variable chain; the
            // sum is exact only when all pairs are mutually exclusive.
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    let (Some(ca), Some(cb)) = (&a.clause, &b.clause) else {
                        return None;
                    };
                    if !ca.conflicts(cb) {
                        return None;
                    }
                }
            }
            group.iter().map(|event| event.p).sum()
        };
        for event in group {
            vars.extend(event.vars.iter().copied());
        }
        miss *= 1.0 - p;
    }
    Some(Event {
        p: 1.0 - miss,
        vars,
        clause: None,
    })
}

#[cfg(test)]
mod tests {
    use super::super::dtree::DtreeCompiler;
    use super::super::eval::evaluate_lineage;
    use super::super::model::{LineageRelation, VarTable};
    use super::*;
    use crate::predicate::{CmpOp, Predicate};

    fn independent_db(n: usize) -> LineageDb {
        let mut vars = VarTable::new();
        let mut db_vars = Vec::new();
        for i in 0..n {
            db_vars.push(vars.add_var(format!("x{i}"), vec![0.25, 0.75]).unwrap());
        }
        let mut db = LineageDb::new(vars);
        let mut r = LineageRelation::new(Schema::new("R", &["A", "B"]).unwrap());
        for (i, &v) in db_vars.iter().enumerate() {
            r.push(
                Tuple::from_iter([i as i64, (i % 2) as i64]),
                Clause::of(v, 1),
            )
            .unwrap();
        }
        db.insert_relation(r);
        db
    }

    #[test]
    fn shape_detector_flags_difference_and_repeats() {
        let safe = RaExpr::rel("R")
            .select(Predicate::eq_const("B", 0i64))
            .project(vec!["B"]);
        assert!(is_safe_shape(&safe));
        let self_join = RaExpr::rel("R").product(RaExpr::rel("R").rename("A", "A2"));
        assert!(!is_safe_shape(&self_join));
        let diff = RaExpr::rel("R").difference(RaExpr::rel("R"));
        assert!(!is_safe_shape(&diff));
        let two_rels = RaExpr::rel("R").product(RaExpr::rel("S"));
        assert!(is_safe_shape(&two_rels));
    }

    #[test]
    fn independent_project_matches_dtree() {
        let db = independent_db(6);
        // π_B(R): each output value aggregates three independent tuples.
        let plan = RaExpr::rel("R").project(vec!["B"]);
        let safe = safe_probabilities(&db, &plan).unwrap().expect("safe");
        let lineage = evaluate_lineage(&db, &plan).unwrap();
        let mut compiler = DtreeCompiler::new(db.vars());
        for (tuple, dnf) in lineage.dnfs() {
            let expected = compiler.probability(&dnf).unwrap();
            assert_eq!(
                safe[&tuple].to_bits(),
                expected.to_bits(),
                "extensional disagrees with d-tree on {tuple}"
            );
        }
        // Three independent tuples at p = 0.75 each: 1 − 0.25³.
        assert_eq!(safe[&Tuple::from_iter([0i64])], 1.0 - 0.25f64.powi(3));
    }

    #[test]
    fn disjoint_or_sums_exclusive_choices() {
        // One 3-valued variable feeding two rows that can never coexist.
        let mut vars = VarTable::new();
        let v = vars.add_var("c", vec![0.25, 0.25, 0.5]).unwrap();
        let mut db = LineageDb::new(vars);
        let mut r = LineageRelation::new(Schema::new("R", &["A"]).unwrap());
        r.push(Tuple::from_iter([7i64]), Clause::of(v, 0)).unwrap();
        r.push(Tuple::from_iter([7i64]), Clause::of(v, 2)).unwrap();
        r.push(Tuple::from_iter([8i64]), Clause::of(v, 1)).unwrap();
        db.insert_relation(r);
        let plan = RaExpr::rel("R");
        let safe = safe_probabilities(&db, &plan).unwrap().expect("safe");
        assert_eq!(safe[&Tuple::from_iter([7i64])], 0.75);
        assert_eq!(safe[&Tuple::from_iter([8i64])], 0.25);
    }

    #[test]
    fn join_of_independent_relations_is_extensional() {
        let mut vars = VarTable::new();
        let x = vars.add_var("x", vec![0.5, 0.5]).unwrap();
        let y = vars.add_var("y", vec![0.25, 0.75]).unwrap();
        let mut db = LineageDb::new(vars);
        let mut r = LineageRelation::new(Schema::new("R", &["A"]).unwrap());
        r.push(Tuple::from_iter([1i64]), Clause::of(x, 1)).unwrap();
        db.insert_relation(r);
        let mut s = LineageRelation::new(Schema::new("S", &["B"]).unwrap());
        s.push(Tuple::from_iter([1i64]), Clause::of(y, 1)).unwrap();
        db.insert_relation(s);
        let plan =
            RaExpr::rel("R").join(RaExpr::rel("S"), Predicate::cmp_attr("A", CmpOp::Eq, "B"));
        let safe = safe_probabilities(&db, &plan).unwrap().expect("safe");
        assert_eq!(safe[&Tuple::from_iter([1i64, 1])], 0.375);
    }

    #[test]
    fn unsafe_fanout_declines() {
        // R(A) ⋈ S(A, B) projected to A: the R variable is shared by two
        // non-exclusive derivations — extensional evaluation must decline.
        let mut vars = VarTable::new();
        let x = vars.add_var("x", vec![0.5, 0.5]).unwrap();
        let y0 = vars.add_var("y0", vec![0.5, 0.5]).unwrap();
        let y1 = vars.add_var("y1", vec![0.5, 0.5]).unwrap();
        let mut db = LineageDb::new(vars);
        let mut r = LineageRelation::new(Schema::new("R", &["A"]).unwrap());
        r.push(Tuple::from_iter([1i64]), Clause::of(x, 1)).unwrap();
        db.insert_relation(r);
        let mut s = LineageRelation::new(Schema::new("S", &["B", "C"]).unwrap());
        s.push(Tuple::from_iter([1i64, 10]), Clause::of(y0, 1))
            .unwrap();
        s.push(Tuple::from_iter([1i64, 20]), Clause::of(y1, 1))
            .unwrap();
        db.insert_relation(s);
        let plan = RaExpr::rel("R")
            .join(RaExpr::rel("S"), Predicate::cmp_attr("A", CmpOp::Eq, "B"))
            .project(vec!["A"]);
        assert!(safe_probabilities(&db, &plan).unwrap().is_none());
        // The d-tree tier picks it up exactly: P(x ∧ (y0 ∨ y1)).
        let lineage = evaluate_lineage(&db, &plan).unwrap();
        let mut compiler = DtreeCompiler::new(db.vars());
        let dnf = &lineage.dnfs()[&Tuple::from_iter([1i64])];
        assert_eq!(compiler.probability(dnf).unwrap(), 0.5 * 0.75);
    }
}
