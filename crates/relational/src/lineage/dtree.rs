//! Shannon-expansion d-tree compilation of lineage DNFs.
//!
//! For unsafe plans the lineage of an output tuple is an arbitrary DNF over
//! finite-domain variables, and its probability is #P-hard in general.  The
//! classical way out (Koch 2009's `conf()` implementation, and the d-tree /
//! decision-diagram literature) is **Shannon expansion**: pick a variable
//! `x` with domain `{0, …, k−1}`, split on its (mutually exclusive,
//! exhaustive) choices,
//!
//! ```text
//! P(F) = Σ_c  P(x = c) · P(F | x = c)
//! ```
//!
//! and recurse on the cofactors `F | x = c` (clauses binding `x` elsewhere
//! drop out; the `x = c` atoms vanish).  Three standard optimizations make
//! this practical:
//!
//! * **variable order** — expand the variable occurring in the most clauses
//!   first (ties broken by index, so compilation is deterministic), which
//!   empirically minimizes cofactor growth;
//! * **independent-component split** — when the clause set partitions into
//!   variable-disjoint components `F = F₁ ∨ … ∨ Fₘ`, use
//!   `P(F) = 1 − Π (1 − P(Fᵢ))` and recurse per component;
//! * **memoized cofactor sharing** — cofactors are canonicalized (sorted,
//!   deduplicated, absorption-reduced) and cached, so a cofactor reached
//!   along different expansion paths is compiled once.
//!
//! Every step is an exact identity — the compiled probability equals the
//! brute-force enumeration ([`super::enumerate`]) bit-for-bit whenever both
//! run in exact (dyadic) arithmetic.  An explicit node budget bounds
//! compilation; blowing it is an error the session layer treats as "fall
//! back to the backend's native exact path".

use super::model::{Clause, Dnf, Var, VarTable};
use crate::error::{RelationalError, Result};
use std::collections::{BTreeMap, HashMap};

/// Compilation limits for one [`DtreeCompiler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DtreeBudget {
    /// Maximum number of expanded d-tree nodes (Shannon expansions plus
    /// component splits) before compilation errors out.
    pub max_nodes: usize,
}

impl Default for DtreeBudget {
    fn default() -> Self {
        DtreeBudget { max_nodes: 1 << 16 }
    }
}

/// A memoizing Shannon-expansion compiler over one variable table.
///
/// The memo table is shared across [`DtreeCompiler::probability`] calls, so
/// compiling the lineage of many output tuples of the same query shares
/// cofactors between tuples too.
#[derive(Debug)]
pub struct DtreeCompiler<'a> {
    vars: &'a VarTable,
    memo: HashMap<Dnf, f64>,
    budget: DtreeBudget,
    nodes: usize,
    memo_hits: usize,
}

impl<'a> DtreeCompiler<'a> {
    /// A compiler with the default budget.
    pub fn new(vars: &'a VarTable) -> Self {
        DtreeCompiler::with_budget(vars, DtreeBudget::default())
    }

    /// A compiler with an explicit budget.
    pub fn with_budget(vars: &'a VarTable, budget: DtreeBudget) -> Self {
        DtreeCompiler {
            vars,
            memo: HashMap::new(),
            budget,
            nodes: 0,
            memo_hits: 0,
        }
    }

    /// Nodes expanded so far (over all `probability` calls).
    pub fn nodes_expanded(&self) -> usize {
        self.nodes
    }

    /// Memo-table hits so far (shared-cofactor savings).
    pub fn memo_hits(&self) -> usize {
        self.memo_hits
    }

    /// The exact probability of `dnf`, by memoized Shannon expansion.
    /// Errors when the node budget is exhausted.
    pub fn probability(&mut self, dnf: &Dnf) -> Result<f64> {
        let canonical = canonicalize(dnf);
        self.compile(canonical)
    }

    fn compile(&mut self, dnf: Dnf) -> Result<f64> {
        // Base cases: the empty DNF is false; an absorbed DNF containing
        // the empty clause is exactly `[true]`.
        if dnf.is_empty() {
            return Ok(0.0);
        }
        if dnf[0].is_empty() {
            return Ok(1.0);
        }
        if let Some(&p) = self.memo.get(&dnf) {
            self.memo_hits += 1;
            return Ok(p);
        }
        self.nodes += 1;
        if self.nodes > self.budget.max_nodes {
            return Err(RelationalError::Invalid(format!(
                "d-tree compilation exceeded the {}-node budget",
                self.budget.max_nodes
            )));
        }

        let components = split_components(&dnf);
        let p = if components.len() > 1 {
            // Independent-OR over variable-disjoint components.
            let mut miss = 1.0;
            for component in components {
                miss *= 1.0 - self.compile(canonicalize(&component))?;
            }
            1.0 - miss
        } else {
            // Shannon expansion on the most-shared variable.
            let var = pick_var(&dnf);
            let mut total = 0.0;
            for choice in 0..self.vars.domain_size(var) as u32 {
                let p_choice = self.vars.prob(var, choice);
                if p_choice == 0.0 {
                    continue;
                }
                let cofactor = cofactor(&dnf, var, choice);
                total += p_choice * self.compile(cofactor)?;
            }
            total
        };
        self.memo.insert(dnf, p);
        Ok(p)
    }
}

/// Canonicalize a DNF: sort, deduplicate, and apply absorption (drop any
/// clause subsumed by a more general one — `F ∨ (F ∧ G) = F`).
fn canonicalize(dnf: &Dnf) -> Dnf {
    let mut clauses = dnf.clone();
    clauses.sort();
    clauses.dedup();
    // Absorption: after dedup no two clauses are equal, so a strict subset
    // clause absorbs its supersets — check all pairs (DNFs here are
    // per-tuple lineages and stay small).
    let keep: Vec<bool> = clauses
        .iter()
        .enumerate()
        .map(|(i, clause)| {
            !clauses
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && subsumes(other, clause))
        })
        .collect();
    clauses
        .into_iter()
        .zip(keep)
        .filter_map(|(clause, keep)| keep.then_some(clause))
        .collect()
}

/// Whether `general`'s atoms are a subset of `specific`'s (so `general`
/// absorbs `specific`).
fn subsumes(general: &Clause, specific: &Clause) -> bool {
    general.atoms().len() <= specific.atoms().len()
        && general
            .atoms()
            .iter()
            .all(|&(v, c)| specific.binding(v) == Some(c))
}

/// Partition the clauses into variable-disjoint connected components
/// (deterministic: components ordered by their first clause).
fn split_components(dnf: &Dnf) -> Vec<Dnf> {
    let mut owner: BTreeMap<Var, usize> = BTreeMap::new();
    let mut parent: Vec<usize> = (0..dnf.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for (i, clause) in dnf.iter().enumerate() {
        for var in clause.vars() {
            match owner.get(&var) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri.max(rj)] = ri.min(rj);
                }
                None => {
                    owner.insert(var, i);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Dnf> = BTreeMap::new();
    for (i, clause) in dnf.iter().enumerate() {
        groups
            .entry(find(&mut parent, i))
            .or_default()
            .push(clause.clone());
    }
    groups.into_values().collect()
}

/// The variable occurring in the most clauses (ties broken by index).
fn pick_var(dnf: &Dnf) -> Var {
    let mut counts: BTreeMap<Var, usize> = BTreeMap::new();
    for clause in dnf {
        for var in clause.vars() {
            *counts.entry(var).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(var, count)| (count, std::cmp::Reverse(var)))
        .map(|(var, _)| var)
        .expect("non-empty clauses have variables")
}

/// The cofactor `F | var = choice`: clauses binding `var` to another choice
/// drop out; `var = choice` atoms vanish; the rest stay.  The result is
/// canonicalized for memo sharing.
fn cofactor(dnf: &Dnf, var: Var, choice: u32) -> Dnf {
    let mut out = Vec::with_capacity(dnf.len());
    for clause in dnf {
        match clause.binding(var) {
            Some(c) if c != choice => {}
            Some(_) => {
                let atoms: Vec<(Var, u32)> = clause
                    .atoms()
                    .iter()
                    .copied()
                    .filter(|&(v, _)| v != var)
                    .collect();
                out.push(Clause::from_bindings(atoms).expect("restriction stays consistent"));
            }
            None => out.push(clause.clone()),
        }
    }
    canonicalize(&out)
}

#[cfg(test)]
mod tests {
    use super::super::enumerate::enumerate_probability;
    use super::*;

    fn vars(n: usize) -> VarTable {
        let mut vars = VarTable::new();
        for i in 0..n {
            vars.add_var(format!("v{i}"), vec![0.25, 0.75]).unwrap();
        }
        vars
    }

    #[test]
    fn matches_enumeration_on_structured_dnfs() {
        let vars = vars(6);
        let cases: Vec<Dnf> = vec![
            vec![],
            vec![Clause::empty()],
            vec![Clause::of(0, 1)],
            // Independent OR.
            vec![Clause::of(0, 1), Clause::of(1, 1), Clause::of(2, 1)],
            // Disjoint (mutually exclusive) OR.
            vec![Clause::of(0, 0), Clause::of(0, 1)],
            // Shared-variable fan-out (the unsafe-join shape).
            vec![
                Clause::from_bindings([(0, 1), (1, 1)]).unwrap(),
                Clause::from_bindings([(0, 1), (2, 1)]).unwrap(),
                Clause::from_bindings([(3, 1), (1, 1)]).unwrap(),
            ],
            // Absorption: v0=1 absorbs v0=1 ∧ v1=0.
            vec![
                Clause::of(0, 1),
                Clause::from_bindings([(0, 1), (1, 0)]).unwrap(),
            ],
        ];
        for dnf in cases {
            let mut compiler = DtreeCompiler::new(&vars);
            let compiled = compiler.probability(&dnf).unwrap();
            let exact = enumerate_probability(&dnf, &vars, 1 << 16).unwrap();
            assert_eq!(
                compiled.to_bits(),
                exact.to_bits(),
                "d-tree disagrees with enumeration on {dnf:?}: {compiled} vs {exact}"
            );
        }
    }

    #[test]
    fn memo_shares_cofactors_across_tuples() {
        let vars = vars(8);
        // Two DNFs sharing the sub-DNF over v2..v5.
        let shared: Vec<Clause> = (2..6).map(|v| Clause::of(v as Var, 1)).collect();
        let mut a: Dnf = vec![Clause::from_bindings([(0, 1), (1, 1)]).unwrap()];
        a.extend(shared.clone());
        let mut b: Dnf = vec![Clause::from_bindings([(0, 1), (1, 0)]).unwrap()];
        b.extend(shared);
        let mut compiler = DtreeCompiler::new(&vars);
        compiler.probability(&a).unwrap();
        let hits_before = compiler.memo_hits();
        compiler.probability(&b).unwrap();
        assert!(
            compiler.memo_hits() > hits_before,
            "second tuple should reuse memoized cofactors"
        );
    }

    #[test]
    fn node_budget_is_enforced() {
        let vars = vars(16);
        // A fan-out DNF whose expansion needs more than 4 nodes.
        let dnf: Dnf = (0..16)
            .map(|i| Clause::from_bindings([(i, 1), ((i + 1) % 16, 1)]).unwrap())
            .collect();
        let mut tight = DtreeCompiler::with_budget(&vars, DtreeBudget { max_nodes: 4 });
        assert!(tight.probability(&dnf).is_err());
        let mut roomy = DtreeCompiler::new(&vars);
        let p = roomy.probability(&dnf).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn component_split_is_exact() {
        let vars = vars(4);
        // (v0=1 ∧ v1=1) ∨ (v2=1 ∧ v3=1): two independent components.
        let dnf = vec![
            Clause::from_bindings([(0, 1), (1, 1)]).unwrap(),
            Clause::from_bindings([(2, 1), (3, 1)]).unwrap(),
        ];
        let mut compiler = DtreeCompiler::new(&vars);
        let p = compiler.probability(&dnf).unwrap();
        let exact = enumerate_probability(&dnf, &vars, 1 << 16).unwrap();
        assert_eq!(p.to_bits(), exact.to_bits());
        // 1 − (1 − 0.5625)(1 − 0.5625) for p = 0.75 per atom.
        assert_eq!(p, 1.0 - (1.0 - 0.5625) * (1.0 - 0.5625));
    }
}
