//! The annotated executor: evaluate a positive plan over a lineage database,
//! propagating one clause per derivation.
//!
//! This mirrors the single-world evaluator in [`crate::algebra`] operator by
//! operator, except that every intermediate row carries the [`Clause`](super::model::Clause) under
//! which it exists:
//!
//! * a base scan emits the relation's annotated rows,
//! * selection keeps a row's clause untouched,
//! * projection and renaming reshape the tuple and keep the clause,
//! * product conjoins the operand clauses — derivations whose clauses bind a
//!   shared variable to different choices are *impossible* (no world
//!   contains both rows) and drop out, and
//! * union concatenates the derivations of both sides.
//!
//! Set-semantics deduplication is deferred to the end: the output tuple's
//! lineage is the disjunction ([`Dnf`]) of **all** of its derivations'
//! clauses, grouped by [`LineageOutput::dnfs`].  Difference is rejected —
//! negation takes the lineage outside DNF and outside the safe/compiled
//! tiers; callers fall back to the backend's native exact path.

use super::model::{Dnf, LineageDb, LineageRelation};
use crate::algebra::RaExpr;
use crate::error::{RelationalError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;
use std::collections::BTreeMap;

/// The result of an annotated evaluation: every derivation of every output
/// tuple, in plan order.
#[derive(Clone, Debug, PartialEq)]
pub struct LineageOutput {
    rows: LineageRelation,
}

impl LineageOutput {
    /// The annotated derivations (one row per derivation; tuples repeat).
    pub fn derivations(&self) -> &LineageRelation {
        &self.rows
    }

    /// The possible output tuples (set semantics, first-occurrence order).
    pub fn possible(&self) -> Result<Relation> {
        self.rows.possible()
    }

    /// Group the derivations into one [`Dnf`] per distinct output tuple.
    pub fn dnfs(&self) -> BTreeMap<Tuple, Dnf> {
        let mut out: BTreeMap<Tuple, Dnf> = BTreeMap::new();
        for (tuple, clause) in self.rows.rows() {
            let dnf = out.entry(tuple.clone()).or_default();
            // Derivations repeat when distinct plan paths produce the same
            // clause; the disjunction is idempotent, so keep one copy.
            if !dnf.contains(clause) {
                dnf.push(clause.clone());
            }
        }
        out
    }
}

/// Evaluate a positive plan over `db`, returning every output derivation
/// with its clause.  Errors on `Difference` (negation has no DNF lineage)
/// and on the same schema violations the single-world evaluator rejects.
pub fn evaluate_lineage(db: &LineageDb, plan: &RaExpr) -> Result<LineageOutput> {
    Ok(LineageOutput {
        rows: eval(db, plan)?,
    })
}

fn eval(db: &LineageDb, expr: &RaExpr) -> Result<LineageRelation> {
    match expr {
        RaExpr::Rel(name) => Ok(db.relation(name)?.clone()),
        RaExpr::Select { pred, input } => {
            let rel = eval(db, input)?;
            let mut out = LineageRelation::new(rel.schema().clone());
            for (tuple, clause) in rel.rows() {
                if pred.eval(rel.schema(), tuple)? {
                    out.push(tuple.clone(), clause.clone())?;
                }
            }
            Ok(out)
        }
        RaExpr::Project { attrs, input } => {
            let rel = eval(db, input)?;
            let positions: Vec<usize> = attrs
                .iter()
                .map(|a| rel.schema().position_of(a))
                .collect::<Result<_>>()?;
            let schema = rel
                .schema()
                .projected(&attrs.iter().map(String::as_str).collect::<Vec<_>>())?;
            let mut out = LineageRelation::new(schema);
            for (tuple, clause) in rel.rows() {
                out.push(tuple.project_positions(&positions), clause.clone())?;
            }
            Ok(out)
        }
        RaExpr::Product { left, right } => {
            let l = eval(db, left)?;
            let r = eval(db, right)?;
            let schema = l
                .schema()
                .product(r.schema(), l.schema().relation().as_ref())?;
            let mut out = LineageRelation::new(schema);
            for (lt, lc) in l.rows() {
                for (rt, rc) in r.rows() {
                    // A conflicting conjunction means no world derives the
                    // combined row: drop the derivation entirely.
                    if let Some(clause) = lc.conjoin(rc) {
                        out.push(lt.concat(rt), clause)?;
                    }
                }
            }
            Ok(out)
        }
        RaExpr::Union { left, right } => {
            let l = eval(db, left)?;
            let r = eval(db, right)?;
            l.schema().check_union_compatible(r.schema())?;
            let mut out = LineageRelation::new(l.schema().clone());
            for (tuple, clause) in l.rows().iter().chain(r.rows()) {
                out.push(tuple.clone(), clause.clone())?;
            }
            Ok(out)
        }
        RaExpr::Difference { .. } => Err(RelationalError::Invalid(
            "lineage evaluation does not support difference (negation has no DNF lineage)"
                .to_string(),
        )),
        RaExpr::Rename { from, to, input } => {
            let rel = eval(db, input)?;
            let schema = rel.schema().renamed_attr(from, to.as_str())?;
            let mut out = LineageRelation::new(schema);
            for (tuple, clause) in rel.rows() {
                out.push(tuple.clone(), clause.clone())?;
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::model::{Clause, VarTable};
    use crate::predicate::Predicate;
    use crate::schema::Schema;

    /// Two tuple-independent relations: R(A, B) with vars x0, x1 and
    /// S(B) with var y.
    fn db() -> LineageDb {
        let mut vars = VarTable::new();
        let x0 = vars.add_var("x0", vec![0.5, 0.5]).unwrap();
        let x1 = vars.add_var("x1", vec![0.75, 0.25]).unwrap();
        let y = vars.add_var("y", vec![0.5, 0.5]).unwrap();
        let mut db = LineageDb::new(vars);
        let mut r = LineageRelation::new(Schema::new("R", &["A", "B"]).unwrap());
        r.push(Tuple::from_iter([1i64, 10]), Clause::of(x0, 1))
            .unwrap();
        r.push(Tuple::from_iter([2i64, 20]), Clause::of(x1, 1))
            .unwrap();
        db.insert_relation(r);
        let mut s = LineageRelation::new(Schema::new("S", &["C"]).unwrap());
        s.push(Tuple::from_iter([10i64]), Clause::of(y, 1)).unwrap();
        db.insert_relation(s);
        db
    }

    #[test]
    fn scan_select_project_keep_clauses() {
        let db = db();
        let q = RaExpr::rel("R")
            .select(Predicate::eq_const("A", 1i64))
            .project(vec!["B"]);
        let out = evaluate_lineage(&db, &q).unwrap();
        let dnfs = out.dnfs();
        assert_eq!(dnfs.len(), 1);
        let dnf = &dnfs[&Tuple::from_iter([10i64])];
        assert_eq!(dnf.as_slice(), &[Clause::of(0, 1)]);
    }

    #[test]
    fn product_conjoins_and_drops_conflicts() {
        let db = db();
        let q = RaExpr::rel("R").join(
            RaExpr::rel("S"),
            Predicate::cmp_attr("B", crate::predicate::CmpOp::Eq, "C"),
        );
        let out = evaluate_lineage(&db, &q).unwrap();
        let dnfs = out.dnfs();
        assert_eq!(dnfs.len(), 1);
        let dnf = &dnfs[&Tuple::from_iter([1i64, 10, 10])];
        assert_eq!(
            dnf.as_slice(),
            &[Clause::from_bindings([(0, 1), (2, 1)]).unwrap()]
        );

        // Conflicting derivations are impossible and drop out: join R with a
        // row requiring x0 = 0 while R's row requires x0 = 1.
        let mut db2 = db.clone();
        let mut s2 = LineageRelation::new(Schema::new("S2", &["D"]).unwrap());
        s2.push(Tuple::from_iter([10i64]), Clause::of(0, 0))
            .unwrap();
        db2.insert_relation(s2);
        let q = RaExpr::rel("R").join(
            RaExpr::rel("S2"),
            Predicate::cmp_attr("B", crate::predicate::CmpOp::Eq, "D"),
        );
        let out = evaluate_lineage(&db2, &q).unwrap();
        assert!(out.dnfs().is_empty());
    }

    #[test]
    fn union_accumulates_dnf_and_dedups_identical_clauses() {
        let db = db();
        let q = RaExpr::rel("R")
            .project(vec!["B"])
            .union(RaExpr::rel("R").project(vec!["B"]));
        let out = evaluate_lineage(&db, &q).unwrap();
        let dnfs = out.dnfs();
        // Identical clauses from both branches collapse to one.
        assert_eq!(dnfs[&Tuple::from_iter([10i64])].len(), 1);
        assert_eq!(dnfs[&Tuple::from_iter([20i64])].len(), 1);
        // Possible output preserves first-occurrence order.
        let possible = out.possible().unwrap();
        assert_eq!(possible.rows().len(), 2);
    }

    #[test]
    fn difference_is_rejected() {
        let db = db();
        let q = RaExpr::rel("S").difference(RaExpr::rel("S"));
        assert!(evaluate_lineage(&db, &q).is_err());
    }
}
