//! Integrity constraints over single-world relations.
//!
//! The chase of the paper's §8 conditions a world-set on *dependencies*:
//! functional dependencies `A1,…,Am → B1,…,Bk` and single-tuple
//! equality-generating dependencies `A1θ1c1 ∧ … ∧ Amθmcm ⇒ A0θ0c0`.  The
//! dependency *types* are purely relational — they mention nothing but
//! attribute names, comparison operators and constants — so they live here in
//! the substrate, where both the per-world satisfaction check
//! ([`world_satisfies`]) and the update subsystem's
//! [`crate::engine::WriteBackend::apply_condition`] can reach them.  The
//! world-set layers (`ws_core::chase`, `ws_uwsdt::chase`) re-export them and
//! add the decomposition-aware chase algorithms on top.

use crate::database::Database;
use crate::error::Result;
use crate::predicate::CmpOp;
use crate::value::Value;
use std::fmt;

/// One comparison atom `A θ c` of an equality-generating dependency.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrComparison {
    /// The attribute `A`.
    pub attr: String,
    /// The comparison operator `θ`.
    pub op: CmpOp,
    /// The constant `c`.
    pub value: Value,
}

impl AttrComparison {
    /// Build an atom.
    pub fn new(attr: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        AttrComparison {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluate the atom on a field value (undefined comparisons are `false`).
    pub fn eval(&self, value: &Value) -> bool {
        self.op.eval(value, &self.value)
    }
}

impl fmt::Display for AttrComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.attr, self.op, self.value)
    }
}

/// A functional dependency `A1,…,Am → B1,…,Bk` over one relation.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionalDependency {
    /// The relation the dependency ranges over.
    pub relation: String,
    /// The determinant attributes `A1,…,Am`.
    pub lhs: Vec<String>,
    /// The dependent attributes `B1,…,Bk`.
    pub rhs: Vec<String>,
}

impl FunctionalDependency {
    /// Build a functional dependency.
    pub fn new<S: Into<String>>(relation: impl Into<String>, lhs: Vec<S>, rhs: Vec<S>) -> Self {
        FunctionalDependency {
            relation: relation.into(),
            lhs: lhs.into_iter().map(Into::into).collect(),
            rhs: rhs.into_iter().map(Into::into).collect(),
        }
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} → {}",
            self.relation,
            self.lhs.join(","),
            self.rhs.join(",")
        )
    }
}

/// A single-tuple equality-generating dependency
/// `A1θ1c1 ∧ … ∧ Amθmcm ⇒ A0θ0c0` over one relation.
#[derive(Clone, Debug, PartialEq)]
pub struct EqualityGeneratingDependency {
    /// The relation the dependency ranges over.
    pub relation: String,
    /// The body atoms (conjunction).
    pub body: Vec<AttrComparison>,
    /// The head atom.
    pub head: AttrComparison,
}

impl EqualityGeneratingDependency {
    /// Build an EGD.
    pub fn new(
        relation: impl Into<String>,
        body: Vec<AttrComparison>,
        head: AttrComparison,
    ) -> Self {
        EqualityGeneratingDependency {
            relation: relation.into(),
            body,
            head,
        }
    }

    /// The implication `A=a ⇒ B θ b` used throughout the census workload.
    pub fn implies(
        relation: impl Into<String>,
        body_attr: impl Into<String>,
        body_value: impl Into<Value>,
        head_attr: impl Into<String>,
        head_op: CmpOp,
        head_value: impl Into<Value>,
    ) -> Self {
        EqualityGeneratingDependency::new(
            relation,
            vec![AttrComparison::new(body_attr, CmpOp::Eq, body_value)],
            AttrComparison::new(head_attr, head_op, head_value),
        )
    }

    /// All attributes involved in the dependency (body then head, deduped).
    pub fn attrs(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.body.iter().map(|a| a.attr.as_str()).collect();
        out.push(self.head.attr.as_str());
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for EqualityGeneratingDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.relation)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " ⇒ {}", self.head)
    }
}

/// A dependency chased by the data-cleaning procedure.
#[derive(Clone, Debug, PartialEq)]
pub enum Dependency {
    /// A functional dependency.
    Fd(FunctionalDependency),
    /// A single-tuple equality-generating dependency.
    Egd(EqualityGeneratingDependency),
}

impl Dependency {
    /// The relation the dependency ranges over.
    pub fn relation(&self) -> &str {
        match self {
            Dependency::Fd(fd) => &fd.relation,
            Dependency::Egd(egd) => &egd.relation,
        }
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dependency::Fd(fd) => write!(f, "{fd}"),
            Dependency::Egd(egd) => write!(f, "{egd}"),
        }
    }
}

/// Whether one world (an ordinary single-world database) satisfies a
/// dependency.
///
/// This is the semantic ground truth every decomposition-aware chase is
/// defined against: a world-set satisfies `ψ` iff every world does.
pub fn world_satisfies(db: &Database, dependency: &Dependency) -> Result<bool> {
    match dependency {
        Dependency::Fd(fd) => world_satisfies_fd(db, fd),
        Dependency::Egd(egd) => world_satisfies_egd(db, egd),
    }
}

fn world_satisfies_fd(db: &Database, fd: &FunctionalDependency) -> Result<bool> {
    let rel = db.relation(&fd.relation)?;
    let lhs: Vec<usize> = fd
        .lhs
        .iter()
        .map(|a| rel.schema().position_of(a))
        .collect::<Result<_>>()?;
    let rhs: Vec<usize> = fd
        .rhs
        .iter()
        .map(|a| rel.schema().position_of(a))
        .collect::<Result<_>>()?;
    for a in rel.rows() {
        for b in rel.rows() {
            let agree_lhs = lhs.iter().all(|&i| a[i] == b[i]);
            let agree_rhs = rhs.iter().all(|&i| a[i] == b[i]);
            if agree_lhs && !agree_rhs {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

fn world_satisfies_egd(db: &Database, egd: &EqualityGeneratingDependency) -> Result<bool> {
    let rel = db.relation(&egd.relation)?;
    for row in rel.rows() {
        let body = egd.body.iter().all(|atom| {
            rel.schema()
                .position(&atom.attr)
                .map(|pos| atom.eval(&row[pos]))
                .unwrap_or(false)
        });
        if body {
            let head_pos = rel.schema().position_of(&egd.head.attr)?;
            if !egd.head.eval(&row[head_pos]) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::Schema;

    fn db(rows: &[(i64, i64)]) -> Database {
        let mut rel = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        for (a, b) in rows {
            rel.push_values([*a, *b]).unwrap();
        }
        let mut d = Database::new();
        d.insert_relation(rel);
        d
    }

    #[test]
    fn displays_read_like_the_paper() {
        let fd = FunctionalDependency::new("R", vec!["A"], vec!["B"]);
        assert_eq!(fd.to_string(), "R: A → B");
        let egd = EqualityGeneratingDependency::implies("R", "A", 1i64, "B", CmpOp::Eq, 2i64);
        assert!(egd.to_string().contains("⇒"));
        assert_eq!(Dependency::Fd(fd.clone()).relation(), "R");
        assert_eq!(Dependency::Egd(egd.clone()).relation(), "R");
        assert_eq!(egd.attrs(), vec!["A", "B"]);
        assert_eq!(Dependency::Fd(fd).to_string(), "R: A → B");
    }

    #[test]
    fn world_satisfaction_checks_fds_and_egds() {
        let good = db(&[(1, 2), (2, 3)]);
        let bad = db(&[(1, 2), (1, 3)]);
        let fd = Dependency::Fd(FunctionalDependency::new("R", vec!["A"], vec!["B"]));
        assert!(world_satisfies(&good, &fd).unwrap());
        assert!(!world_satisfies(&bad, &fd).unwrap());

        let egd = Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "A",
            1i64,
            "B",
            CmpOp::Eq,
            2i64,
        ));
        assert!(world_satisfies(&good, &egd).unwrap());
        assert!(!world_satisfies(&bad, &egd).unwrap());
        // Unknown relations surface as errors, not silent satisfaction.
        let missing = Dependency::Fd(FunctionalDependency::new("NOPE", vec!["A"], vec!["B"]));
        assert!(world_satisfies(&good, &missing).is_err());
    }
}
