//! Tight-loop kernels and the whole-plan columnar executor for the
//! single-world [`Database`] backend.
//!
//! The row-at-a-time operators in [`crate::engine`] clone whole [`Tuple`]s
//! through every plan node.  This module evaluates an entire (optimized)
//! plan over [`ColumnBatch`]es instead: base relations are encoded into flat
//! columns (only the attributes the plan touches), selections become
//! **selection vectors** computed by per-column kernels, products become
//! repeat/tile loops, equi-joins hash flat `i64` key columns, and tuples are
//! only materialized at the very end, for the rows that survived.
//!
//! Selections over base relations are additionally **late-materializing**: a
//! `σ`-chain over a stored relation carries only a `View` — the relation's
//! name plus a selection vector — encoding just the predicate's columns to
//! filter, so a query like `σ_{A=1}(R)` never encodes (or decodes) the
//! columns it merely passes through; surviving rows are cloned straight from
//! the base relation at the materialization boundary.
//!
//! Equivalence contract (checked by the engine's equivalence suites):
//!
//! * **Row order** is bit-identical to the row-at-a-time operators for every
//!   plan and thread count: selections preserve input order, products are
//!   left-major, the hash join probes in left order with per-key right rows
//!   ascending (exactly the product-then-select order), and union/difference
//!   deduplicate into the same `BTreeSet` order.
//! * **Comparison semantics** mirror [`CmpOp::eval`](crate::predicate::CmpOp::eval): comparisons involving
//!   `⊥`/`?` or mixed types are undefined (`false`), and undefined join keys
//!   never match.
//! * **Error semantics** mirror the row path's lazy per-row evaluation: an
//!   atom's attribute positions are only resolved while some row is still
//!   active, so a conjunct that filters everything out masks errors in later
//!   conjuncts, and empty inputs never touch the predicate.  (The one
//!   divergence: a predicate with *several* unknown attributes may surface a
//!   different one of those errors than strict row order would.)
//!
//! Parallelism reuses [`WorkerPool::map_chunks`], which hands out contiguous
//! row morsels and concatenates per-morsel results in morsel order, so the
//! columnar path is deterministic at any thread count too.

use crate::algebra::RaExpr;
use crate::batch::{Column, ColumnBatch};
use crate::database::Database;
use crate::engine::{op_detail, op_name, recognize_equi_join, EngineConfig, EquiJoin};
use crate::error::Result;
use crate::optimizer;
use crate::par::{WorkerPool, MORSEL_ROWS};
use crate::predicate::{CompiledPredicate, Predicate};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeSet, HashMap, HashSet};

/// The needed-attribute set threaded down the plan: `None` = every attribute
/// of the sub-expression is needed (no pruning).
type Needed = Option<BTreeSet<String>>;

/// A late-materialized selection over a stored base relation: the relation's
/// catalog name plus the surviving row indices (`None` = all rows).  Only the
/// predicate columns of a `σ`-chain are ever encoded; everything else stays
/// in the base relation until an operator (or the result boundary) actually
/// consumes it.
struct View {
    name: String,
    sel: Option<Vec<u32>>,
}

/// What a sub-plan evaluates to: encoded columns, or a still-virtual filtered
/// base relation.
enum Eval {
    Batch(ColumnBatch),
    View(View),
}

/// Evaluate `plan` on `db` column-at-a-time and store the result as `out`.
///
/// This is the [`crate::engine::QueryBackend::execute_plan`] implementation
/// of [`Database`]; it creates no intermediate catalog relations.
pub(crate) fn execute_columnar(
    db: &mut Database,
    plan: &RaExpr,
    out: &str,
    config: &EngineConfig,
) -> Result<()> {
    let pool = WorkerPool::new(config.threads);
    let relation = match eval_expr(db, plan, None, config, &pool)? {
        Eval::Batch(batch) => batch.into_relation()?,
        // A σ-chain over a base relation: clone exactly the surviving rows.
        Eval::View(view) => {
            let rel = db.relation(&view.name)?;
            let rows = match &view.sel {
                None => rel.rows().to_vec(),
                Some(sel) => sel
                    .iter()
                    .map(|&i| rel.rows()[i as usize].clone())
                    .collect(),
            };
            crate::relation::Relation::with_rows(rel.schema().clone(), rows)?
        }
    };
    db.store_as(relation, out);
    Ok(())
}

/// Evaluate a sub-plan and force the result into encoded columns (restricted
/// to `needed`, which must be the same set the sub-plan was evaluated with).
fn eval_to_batch(
    db: &Database,
    expr: &RaExpr,
    needed: Option<&BTreeSet<String>>,
    config: &EngineConfig,
    pool: &WorkerPool,
) -> Result<ColumnBatch> {
    match eval_expr(db, expr, needed, config, pool)? {
        Eval::Batch(batch) => Ok(batch),
        Eval::View(view) => {
            let rel = db.relation(&view.name)?;
            Ok(match &view.sel {
                None => ColumnBatch::from_relation(rel, needed),
                Some(sel) => ColumnBatch::from_relation_sel(rel, sel, needed),
            })
        }
    }
}

/// Cheaply count the rows an [`Eval`] holds (for profiles; a view counts
/// through the base relation without materializing anything).
fn eval_len(db: &Database, eval: &Eval) -> u64 {
    match eval {
        Eval::Batch(batch) => batch.len() as u64,
        Eval::View(view) => match &view.sel {
            Some(sel) => sel.len() as u64,
            None => db.relation(&view.name).map(|r| r.len() as u64).unwrap_or(0),
        },
    }
}

/// Bump `exec.morsels` by the fan-out `map_chunks` cuts for `rows` rows.
/// Call sites are already gated on [`EngineConfig::observe`].
fn record_morsels(rows: usize) {
    if let Some(scope) = ws_obs::scope() {
        scope
            .observer
            .metrics()
            .counter("exec.morsels")
            .add(rows.div_ceil(MORSEL_ROWS).max(1) as u64);
    }
}

/// Record a selection's survival rate (`exec.select.survival_pct`) and its
/// morsel fan-out.  Call sites are already gated on [`EngineConfig::observe`].
fn record_selection(rows_in: usize, rows_out: usize) {
    if let Some(scope) = ws_obs::scope() {
        scope
            .observer
            .metrics()
            .histogram("exec.select.survival_pct")
            .record((rows_out * 100 / rows_in.max(1)) as u64);
    }
    record_morsels(rows_in);
}

/// One operator of the columnar path, wrapped in instrumentation when
/// [`EngineConfig::observe`] is on: a profile node (rows via [`eval_len`],
/// path `"columnar"` or `"view"`) plus an `exec.op.<name>.ns` histogram
/// sample.  With the flag off this is a single branch in front of
/// [`eval_expr_inner`].
fn eval_expr(
    db: &Database,
    expr: &RaExpr,
    needed: Option<&BTreeSet<String>>,
    config: &EngineConfig,
    pool: &WorkerPool,
) -> Result<Eval> {
    if !config.observe {
        return eval_expr_inner(db, expr, needed, config, pool);
    }
    let token = ws_obs::profile::enter(op_name(expr), || op_detail(expr));
    let started = std::time::Instant::now();
    let result = eval_expr_inner(db, expr, needed, config, pool);
    if let Some(token) = token {
        let (rows, path) = match &result {
            Ok(eval) => (
                eval_len(db, eval),
                match eval {
                    Eval::Batch(_) => "columnar",
                    Eval::View(_) => "view",
                },
            ),
            Err(_) => (0, "columnar"),
        };
        token.finish(rows, 1, path);
    }
    if let Some(scope) = ws_obs::scope() {
        scope
            .observer
            .metrics()
            .histogram(&format!("exec.op.{}.ns", op_name(expr)))
            .record_duration(started.elapsed());
    }
    result
}

fn eval_expr_inner(
    db: &Database,
    expr: &RaExpr,
    needed: Option<&BTreeSet<String>>,
    config: &EngineConfig,
    pool: &WorkerPool,
) -> Result<Eval> {
    match expr {
        RaExpr::Rel(name) => {
            // Validate the name now, exactly where the row path would.
            db.relation(name)?;
            Ok(Eval::View(View {
                name: name.clone(),
                sel: None,
            }))
        }
        RaExpr::Select { pred, input } => {
            if config.recognize_joins {
                if let RaExpr::Product { left, right } = input.as_ref() {
                    if let Some(join) = recognize_equi_join(db, pred, left, right)? {
                        if config.observe {
                            if let Some(scope) = ws_obs::scope() {
                                scope
                                    .observer
                                    .metrics()
                                    .counter("exec.join.recognized")
                                    .inc();
                            }
                        }
                        return Ok(Eval::Batch(eval_join(
                            db, left, right, &join, needed, config, pool,
                        )?));
                    }
                }
            }
            let child_needed = add_attrs(needed, pred.referenced_attrs());
            match eval_expr(db, input, child_needed.as_ref(), config, pool)? {
                Eval::Batch(batch) => {
                    let sel = select_vector(&batch, pred, pool)?;
                    if config.observe {
                        record_selection(batch.len(), sel.len());
                    }
                    Ok(Eval::Batch(batch.gather(&sel)))
                }
                Eval::View(view) => {
                    let rel = db.relation(&view.name)?;
                    let empty = match &view.sel {
                        None => rel.rows().is_empty(),
                        Some(sel) => sel.is_empty(),
                    };
                    if !empty {
                        if let Ok(compiled) = pred.compile(rel.schema()) {
                            // Fused path: the compiled predicate filters base
                            // rows in place — no column encode at all.
                            // Compilation fails only on unknown attributes,
                            // which fall through to the batch path below so
                            // error masking matches the row path; empty
                            // inputs also fall through (and never touch the
                            // predicate, exactly like zero row evaluations).
                            let rows = rel.rows();
                            let owned: Vec<u32>;
                            let candidates: &[u32] = match &view.sel {
                                Some(sel) => sel,
                                None => {
                                    owned = (0..rows.len() as u32).collect();
                                    &owned
                                }
                            };
                            let sel: Vec<u32> = pool
                                .map_chunks(candidates, |_, chunk| {
                                    filter_rows(rows, &compiled, chunk.to_vec())
                                })
                                .into_iter()
                                .flatten()
                                .collect();
                            if config.observe {
                                record_selection(candidates.len(), sel.len());
                            }
                            return Ok(Eval::View(View {
                                name: view.name,
                                sel: Some(sel),
                            }));
                        }
                    }
                    // Encode only the predicate's columns of the filtered
                    // view, compute the local selection vector, and compose
                    // it with the view's — the passthrough columns are never
                    // touched.
                    let pred_attrs: BTreeSet<String> = pred
                        .referenced_attrs()
                        .into_iter()
                        .map(str::to_string)
                        .collect();
                    let pred_batch = match &view.sel {
                        None => ColumnBatch::from_relation(rel, Some(&pred_attrs)),
                        Some(sel) => ColumnBatch::from_relation_sel(rel, sel, Some(&pred_attrs)),
                    };
                    let local = select_vector(&pred_batch, pred, pool)?;
                    if config.observe {
                        record_selection(pred_batch.len(), local.len());
                    }
                    let sel = match view.sel {
                        None => local,
                        Some(sel) => local.into_iter().map(|i| sel[i as usize]).collect(),
                    };
                    Ok(Eval::View(View {
                        name: view.name,
                        sel: Some(sel),
                    }))
                }
            }
        }
        RaExpr::Project { attrs, input } => {
            let child_needed: Needed = Some(match needed {
                None => attrs.iter().cloned().collect(),
                Some(s) => attrs.iter().filter(|a| s.contains(*a)).cloned().collect(),
            });
            let batch = eval_to_batch(db, input, child_needed.as_ref(), config, pool)?;
            let positions: Vec<usize> = attrs
                .iter()
                .map(|a| batch.schema().position_of(a))
                .collect::<Result<_>>()?;
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let schema = batch.schema().projected(&attr_refs)?;
            let len = batch.len();
            let cols_in = batch.into_cols();
            let cols = positions.iter().map(|&p| cols_in[p].clone()).collect();
            Ok(Eval::Batch(ColumnBatch::from_parts(schema, cols, len)))
        }
        RaExpr::Product { left, right } => {
            let (ln, rn) = split_needed(db, needed, left, right)?;
            let l = eval_to_batch(db, left, ln.as_ref(), config, pool)?;
            let r = eval_to_batch(db, right, rn.as_ref(), config, pool)?;
            Ok(Eval::Batch(product_batches(&l, &r)?))
        }
        RaExpr::Union { left, right } => {
            let (ls, lrows) = eval_rows(db, left, config, pool)?;
            let (rs, rrows) = eval_rows(db, right, config, pool)?;
            ls.check_union_compatible(&rs)?;
            let set: BTreeSet<_> = lrows.into_iter().chain(rrows).collect();
            let relation = crate::relation::Relation::with_rows(ls, set.into_iter().collect())?;
            Ok(Eval::Batch(ColumnBatch::from_relation(&relation, needed)))
        }
        RaExpr::Difference { left, right } => {
            let (ls, lrows) = eval_rows(db, left, config, pool)?;
            let (rs, rrows) = eval_rows(db, right, config, pool)?;
            ls.check_union_compatible(&rs)?;
            let right_set: HashSet<_> = rrows.into_iter().collect();
            let set: BTreeSet<_> = lrows
                .into_iter()
                .filter(|t| !right_set.contains(t))
                .collect();
            let relation = crate::relation::Relation::with_rows(ls, set.into_iter().collect())?;
            Ok(Eval::Batch(ColumnBatch::from_relation(&relation, needed)))
        }
        RaExpr::Rename { from, to, input } => {
            let child_needed: Needed = needed.map(|s| {
                s.iter()
                    .map(|a| if a == to { from.clone() } else { a.clone() })
                    .collect()
            });
            let batch = eval_to_batch(db, input, child_needed.as_ref(), config, pool)?;
            let schema = batch.schema().renamed_attr(from, to)?;
            let len = batch.len();
            Ok(Eval::Batch(ColumnBatch::from_parts(
                schema,
                batch.into_cols(),
                len,
            )))
        }
    }
}

/// Evaluate a sub-plan all the way to decoded rows (set-operation operands
/// consume whole tuples); a view's rows are cloned straight from the base
/// relation without an encode/decode roundtrip.
fn eval_rows(
    db: &Database,
    expr: &RaExpr,
    config: &EngineConfig,
    pool: &WorkerPool,
) -> Result<(crate::schema::Schema, Vec<crate::tuple::Tuple>)> {
    match eval_expr(db, expr, None, config, pool)? {
        Eval::Batch(batch) => Ok((batch.schema().clone(), batch.decode_rows())),
        Eval::View(view) => {
            let rel = db.relation(&view.name)?;
            let rows = match &view.sel {
                None => rel.rows().to_vec(),
                Some(sel) => sel
                    .iter()
                    .map(|&i| rel.rows()[i as usize].clone())
                    .collect(),
            };
            Ok((rel.schema().clone(), rows))
        }
    }
}

/// `needed ∪ extra`, staying `None` (= everything) if `needed` is `None`.
fn add_attrs<'a>(
    needed: Option<&BTreeSet<String>>,
    extra: impl IntoIterator<Item = &'a str>,
) -> Needed {
    needed.map(|s| {
        let mut s = s.clone();
        s.extend(extra.into_iter().map(str::to_string));
        s
    })
}

/// Split a product's needed set between its operands by their output
/// attributes.
fn split_needed(
    db: &Database,
    needed: Option<&BTreeSet<String>>,
    left: &RaExpr,
    right: &RaExpr,
) -> Result<(Needed, Needed)> {
    match needed {
        None => Ok((None, None)),
        Some(s) => {
            let la = optimizer::output_attrs(db, left)?;
            let ra = optimizer::output_attrs(db, right)?;
            Ok((
                Some(s.iter().filter(|a| la.contains(*a)).cloned().collect()),
                Some(s.iter().filter(|a| ra.contains(*a)).cloned().collect()),
            ))
        }
    }
}

fn product_batches(l: &ColumnBatch, r: &ColumnBatch) -> Result<ColumnBatch> {
    let schema = l.schema().product(r.schema(), "x")?;
    let (n, m) = (l.len(), r.len());
    let mut cols: Vec<Option<Column>> = l
        .cols()
        .iter()
        .map(|c| c.as_ref().map(|col| col.repeat_each(m)))
        .collect();
    cols.extend(r.cols().iter().map(|c| c.as_ref().map(|col| col.tile(n))));
    Ok(ColumnBatch::from_parts(schema, cols, n * m))
}

fn eval_join(
    db: &Database,
    left: &RaExpr,
    right: &RaExpr,
    join: &EquiJoin,
    needed: Option<&BTreeSet<String>>,
    config: &EngineConfig,
    pool: &WorkerPool,
) -> Result<ColumnBatch> {
    // The children additionally need the join keys and whatever the residual
    // condition touches.
    let mut extra: Vec<&str> = vec![join.left_attr.as_str(), join.right_attr.as_str()];
    if let Some(residual) = &join.residual {
        extra.extend(residual.referenced_attrs());
    }
    let combined = add_attrs(needed, extra);
    let (ln, rn) = split_needed(db, combined.as_ref(), left, right)?;
    let l = eval_to_batch(db, left, ln.as_ref(), config, pool)?;
    let r = eval_to_batch(db, right, rn.as_ref(), config, pool)?;
    if config.observe {
        // The probe side is what map_chunks fans out over.
        record_morsels(l.len());
    }
    let joined = join_batches(&l, &r, &join.left_attr, &join.right_attr, pool)?;
    match &join.residual {
        None => Ok(joined),
        Some(residual) => {
            let sel = select_vector(&joined, residual, pool)?;
            Ok(joined.gather(&sel))
        }
    }
}

/// Hash equi-join over encoded key columns: serial ordered build (per-key
/// right-row lists ascending), morsel-parallel probe in left order — exactly
/// the product-then-select row order.  `⊥`/`?` keys never match.
fn join_batches(
    l: &ColumnBatch,
    r: &ColumnBatch,
    left_attr: &str,
    right_attr: &str,
    pool: &WorkerPool,
) -> Result<ColumnBatch> {
    let schema = l.schema().product(r.schema(), "x")?;
    let lpos = l.schema().position_of(left_attr)?;
    let rpos = r.schema().position_of(right_attr)?;

    let pairs: Vec<(u32, u32)> = match (l.col(lpos), r.col(rpos)) {
        (Column::Int(lk), Column::Int(rk)) => {
            // Flat i64 fast path (every value is defined and joinable).
            let mut table: HashMap<i64, Vec<u32>> = HashMap::new();
            for (i, &k) in rk.iter().enumerate() {
                table.entry(k).or_default().push(i as u32);
            }
            let parts = pool.map_chunks(lk, |offset, chunk| {
                let mut out = Vec::new();
                for (i, &k) in chunk.iter().enumerate() {
                    if let Some(matches) = table.get(&k) {
                        let li = (offset + i) as u32;
                        out.extend(matches.iter().map(|&ri| (li, ri)));
                    }
                }
                out
            });
            parts.into_iter().flatten().collect()
        }
        (lcol, rcol) => {
            let mut table: HashMap<Value, Vec<u32>> = HashMap::new();
            for i in 0..r.len() {
                let key = rcol.value_at(i);
                if key.is_constant() {
                    table.entry(key).or_default().push(i as u32);
                }
            }
            let mut out = Vec::new();
            for i in 0..l.len() {
                let key = lcol.value_at(i);
                if !key.is_constant() {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    out.extend(matches.iter().map(|&ri| (i as u32, ri)));
                }
            }
            out
        }
    };

    let lsel: Vec<u32> = pairs.iter().map(|&(li, _)| li).collect();
    let rsel: Vec<u32> = pairs.iter().map(|&(_, ri)| ri).collect();
    let mut cols: Vec<Option<Column>> = l
        .cols()
        .iter()
        .map(|c| c.as_ref().map(|col| col.gather(&lsel)))
        .collect();
    cols.extend(
        r.cols()
            .iter()
            .map(|c| c.as_ref().map(|col| col.gather(&rsel))),
    );
    Ok(ColumnBatch::from_parts(schema, cols, pairs.len()))
}

/// Compute the selection vector of `pred` over `batch`: the ascending row
/// indices satisfying the predicate, fanned out over contiguous row morsels.
pub(crate) fn select_vector(
    batch: &ColumnBatch,
    pred: &Predicate,
    pool: &WorkerPool,
) -> Result<Vec<u32>> {
    if batch.is_empty() {
        // Mirrors the row path: with no rows the predicate is never touched,
        // so unknown attributes go unnoticed.
        return Ok(Vec::new());
    }
    let indices: Vec<u32> = (0..batch.len() as u32).collect();
    let parts = pool.map_chunks(&indices, |_, chunk| eval_pred(batch, pred, chunk.to_vec()));
    let mut out = Vec::new();
    for part in parts {
        out.extend(part?);
    }
    Ok(out)
}

/// Evaluate `pred` over the active (ascending) row set, returning the
/// surviving rows, still ascending.  Attribute positions are resolved only
/// while the active set is non-empty, reproducing the row path's
/// short-circuit error masking.
fn eval_pred(batch: &ColumnBatch, pred: &Predicate, active: Vec<u32>) -> Result<Vec<u32>> {
    if active.is_empty() {
        return Ok(active);
    }
    match pred {
        Predicate::AttrConst { attr, op, value } => {
            let pos = batch.schema().position_of(attr)?;
            Ok(match batch.col(pos) {
                Column::Int(v) => match value {
                    Value::Int(c) => {
                        let c = *c;
                        active
                            .into_iter()
                            .filter(|&i| op.eval_i64(v[i as usize], c))
                            .collect()
                    }
                    // Int θ non-Int is undefined, hence false everywhere.
                    _ => Vec::new(),
                },
                Column::Dict { codes, dict } => {
                    // One comparison per distinct value, then a flat lookup.
                    let lut: Vec<bool> = dict.iter().map(|d| op.eval(d, value)).collect();
                    active
                        .into_iter()
                        .filter(|&i| lut[codes[i as usize] as usize])
                        .collect()
                }
            })
        }
        Predicate::AttrAttr { left, op, right } => {
            let lpos = batch.schema().position_of(left)?;
            let rpos = batch.schema().position_of(right)?;
            Ok(match (batch.col(lpos), batch.col(rpos)) {
                (Column::Int(a), Column::Int(b)) => active
                    .into_iter()
                    .filter(|&i| op.eval_i64(a[i as usize], b[i as usize]))
                    .collect(),
                (a, b) => active
                    .into_iter()
                    .filter(|&i| op.eval(&a.value_at(i as usize), &b.value_at(i as usize)))
                    .collect(),
            })
        }
        Predicate::And(ps) => {
            let mut active = active;
            for p in ps {
                if active.is_empty() {
                    break;
                }
                active = eval_pred(batch, p, active)?;
            }
            Ok(active)
        }
        Predicate::Or(ps) => {
            let mut remaining = active;
            let mut trues: Vec<u32> = Vec::new();
            for p in ps {
                if remaining.is_empty() {
                    break;
                }
                let t = eval_pred(batch, p, remaining.clone())?;
                remaining = sorted_diff(&remaining, &t);
                trues.extend(t);
            }
            trues.sort_unstable();
            Ok(trues)
        }
        Predicate::Not(p) => {
            let t = eval_pred(batch, p, active.clone())?;
            Ok(sorted_diff(&active, &t))
        }
    }
}

/// Evaluate a compiled predicate over the active (ascending) row indices of
/// `rows`, atom-at-a-time: each leaf runs one tight pass over the shrinking
/// index set, so the tree is dispatched once per atom instead of once per
/// row.  Infallible — every position was resolved by [`Predicate::compile`].
fn filter_rows(rows: &[Tuple], pred: &CompiledPredicate, active: Vec<u32>) -> Vec<u32> {
    if active.is_empty() {
        return active;
    }
    match pred {
        CompiledPredicate::IntConst { pos, op, value } => active
            .into_iter()
            .filter(|&i| matches!(rows[i as usize][*pos], Value::Int(v) if op.eval_i64(v, *value)))
            .collect(),
        CompiledPredicate::AttrConst { pos, op, value } => active
            .into_iter()
            .filter(|&i| op.eval(&rows[i as usize][*pos], value))
            .collect(),
        CompiledPredicate::AttrAttr { lpos, op, rpos } => active
            .into_iter()
            .filter(|&i| {
                let t = &rows[i as usize];
                match (&t[*lpos], &t[*rpos]) {
                    (Value::Int(a), Value::Int(b)) => op.eval_i64(*a, *b),
                    (a, b) => op.eval(a, b),
                }
            })
            .collect(),
        CompiledPredicate::And(ps) => {
            let mut active = active;
            for p in ps {
                if active.is_empty() {
                    break;
                }
                active = filter_rows(rows, p, active);
            }
            active
        }
        CompiledPredicate::Or(ps) => {
            let mut remaining = active;
            let mut trues: Vec<u32> = Vec::new();
            for p in ps {
                if remaining.is_empty() {
                    break;
                }
                let t = filter_rows(rows, p, remaining.clone());
                remaining = sorted_diff(&remaining, &t);
                trues.extend(t);
            }
            trues.sort_unstable();
            trues
        }
        CompiledPredicate::Not(p) => {
            let t = filter_rows(rows, p, active.clone());
            sorted_diff(&active, &t)
        }
    }
}

/// `a \ b` for ascending vectors with `b ⊆ a`.
fn sorted_diff(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() - b.len());
    let mut bi = 0;
    for &x in a {
        if bi < b.len() && b[bi] == x {
            bi += 1;
        } else {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::relation::Relation;
    use crate::schema::Schema;
    use crate::tuple::Tuple;

    fn batch() -> ColumnBatch {
        let schema = Schema::new("R", &["A", "B", "T"]).unwrap();
        let rows = vec![
            Tuple::new(vec![Value::int(1), Value::int(10), Value::text("x")]),
            Tuple::new(vec![Value::int(2), Value::int(20), Value::text("y")]),
            Tuple::new(vec![Value::int(3), Value::int(10), Value::text("x")]),
            Tuple::new(vec![Value::int(4), Value::int(30), Value::text("z")]),
        ];
        let rel = Relation::with_rows(schema, rows).unwrap();
        ColumnBatch::from_relation(&rel, None)
    }

    #[test]
    fn selection_vectors_match_row_evaluation() {
        let b = batch();
        let pool = WorkerPool::serial();
        let pred = Predicate::and(vec![
            Predicate::eq_const("B", 10i64),
            Predicate::cmp_const("A", CmpOp::Gt, 1i64),
        ]);
        assert_eq!(select_vector(&b, &pred, &pool).unwrap(), vec![2]);

        let text = Predicate::eq_const("T", Value::text("x"));
        assert_eq!(select_vector(&b, &text, &pool).unwrap(), vec![0, 2]);

        let either = Predicate::or(vec![
            Predicate::eq_const("A", 4i64),
            Predicate::eq_const("B", 10i64),
        ]);
        assert_eq!(select_vector(&b, &either, &pool).unwrap(), vec![0, 2, 3]);

        let none = Predicate::not(Predicate::And(vec![]));
        assert!(select_vector(&b, &none, &pool).unwrap().is_empty());

        // Mixed-type comparisons are undefined → false.
        let mixed = Predicate::eq_const("A", Value::text("1"));
        assert!(select_vector(&b, &mixed, &pool).unwrap().is_empty());
    }

    #[test]
    fn short_circuit_masks_unknown_attrs_like_the_row_path() {
        let b = batch();
        let pool = WorkerPool::serial();
        // The first conjunct filters everything out, so the bogus second
        // conjunct is never resolved — exactly like per-row short-circuiting.
        let masked = Predicate::and(vec![
            Predicate::eq_const("A", 99i64),
            Predicate::eq_const("NOPE", 1i64),
        ]);
        assert!(select_vector(&b, &masked, &pool).unwrap().is_empty());
        // With surviving rows, the unknown attribute errors.
        let surfaced = Predicate::and(vec![
            Predicate::eq_const("A", 1i64),
            Predicate::eq_const("NOPE", 1i64),
        ]);
        assert!(select_vector(&b, &surfaced, &pool).is_err());
    }

    #[test]
    fn sorted_diff_removes_subset() {
        assert_eq!(sorted_diff(&[0, 1, 2, 3], &[1, 3]), vec![0, 2]);
        assert_eq!(sorted_diff(&[5], &[]), vec![5]);
        assert!(sorted_diff(&[2, 4], &[2, 4]).is_empty());
    }
}
