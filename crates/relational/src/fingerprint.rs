//! Plan normalization and fingerprinting for prepared-plan caching.
//!
//! A prepared-statement cache needs a *key*: two queries that are the same
//! plan up to irrelevant syntactic detail (conjunct order inside an `AND`,
//! double negation, nested conjunctions) should hit the same cache slot so
//! the optimizer runs once.  This module provides
//!
//! * [`normalize_plan`] — a semantics-preserving canonicalization of an
//!   [`RaExpr`]: predicates are flattened (`AND(AND(a, b), c)` →
//!   `AND(a, b, c)`), double negations are collapsed, single-element
//!   conjunctions/disjunctions are unwrapped, and the children of `AND`/`OR`
//!   are put into a canonical order, and
//! * [`fingerprint`] / [`plan_key`] — a 64-bit FNV-1a digest and the
//!   collision-proof canonical string it is computed from.  Caches key on
//!   [`plan_key`] (exact) and display [`fingerprint`] (compact) in
//!   diagnostics.
//!
//! Normalization never changes what a plan computes: conjunct reordering is
//! sound because predicate evaluation is total on tuples (comparisons on
//! `⊥`/`?` evaluate to `false` rather than erroring), and the executor
//! evaluates composite predicates through the same rewrite rules on every
//! backend.

use crate::algebra::RaExpr;
use crate::predicate::Predicate;

/// Canonicalize a plan for cache keying: normalize every embedded predicate
/// (flatten, de-double-negate, sort) while leaving the operator tree itself
/// untouched.
pub fn normalize_plan(expr: &RaExpr) -> RaExpr {
    match expr {
        RaExpr::Rel(name) => RaExpr::Rel(name.clone()),
        RaExpr::Select { pred, input } => RaExpr::Select {
            pred: normalize_predicate(pred),
            input: Box::new(normalize_plan(input)),
        },
        RaExpr::Project { attrs, input } => RaExpr::Project {
            attrs: attrs.clone(),
            input: Box::new(normalize_plan(input)),
        },
        RaExpr::Product { left, right } => RaExpr::Product {
            left: Box::new(normalize_plan(left)),
            right: Box::new(normalize_plan(right)),
        },
        RaExpr::Union { left, right } => RaExpr::Union {
            left: Box::new(normalize_plan(left)),
            right: Box::new(normalize_plan(right)),
        },
        RaExpr::Difference { left, right } => RaExpr::Difference {
            left: Box::new(normalize_plan(left)),
            right: Box::new(normalize_plan(right)),
        },
        RaExpr::Rename { from, to, input } => RaExpr::Rename {
            from: from.clone(),
            to: to.clone(),
            input: Box::new(normalize_plan(input)),
        },
    }
}

/// Canonicalize a predicate: flatten nested `AND`/`OR`, collapse `NOT NOT`,
/// unwrap single-element conjunctions/disjunctions, and sort the children of
/// each `AND`/`OR` into a deterministic order.
pub fn normalize_predicate(pred: &Predicate) -> Predicate {
    match pred {
        Predicate::AttrConst { .. } | Predicate::AttrAttr { .. } => pred.clone(),
        Predicate::And(parts) => {
            let mut flat = Vec::new();
            flatten_into(parts, true, &mut flat);
            canonical_sort(&mut flat);
            if flat.len() == 1 {
                flat.pop().expect("single element")
            } else {
                Predicate::And(flat)
            }
        }
        Predicate::Or(parts) => {
            let mut flat = Vec::new();
            flatten_into(parts, false, &mut flat);
            canonical_sort(&mut flat);
            if flat.len() == 1 {
                flat.pop().expect("single element")
            } else {
                Predicate::Or(flat)
            }
        }
        // Normalize the child first, then collapse: the inner predicate may
        // only *become* a negation through normalization (¬AND[¬φ] → ¬¬φ).
        Predicate::Not(inner) => match normalize_predicate(inner) {
            Predicate::Not(doubly) => *doubly,
            other => Predicate::Not(Box::new(other)),
        },
    }
}

/// Flatten same-connective children into `out` (`conjunction` selects whether
/// the surrounding connective is `AND`).
fn flatten_into(parts: &[Predicate], conjunction: bool, out: &mut Vec<Predicate>) {
    for part in parts {
        let normalized = normalize_predicate(part);
        match (&normalized, conjunction) {
            (Predicate::And(inner), true) | (Predicate::Or(inner), false) => {
                out.extend(inner.iter().cloned())
            }
            _ => out.push(normalized),
        }
    }
}

/// Deterministic ordering of predicate children, by their structural
/// (`Debug`) rendering — injective, so distinct predicates never tie.
fn canonical_sort(parts: &mut [Predicate]) {
    parts.sort_by_key(|p| format!("{p:?}"));
}

/// The canonical string of a plan: the derived `Debug` rendering of the
/// normalized tree.  Unlike `Display` — which drops type information
/// (`Text("1")` and `Int(1)` both render as `1`, and attribute/constant
/// comparisons are indistinguishable) — the structural `Debug` form is
/// injective on plans, so two plans share a key iff their normalized forms
/// are identical and keying a cache on this string is collision-proof.
pub fn plan_key(expr: &RaExpr) -> String {
    format!("{:?}", normalize_plan(expr))
}

/// A compact 64-bit FNV-1a digest of [`plan_key`], for logs and stats output
/// (caches should compare the full key, not the digest).
pub fn fingerprint(expr: &RaExpr) -> u64 {
    fnv1a(plan_key(expr).as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn a_eq_1() -> Predicate {
        Predicate::eq_const("A", 1i64)
    }

    fn b_gt_2() -> Predicate {
        Predicate::cmp_const("B", CmpOp::Gt, 2i64)
    }

    #[test]
    fn conjunct_order_does_not_change_the_key() {
        let p = RaExpr::rel("R").select(Predicate::and(vec![a_eq_1(), b_gt_2()]));
        let q = RaExpr::rel("R").select(Predicate::and(vec![b_gt_2(), a_eq_1()]));
        assert_eq!(plan_key(&p), plan_key(&q));
        assert_eq!(fingerprint(&p), fingerprint(&q));
    }

    #[test]
    fn nested_connectives_are_flattened() {
        let nested = Predicate::and(vec![Predicate::and(vec![a_eq_1()]), b_gt_2()]);
        let flat = Predicate::and(vec![a_eq_1(), b_gt_2()]);
        assert_eq!(normalize_predicate(&nested), normalize_predicate(&flat));
    }

    #[test]
    fn double_negation_and_singletons_collapse() {
        let p = Predicate::not(Predicate::not(a_eq_1()));
        assert_eq!(normalize_predicate(&p), a_eq_1());
        let one = Predicate::and(vec![a_eq_1()]);
        assert_eq!(normalize_predicate(&one), a_eq_1());
        let one = Predicate::or(vec![b_gt_2()]);
        assert_eq!(normalize_predicate(&one), b_gt_2());
    }

    #[test]
    fn different_plans_have_different_keys() {
        let p = RaExpr::rel("R").select(a_eq_1());
        let q = RaExpr::rel("R").select(b_gt_2());
        assert_ne!(plan_key(&p), plan_key(&q));
        let r = RaExpr::rel("R").project(vec!["A"]);
        assert_ne!(plan_key(&p), plan_key(&r));
    }

    #[test]
    fn display_ambiguous_plans_do_not_collide() {
        // `A = 1` (int) vs `A = "1"` (text): Display renders both as A=1.
        let int_const = RaExpr::rel("R").select(Predicate::eq_const("A", 1i64));
        let text_const = RaExpr::rel("R").select(Predicate::eq_const("A", "1"));
        assert_ne!(plan_key(&int_const), plan_key(&text_const));
        // `A = "B"` (constant) vs `A = B` (attribute comparison).
        let as_const = RaExpr::rel("R").select(Predicate::eq_const("A", "B"));
        let as_attr = RaExpr::rel("R").select(Predicate::cmp_attr("A", CmpOp::Eq, "B"));
        assert_ne!(plan_key(&as_const), plan_key(&as_attr));
    }

    #[test]
    fn negation_surfacing_through_normalization_still_collapses() {
        // ¬(AND[¬φ]) only becomes ¬¬φ after the inner AND unwraps; the Not
        // arm must collapse the surfaced double negation in one pass.
        let p = Predicate::not(Predicate::and(vec![Predicate::not(a_eq_1())]));
        assert_eq!(normalize_predicate(&p), a_eq_1());
        assert_eq!(
            normalize_predicate(&normalize_predicate(&p)),
            normalize_predicate(&p)
        );
    }

    #[test]
    fn normalization_is_idempotent() {
        let plan = RaExpr::rel("R")
            .select(Predicate::and(vec![
                b_gt_2(),
                Predicate::or(vec![a_eq_1(), Predicate::not(Predicate::not(b_gt_2()))]),
            ]))
            .project(vec!["A"]);
        let once = normalize_plan(&plan);
        let twice = normalize_plan(&once);
        assert_eq!(once, twice);
    }
}
