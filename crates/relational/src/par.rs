//! Deterministic intra-operator parallelism: a small fixed-size worker pool
//! built on `std::thread`.
//!
//! The paper's setting — querying world-sets far too large to enumerate —
//! makes the physical operators and the §6 confidence computation the hot
//! paths of the whole stack, and both are embarrassingly parallel over rows,
//! tuples or Monte-Carlo sample blocks.  This module provides the one shared
//! fan-out/fan-in primitive those call sites use:
//!
//! * work is split into **contiguous chunks** (never work-stealing), so the
//!   per-chunk results can be concatenated in chunk order and the final
//!   output is **bit-identical for every thread count**, including the
//!   serial `threads = 1` case;
//! * workers are **scoped threads** ([`std::thread::scope`]), so closures may
//!   borrow the operator's input relations without cloning and without any
//!   `'static` bound;
//! * the pool is **fixed-size**: at most `threads − 1` workers are spawned
//!   per batch (the calling thread always processes the first chunk), and a
//!   worker panic is re-raised on the caller via
//!   [`std::panic::resume_unwind`].
//!
//! No external dependencies (the build is offline): everything here is
//! `std`-only.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Below this many items per prospective chunk, fine-grained batches are not
/// split further: spawning a thread costs more than scanning a few dozen
/// rows.  Coarse work units ([`WorkerPool::map_coarse`],
/// [`WorkerPool::run_blocks`]) ignore this floor.
pub const MIN_CHUNK_ITEMS: usize = 64;

/// A fixed-size fan-out/fan-in worker pool.
///
/// `WorkerPool::new(1)` (the default) executes every batch serially on the
/// calling thread, reproducing the exact behavior and output order of the
/// pre-parallel code; larger pools fan contiguous chunks out to scoped
/// worker threads and concatenate the per-chunk results in chunk order, so
/// results are deterministic for **any** thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// A pool of (at most) `threads` concurrent workers; `0` is clamped to 1.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The serial pool: every batch runs on the calling thread.
    pub fn serial() -> Self {
        WorkerPool::new(1)
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`),
    /// falling back to 1 when the parallelism cannot be determined.
    pub fn available() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs everything on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// How many chunks to split a fine-grained batch of `len` items into;
    /// floor division keeps every chunk at or above [`MIN_CHUNK_ITEMS`].
    fn fine_parts(&self, len: usize) -> usize {
        if self.threads == 1 || len < 2 * MIN_CHUNK_ITEMS {
            1
        } else {
            self.threads.min(len / MIN_CHUNK_ITEMS)
        }
    }

    /// How many chunks to split a coarse batch of `len` work units into.
    fn coarse_parts(&self, len: usize) -> usize {
        if self.threads == 1 {
            1
        } else {
            self.threads.min(len.max(1))
        }
    }

    /// Fan `items` out as at most `threads` contiguous chunks and collect one
    /// result per chunk, in chunk order.  The closure receives the chunk's
    /// starting offset within `items` and the chunk slice, so chunk-local
    /// indices can be translated to global ones.
    pub fn map_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let ranges = chunk_ranges(items.len(), self.fine_parts(items.len()));
        run_ranges(&ranges, |_, range| f(range.start, &items[range]))
    }

    /// Map every item, preserving input order.  Equivalent to (and with one
    /// thread, exactly) `items.iter().map(f).collect()`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        concat(self.map_chunks(items, |_, chunk| chunk.iter().map(&f).collect::<Vec<R>>()))
    }

    /// Map every item to zero or more outputs, concatenated in input order —
    /// the shape of a parallel selection (filter) or a parallel join probe.
    pub fn flat_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Vec<R> + Sync,
    {
        concat(self.map_chunks(items, |_, chunk| {
            chunk.iter().flat_map(&f).collect::<Vec<R>>()
        }))
    }

    /// [`WorkerPool::map`] for *coarse* work units (per-tuple confidence
    /// computations, per-group compositions): splits down to one item per
    /// chunk instead of applying the [`MIN_CHUNK_ITEMS`] floor.
    pub fn map_coarse<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let ranges = chunk_ranges(items.len(), self.coarse_parts(items.len()));
        concat(run_ranges(&ranges, |_, range| {
            items[range].iter().map(&f).collect::<Vec<R>>()
        }))
    }

    /// Run `blocks` independent work units identified by index, returning the
    /// results in index order.  This is the Monte-Carlo shape: each block
    /// seeds its own RNG from its index, so the aggregate is independent of
    /// how blocks are distributed over threads.
    pub fn run_blocks<R, F>(&self, blocks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let ranges = chunk_ranges(blocks, self.coarse_parts(blocks));
        concat(run_ranges(&ranges, |_, range| {
            range.map(&f).collect::<Vec<R>>()
        }))
    }
}

/// Split `0..len` into `parts` contiguous ranges whose lengths differ by at
/// most one (earlier ranges are longer).  `parts` is clamped to `1..=len`
/// (except that `len == 0` yields a single empty range).
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        // One empty chunk, so callers still receive a single (empty) result.
        return vec![0..0; 1];
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Fan the ranges out to scoped threads (first range on the caller) and
/// collect the per-range results in range order, re-raising worker panics.
fn run_ranges<R, F>(ranges: &[Range<usize>], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    if ranges.len() <= 1 {
        return ranges
            .iter()
            .enumerate()
            .map(|(i, r)| f(i, r.clone()))
            .collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, r)| {
                let range = r.clone();
                scope.spawn(move || f(i, range))
            })
            .collect();
        let mut out = Vec::with_capacity(ranges.len());
        out.push(f(0, ranges[0].clone()));
        for handle in handles {
            match handle.join() {
                Ok(value) => out.push(value),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

fn concat<R>(parts: Vec<Vec<R>>) -> Vec<R> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_without_overlap() {
        for len in [0usize, 1, 2, 63, 64, 100, 1000] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start);
                    expected_start = r.end;
                }
                assert_eq!(expected_start, len);
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced chunks {sizes:?}");
            }
        }
    }

    #[test]
    fn map_matches_serial_for_every_thread_count() {
        let items: Vec<i64> = (0..1000).collect();
        let serial: Vec<i64> = items.iter().map(|x| x * 3).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map(&items, |x| x * 3), serial);
            assert_eq!(pool.map_coarse(&items, |x| x * 3), serial);
        }
    }

    #[test]
    fn flat_map_preserves_order_and_filters() {
        let items: Vec<i64> = (0..500).collect();
        let serial: Vec<i64> = items.iter().filter(|x| *x % 3 == 0).cloned().collect();
        for threads in [1usize, 4, 7] {
            let pool = WorkerPool::new(threads);
            let par = pool.flat_map(&items, |x| if x % 3 == 0 { vec![*x] } else { vec![] });
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn run_blocks_is_deterministic_in_index_order() {
        for threads in [1usize, 2, 5] {
            let pool = WorkerPool::new(threads);
            let blocks = pool.run_blocks(17, |b| b * b);
            assert_eq!(blocks, (0..17).map(|b| b * b).collect::<Vec<_>>());
        }
        // Zero blocks: nothing to do.
        assert!(WorkerPool::new(4).run_blocks(0, |b| b).is_empty());
    }

    #[test]
    fn pool_constructors_and_introspection() {
        assert!(WorkerPool::default().is_serial());
        assert!(WorkerPool::new(0).is_serial());
        assert_eq!(WorkerPool::new(6).threads(), 6);
        assert!(WorkerPool::available().threads() >= 1);
        let small = WorkerPool::new(8);
        // Fine-grained batches below the chunking floor stay on one thread.
        assert_eq!(small.fine_parts(10), 1);
        assert!(small.fine_parts(10_000) > 1);
        assert_eq!(small.coarse_parts(3), 3);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(|| {
            pool.map_coarse(&[1, 2, 3, 4], |x| {
                assert!(*x != 3, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }
}
