//! Deterministic intra-operator parallelism: a small fixed-size worker pool
//! built on `std::thread`.
//!
//! The paper's setting — querying world-sets far too large to enumerate —
//! makes the physical operators and the §6 confidence computation the hot
//! paths of the whole stack, and both are embarrassingly parallel over rows,
//! tuples or Monte-Carlo sample blocks.  This module provides the one shared
//! fan-out/fan-in primitive those call sites use:
//!
//! * fine-grained row work is split into contiguous fixed-size **morsels**
//!   ([`MORSEL_ROWS`] rows each) that idle workers claim dynamically from a
//!   shared atomic counter — a straggler morsel never serializes the batch —
//!   while the fan-in step reorders the per-morsel results back into morsel
//!   order, so the final output is **bit-identical for every thread count**,
//!   including the serial `threads = 1` case;
//! * workers are **scoped threads** ([`std::thread::scope`]), so closures may
//!   borrow the operator's input relations without cloning and without any
//!   `'static` bound;
//! * the pool is **fixed-size**: at most `threads − 1` workers are spawned
//!   per batch (the calling thread always processes the first chunk), and a
//!   worker panic is re-raised on the caller via
//!   [`std::panic::resume_unwind`].
//!
//! No external dependencies (the build is offline): everything here is
//! `std`-only.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per morsel: the unit of work idle threads claim during fine-grained
/// fan-out.  Big enough that a morsel amortizes the claim (one atomic
/// `fetch_add`) and fits kernels' cache-friendly tight loops; small enough
/// that skewed per-row costs still balance across workers.  This is also the
/// batch size the streaming cursors pull in
/// ([`crate::cursor::NATIVE_BATCH_ROWS`] re-exports it for that purpose).
pub const MORSEL_ROWS: usize = 1024;

/// A fixed-size fan-out/fan-in worker pool.
///
/// `WorkerPool::new(1)` (the default) executes every batch serially on the
/// calling thread, reproducing the exact behavior and output order of the
/// pre-parallel code; larger pools hand contiguous morsels out to scoped
/// worker threads and merge the per-morsel results back into morsel order,
/// so results are deterministic for **any** thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// A pool of (at most) `threads` concurrent workers; `0` is clamped to 1.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The serial pool: every batch runs on the calling thread.
    pub fn serial() -> Self {
        WorkerPool::new(1)
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`),
    /// falling back to 1 when the parallelism cannot be determined.
    pub fn available() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs everything on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// How many chunks to split a coarse batch of `len` work units into.
    fn coarse_parts(&self, len: usize) -> usize {
        if self.threads == 1 {
            1
        } else {
            self.threads.min(len.max(1))
        }
    }

    /// Fan `items` out as contiguous [`MORSEL_ROWS`]-sized morsels that idle
    /// workers claim dynamically, and collect one result per morsel, in
    /// morsel order.  The closure receives the morsel's starting offset
    /// within `items` and the morsel slice, so morsel-local indices can be
    /// translated to global ones.
    pub fn map_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let ranges = morsel_ranges(items.len());
        self.run_morsels(&ranges, |range| f(range.start, &items[range]))
    }

    /// Dynamic fan-out over pre-cut ranges: workers repeatedly claim the next
    /// unclaimed range index from a shared counter, and the per-range results
    /// are merged back into range order (so output is independent of which
    /// worker ran which range).  Worker panics are re-raised on the caller.
    fn run_morsels<R, F>(&self, ranges: &[Range<usize>], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        if self.threads == 1 || ranges.len() <= 1 {
            return ranges.iter().map(|r| f(r.clone())).collect();
        }
        let next = AtomicUsize::new(0);
        let drain = |local: &mut Vec<(usize, R)>| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(range) = ranges.get(i) else { break };
            local.push((i, f(range.clone())));
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..self.threads.min(ranges.len()))
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        drain(&mut local);
                        local
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(ranges.len());
            drain(&mut all);
            for handle in handles {
                match handle.join() {
                    Ok(local) => all.extend(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            all.sort_unstable_by_key(|&(i, _)| i);
            all.into_iter().map(|(_, r)| r).collect()
        })
    }

    /// Map every item, preserving input order.  Equivalent to (and with one
    /// thread, exactly) `items.iter().map(f).collect()`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        concat(self.map_chunks(items, |_, chunk| chunk.iter().map(&f).collect::<Vec<R>>()))
    }

    /// Map every item to zero or more outputs, concatenated in input order —
    /// the shape of a parallel selection (filter) or a parallel join probe.
    pub fn flat_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Vec<R> + Sync,
    {
        concat(self.map_chunks(items, |_, chunk| {
            chunk.iter().flat_map(&f).collect::<Vec<R>>()
        }))
    }

    /// [`WorkerPool::map`] for *coarse* work units (per-tuple confidence
    /// computations, per-group compositions): statically splits down to as
    /// few as one item per chunk instead of cutting [`MORSEL_ROWS`] morsels.
    pub fn map_coarse<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let ranges = chunk_ranges(items.len(), self.coarse_parts(items.len()));
        concat(run_ranges(&ranges, |_, range| {
            items[range].iter().map(&f).collect::<Vec<R>>()
        }))
    }

    /// Run `blocks` independent work units identified by index, returning the
    /// results in index order.  This is the Monte-Carlo shape: each block
    /// seeds its own RNG from its index, so the aggregate is independent of
    /// how blocks are distributed over threads.
    pub fn run_blocks<R, F>(&self, blocks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let ranges = chunk_ranges(blocks, self.coarse_parts(blocks));
        concat(run_ranges(&ranges, |_, range| {
            range.map(&f).collect::<Vec<R>>()
        }))
    }
}

/// Split `0..len` into consecutive [`MORSEL_ROWS`]-sized ranges (the last
/// may be shorter).  `len == 0` yields a single empty range so callers still
/// receive one (empty) result.
pub fn morsel_ranges(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return vec![0..0; 1];
    }
    let mut ranges = Vec::with_capacity(len.div_ceil(MORSEL_ROWS));
    let mut start = 0;
    while start < len {
        let end = (start + MORSEL_ROWS).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Split `0..len` into `parts` contiguous ranges whose lengths differ by at
/// most one (earlier ranges are longer).  `parts` is clamped to `1..=len`
/// (except that `len == 0` yields a single empty range).
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        // One empty chunk, so callers still receive a single (empty) result.
        return vec![0..0; 1];
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Fan the ranges out to scoped threads (first range on the caller) and
/// collect the per-range results in range order, re-raising worker panics.
fn run_ranges<R, F>(ranges: &[Range<usize>], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    if ranges.len() <= 1 {
        return ranges
            .iter()
            .enumerate()
            .map(|(i, r)| f(i, r.clone()))
            .collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, r)| {
                let range = r.clone();
                scope.spawn(move || f(i, range))
            })
            .collect();
        let mut out = Vec::with_capacity(ranges.len());
        out.push(f(0, ranges[0].clone()));
        for handle in handles {
            match handle.join() {
                Ok(value) => out.push(value),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

fn concat<R>(parts: Vec<Vec<R>>) -> Vec<R> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_without_overlap() {
        for len in [0usize, 1, 2, 63, 64, 100, 1000] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start);
                    expected_start = r.end;
                }
                assert_eq!(expected_start, len);
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced chunks {sizes:?}");
            }
        }
    }

    #[test]
    fn map_matches_serial_for_every_thread_count() {
        let items: Vec<i64> = (0..1000).collect();
        let serial: Vec<i64> = items.iter().map(|x| x * 3).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map(&items, |x| x * 3), serial);
            assert_eq!(pool.map_coarse(&items, |x| x * 3), serial);
        }
    }

    #[test]
    fn flat_map_preserves_order_and_filters() {
        let items: Vec<i64> = (0..500).collect();
        let serial: Vec<i64> = items.iter().filter(|x| *x % 3 == 0).cloned().collect();
        for threads in [1usize, 4, 7] {
            let pool = WorkerPool::new(threads);
            let par = pool.flat_map(&items, |x| if x % 3 == 0 { vec![*x] } else { vec![] });
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn run_blocks_is_deterministic_in_index_order() {
        for threads in [1usize, 2, 5] {
            let pool = WorkerPool::new(threads);
            let blocks = pool.run_blocks(17, |b| b * b);
            assert_eq!(blocks, (0..17).map(|b| b * b).collect::<Vec<_>>());
        }
        // Zero blocks: nothing to do.
        assert!(WorkerPool::new(4).run_blocks(0, |b| b).is_empty());
    }

    #[test]
    fn pool_constructors_and_introspection() {
        assert!(WorkerPool::default().is_serial());
        assert!(WorkerPool::new(0).is_serial());
        assert_eq!(WorkerPool::new(6).threads(), 6);
        assert!(WorkerPool::available().threads() >= 1);
        let small = WorkerPool::new(8);
        assert_eq!(small.coarse_parts(3), 3);
    }

    #[test]
    fn morsel_ranges_cover_without_overlap() {
        for len in [
            0usize,
            1,
            MORSEL_ROWS - 1,
            MORSEL_ROWS,
            MORSEL_ROWS + 1,
            10_000,
        ] {
            let ranges = morsel_ranges(len);
            let mut expected_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expected_start);
                assert!(r.len() <= MORSEL_ROWS);
                expected_start = r.end;
            }
            assert_eq!(expected_start, len);
            // Every range but the last is exactly one morsel.
            for r in &ranges[..ranges.len().saturating_sub(1)] {
                assert_eq!(r.len(), MORSEL_ROWS);
            }
        }
    }

    #[test]
    fn morsel_fan_out_matches_serial_across_many_morsels() {
        // More morsels than threads, so dynamic claiming actually rotates.
        let items: Vec<i64> = (0..(4 * MORSEL_ROWS as i64 + 7)).collect();
        let serial: Vec<i64> = items.iter().filter(|x| *x % 5 == 0).cloned().collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let par = pool.flat_map(&items, |x| if x % 5 == 0 { vec![*x] } else { vec![] });
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(|| {
            pool.map_coarse(&[1, 2, 3, 4], |x| {
                assert!(*x != 3, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }
}
