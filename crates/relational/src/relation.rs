//! Relations: a schema plus a collection of tuples.
//!
//! The paper works with set semantics ("a relation over schema R[A1..Ak] is a
//! set of tuples", §2).  For efficiency the in-memory representation stores a
//! `Vec<Tuple>`; callers choose between `insert` (set semantics, deduplicating)
//! and `push` (bag semantics, used while building large relations whose
//! construction already guarantees uniqueness, e.g. the census generator).

use crate::error::{RelationalError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A relation instance: schema + tuples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation over the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Create a relation and bulk-load rows (bag semantics, arity-checked).
    ///
    /// One validation pass by reference, then the vector is moved in whole —
    /// no per-row push or reallocation, so this is the cheap materialization
    /// boundary for the columnar executor and the generators.
    pub fn with_rows(schema: Schema, rows: Vec<Tuple>) -> Result<Self> {
        if let Some(t) = rows.iter().find(|t| t.arity() != schema.arity()) {
            return Err(RelationalError::ArityMismatch {
                relation: schema.relation().to_string(),
                expected: schema.arity(),
                actual: t.arity(),
            });
        }
        Ok(Relation { schema, rows })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (used by renaming).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Number of stored rows, `|R|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The stored rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Mutable access to the stored rows.
    pub fn rows_mut(&mut self) -> &mut Vec<Tuple> {
        &mut self.rows
    }

    /// Consume the relation, returning its rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Append a row without duplicate elimination (bag semantics).
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.schema.relation().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        self.rows.push(tuple);
        Ok(())
    }

    /// Insert a row with set semantics; returns `true` if it was new.
    ///
    /// This is O(|R|); use it for the small component-style relations of the
    /// world-set layer, not for bulk loads.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if self.rows.contains(&tuple) {
            return Ok(false);
        }
        self.push(tuple)?;
        Ok(true)
    }

    /// Convenience: push a row built from `Into<Value>` items.
    pub fn push_values<I, V>(&mut self, values: I) -> Result<()>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.push(Tuple::from_iter(values))
    }

    /// Whether the relation contains the tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.rows.contains(tuple)
    }

    /// Remove duplicate rows, turning a bag into a set (order not preserved).
    pub fn dedup(&mut self) {
        let set: BTreeSet<Tuple> = std::mem::take(&mut self.rows).into_iter().collect();
        self.rows = set.into_iter().collect();
    }

    /// A canonical, order-insensitive view of the rows (used to compare query
    /// results under set semantics in tests and oracles).
    pub fn row_set(&self) -> BTreeSet<Tuple> {
        self.rows.iter().cloned().collect()
    }

    /// Set-semantics equality: same schema attributes and same set of rows.
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.schema.attrs() == other.schema.attrs() && self.row_set() == other.row_set()
    }

    /// The column values (with duplicates) of one attribute.
    pub fn column(&self, attr: &str) -> Result<Vec<Value>> {
        let pos = self.schema.position_of(attr)?;
        Ok(self.rows.iter().map(|t| t[pos].clone()).collect())
    }

    /// The distinct values of one attribute.
    pub fn distinct_column(&self, attr: &str) -> Result<BTreeSet<Value>> {
        let pos = self.schema.position_of(attr)?;
        Ok(self.rows.iter().map(|t| t[pos].clone()).collect())
    }

    /// Keep only rows satisfying the predicate closure.
    pub fn retain<F: FnMut(&Tuple) -> bool>(&mut self, f: F) {
        self.rows.retain(f);
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel() -> Relation {
        let schema = Schema::new("R", &["A", "B"]).unwrap();
        let mut r = Relation::new(schema);
        r.push_values([1i64, 10]).unwrap();
        r.push_values([2i64, 20]).unwrap();
        r
    }

    #[test]
    fn push_checks_arity() {
        let mut r = rel();
        assert!(r.push(Tuple::from_iter([1i64])).is_err());
        assert!(r.push(Tuple::from_iter([1i64, 2, 3])).is_err());
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = rel();
        assert!(!r.insert(Tuple::from_iter([1i64, 10])).unwrap());
        assert!(r.insert(Tuple::from_iter([3i64, 30])).unwrap());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn dedup_and_set_equality() {
        let mut a = rel();
        a.push_values([1i64, 10]).unwrap();
        assert_eq!(a.len(), 3);
        a.dedup();
        assert_eq!(a.len(), 2);
        let mut b = rel();
        b.rows_mut().reverse();
        assert!(a.set_eq(&b));
        assert_ne!(a.rows(), b.rows());
        assert!(a.contains(&Tuple::from_iter([2i64, 20])));
    }

    #[test]
    fn column_extraction() {
        let r = rel();
        assert_eq!(r.column("A").unwrap(), vec![Value::int(1), Value::int(2)]);
        assert_eq!(r.distinct_column("B").unwrap().len(), 2);
        assert!(r.column("Z").is_err());
    }

    #[test]
    fn with_rows_and_retain() {
        let schema = Schema::new("S", &["X"]).unwrap();
        let mut r = Relation::with_rows(
            schema,
            vec![Tuple::from_iter([1i64]), Tuple::from_iter([2i64])],
        )
        .unwrap();
        r.retain(|t| t[0] == Value::int(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.into_rows().len(), 1);
    }

    #[test]
    fn display_includes_rows() {
        let s = rel().to_string();
        assert!(s.contains("R[A, B]"));
        assert!(s.contains("(1, 10)"));
    }
}
