//! The shared Hoeffding (ε, δ) sample planner behind every Monte-Carlo
//! confidence estimator of the stack.
//!
//! The WSD estimator (`ws_core::confidence::approx`) and the U-relational
//! estimator (`ws_urel::confidence::approx`) both reduce to the same
//! question: how many i.i.d. Bernoulli trials give an additive
//! (ε, δ)-approximation, and how are those trials fanned out over a
//! [`WorkerPool`] without the thread count changing the estimate?  This
//! module is the single answer both samplers share:
//!
//! * [`hoeffding_samples`] — the `⌈ln(2/δ) / (2ε²)⌉` trial bound from
//!   Hoeffding's inequality: `Pr[|p̂ − p| > ε] ≤ 2·exp(−2nε²)`, so `n`
//!   trials make `p̂` an (ε, δ)-approximation (`|p̂ − p| ≤ ε` with
//!   probability at least `1 − δ`).  The guarantee is additive and per
//!   estimated tuple; clients needing it simultaneously for `m` tuples
//!   should pass `δ/m`.
//! * [`block_seed`] / [`run_trial_blocks`] — the determinism story: trials
//!   are drawn in fixed-size blocks ([`SAMPLE_BLOCK`]), each block's RNG is
//!   seeded from `(seed, block index)` alone, and per-block results are
//!   collected in block order — so the aggregate is bit-identical for every
//!   [`WorkerPool`] thread count, including serial, and the seeding scheme
//!   cannot diverge between the representations.

use crate::error::{RelationalError, Result};
use crate::par::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trials per Monte-Carlo block: the unit of parallel fan-out and of seed
/// derivation (see the module docs on determinism).
pub const SAMPLE_BLOCK: usize = 1024;

/// Hard ceiling on the trial count an [`ApproxConfig`] may request
/// (`≈ 4.2M`), so accidentally tiny `ε`/`δ` fail fast instead of hanging.
pub const MAX_SAMPLES: usize = 1 << 22;

/// The (ε, δ) knobs of the estimator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxConfig {
    /// Additive error bound `ε` (half-width of the guarantee interval).
    pub epsilon: f64,
    /// Failure probability `δ`: the estimate may miss `[p − ε, p + ε]` with
    /// probability at most `δ`.
    pub delta: f64,
    /// Base RNG seed; block `b` derives its own seed from `(seed, b)`.
    pub seed: u64,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            epsilon: 0.05,
            delta: 0.01,
            seed: 0x5EED_CAFE,
        }
    }
}

impl ApproxConfig {
    /// An (ε, δ) configuration with the default seed.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        ApproxConfig {
            epsilon,
            delta,
            ..ApproxConfig::default()
        }
    }

    /// The same configuration with a different base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The trial count this configuration requires (validated).
    pub fn samples(&self) -> Result<usize> {
        hoeffding_samples(self.epsilon, self.delta)
    }
}

/// The Hoeffding sample bound `⌈ln(2/δ) / (2ε²)⌉` for an additive
/// (ε, δ)-approximation of a Bernoulli mean.  Errors when the parameters are
/// outside `(0, 1)` or the bound exceeds [`MAX_SAMPLES`].
pub fn hoeffding_samples(epsilon: f64, delta: f64) -> Result<usize> {
    if !(epsilon > 0.0 && epsilon < 1.0 && delta > 0.0 && delta < 1.0) {
        return Err(RelationalError::Invalid(format!(
            "(ε, δ) must lie in (0, 1): got ε = {epsilon}, δ = {delta}"
        )));
    }
    let n = ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil();
    if n > MAX_SAMPLES as f64 {
        return Err(RelationalError::Invalid(format!(
            "(ε = {epsilon}, δ = {delta}) needs {n:.0} Monte-Carlo trials, \
             more than the {MAX_SAMPLES} ceiling"
        )));
    }
    Ok((n as usize).max(1))
}

/// The per-block RNG seed: mixes the block index through SplitMix64's
/// increment so nearby blocks diverge immediately.  Shared by the WSD and
/// U-relational estimators so both samplers have the same determinism story.
pub fn block_seed(seed: u64, block: u64) -> u64 {
    seed ^ (block.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run `samples` Monte-Carlo trials as [`SAMPLE_BLOCK`]-sized blocks fanned
/// out on `pool`, collecting one result per block in block order.
///
/// This is the one block driver behind every (ε, δ) estimator of the stack
/// (WSD and U-relational): each block gets an RNG seeded from
/// `(seed, block index)` alone and its trial count (the last block may be
/// partial), so the aggregate over the returned blocks is bit-identical for
/// any thread count and the seeding scheme cannot diverge between the
/// representations.
pub fn run_trial_blocks<R, F>(pool: &WorkerPool, samples: usize, seed: u64, per_block: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut StdRng, usize) -> R + Sync,
{
    let blocks = samples.div_ceil(SAMPLE_BLOCK);
    pool.run_blocks(blocks, |b| {
        let mut rng = StdRng::seed_from_u64(block_seed(seed, b as u64));
        let block_len = SAMPLE_BLOCK.min(samples - b * SAMPLE_BLOCK);
        per_block(&mut rng, block_len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_bound_shapes() {
        // ε = 0.05, δ = 0.01 → ln(200)/0.005 ≈ 1060 trials.
        let n = hoeffding_samples(0.05, 0.01).unwrap();
        assert!((1000..1100).contains(&n), "n = {n}");
        // Tighter ε needs quadratically more trials.
        assert!(hoeffding_samples(0.025, 0.01).unwrap() > 4 * n - 8);
        // Out-of-range or absurd parameters are rejected.
        assert!(hoeffding_samples(0.0, 0.5).is_err());
        assert!(hoeffding_samples(0.5, 1.0).is_err());
        assert!(hoeffding_samples(1e-6, 0.01).is_err());
        assert!(ApproxConfig::new(2.0, 0.5).samples().is_err());
    }

    #[test]
    fn trial_blocks_are_thread_invariant() {
        use rand::Rng;
        let count = |pool: &WorkerPool| -> usize {
            run_trial_blocks(pool, 3000, 0xABCD, |rng, block_len| {
                (0..block_len).filter(|_| rng.gen::<f64>() < 0.25).count()
            })
            .into_iter()
            .sum()
        };
        let serial = count(&WorkerPool::serial());
        for threads in [2usize, 4, 8] {
            assert_eq!(count(&WorkerPool::new(threads)), serial);
        }
        // The estimate is in the right ballpark (3000 trials at p = 0.25).
        assert!((500..1000).contains(&serial), "hits = {serial}");
    }

    #[test]
    fn block_seeds_diverge() {
        let s0 = block_seed(42, 0);
        let s1 = block_seed(42, 1);
        assert_ne!(s0, s1);
        assert_ne!(block_seed(42, u64::MAX), s0);
    }
}
