//! The unified query engine: one planner/optimizer pipeline over every
//! possible-worlds backend.
//!
//! Section 5 of the paper stresses that the standard relational
//! optimizations — selection pushdown, join recognition, plan sharing —
//! remain applicable when queries are rewritten onto world-set
//! representations.  Historically each representation layer of this
//! repository (single-world, WSD, UWSDT, U-relations, and the explicit
//! world-enumeration oracle) shipped its own naive plan walker over the
//! unoptimized [`RaExpr`] tree.  This module replaces those four copies with
//! one pipeline:
//!
//! ```text
//!           RaExpr ──► optimizer::optimize (catalog-generic) ──► execute
//!                                                                  │
//!                 QueryBackend: physical σ π × ⋈ ∪ − δ  ◄──────────┘
//! ```
//!
//! * [`SchemaCatalog`] is the structural interface the rule-based optimizer
//!   needs: schemas of base relations, nothing else.  Every backend store
//!   (`Database`, `Wsd`, `Uwsdt`, `UDatabase`, `WorldSet`) implements it.
//! * [`QueryBackend`] adds the physical operators.  Each method materializes
//!   one operator's result as a *named* relation inside the backend's own
//!   catalog, which is what keeps correlated sub-queries correlated in the
//!   world-set representations.
//! * [`execute`] is the single shared executor: it walks the (optimized)
//!   plan, allocates scratch names through [`TempNames`] (one generator for
//!   the whole stack instead of per-crate copies), recognises equi-joins on
//!   top of products, and guarantees that scratch relations are dropped when
//!   evaluation fails part-way.
//! * [`evaluate_query`] / [`evaluate_query_with`] are the entry points every
//!   backend's `evaluate_query` now delegates to.
//!
//! The optimizer runs against the backend's catalog only — it never looks at
//! rows — so a plan optimized once is valid for every backend holding the
//! same schemas.

use crate::algebra::RaExpr;
use crate::database::Database;
use crate::error::{RelationalError, Result};
use crate::optimizer;
use crate::par::WorkerPool;
use crate::predicate::{CmpOp, Predicate};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// The structural half of a backend: enough catalog information for the
/// optimizer to reason about a plan without evaluating it.
pub trait SchemaCatalog {
    /// The (named-perspective) schema of a base relation.
    fn schema_of(&self, relation: &str) -> Result<Schema>;

    /// Whether the catalog currently contains a relation of this name.
    fn contains_relation(&self, relation: &str) -> bool;
}

/// A physical query backend: a store that can materialize each
/// relational-algebra operator as a new named relation in its catalog.
///
/// The shared [`execute`] drives these operators; backends only decide *how*
/// each operator touches their representation (per-world copies, template
/// manipulation, descriptor conjunction, …), never *in which order* the plan
/// is evaluated.
pub trait QueryBackend: SchemaCatalog {
    /// The backend's error type.
    type Error: From<RelationalError>;

    /// Whole-plan fast path: backends with their own vectorized executor can
    /// evaluate `plan` in one go (materializing the result as `out`) and
    /// return `Some(result)`.  Returning `None` (the default) falls back to
    /// the shared operator-by-operator executor below.  Only consulted when
    /// [`EngineConfig::columnar`] is set; implementations must honor
    /// `config.recognize_joins` and produce bit-identical rows to the
    /// operator path.
    fn execute_plan(
        &mut self,
        _plan: &RaExpr,
        _out: &str,
        _config: &EngineConfig,
    ) -> Option<std::result::Result<(), Self::Error>> {
        None
    }

    /// Best-effort row count of a materialized relation, used by profiles
    /// (`explain_analyze`) to fill per-operator `rows_out`.  The default
    /// `None` is for backends whose "relation" is a compressed
    /// representation with no cheap tuple count; they report 0 in profiles.
    fn profile_rows(&self, _relation: &str) -> Option<u64> {
        None
    }

    /// Materialize base relation `name` under the result name `out`.
    fn materialize_base(&mut self, name: &str, out: &str) -> std::result::Result<(), Self::Error>;

    /// Selection `σ_pred(input) → out`.  Backends whose physical selection
    /// only supports atomic comparisons can decompose composite predicates
    /// here, drawing intermediate names from the context's scratch allocator.
    fn apply_select(
        &mut self,
        input: &str,
        pred: &Predicate,
        out: &str,
        ctx: &mut ExecContext,
    ) -> std::result::Result<(), Self::Error>;

    /// Projection `π_attrs(input) → out`.
    fn apply_project(
        &mut self,
        input: &str,
        attrs: &[String],
        out: &str,
        ctx: &mut ExecContext,
    ) -> std::result::Result<(), Self::Error>;

    /// Product `left × right → out`.
    fn apply_product(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
        ctx: &mut ExecContext,
    ) -> std::result::Result<(), Self::Error>;

    /// Equi-join `left ⋈_{left_attr = right_attr} right → out`.
    ///
    /// The default evaluates the join extensionally as a selection over the
    /// product; backends with a real join algorithm (hash join on ordinary
    /// databases and UWSDTs, descriptor-conjoining join on U-relations)
    /// override this.
    fn apply_equi_join(
        &mut self,
        left: &str,
        right: &str,
        left_attr: &str,
        right_attr: &str,
        out: &str,
        ctx: &mut ExecContext,
    ) -> std::result::Result<(), Self::Error> {
        let product = ctx.fresh(|n| self.contains_relation(n), "join_x");
        self.apply_product(left, right, &product, ctx)?;
        let pred = Predicate::cmp_attr(left_attr, CmpOp::Eq, right_attr);
        self.apply_select(&product, &pred, out, ctx)
    }

    /// Union `left ∪ right → out` (set semantics).
    fn apply_union(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
    ) -> std::result::Result<(), Self::Error>;

    /// Difference `left − right → out` (set semantics).  Backends restricted
    /// to positive algebra (U-relations) report an unsupported-operation
    /// error here.
    fn apply_difference(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
    ) -> std::result::Result<(), Self::Error>;

    /// Attribute renaming `δ_{from→to}(input) → out`.
    fn apply_rename(
        &mut self,
        input: &str,
        from: &str,
        to: &str,
        out: &str,
    ) -> std::result::Result<(), Self::Error>;

    /// Best-effort removal of a scratch relation.  Called by the executor
    /// for every temporary it created on error paths (and, when
    /// [`EngineConfig::drop_temps`] is set, after success as well); failures
    /// are ignored.
    fn drop_scratch(&mut self, name: &str);
}

/// The write half of a backend: the paper's update language (possible and
/// certain inserts, deletes, modifications) plus conditioning on integrity
/// constraints, with the semantics contract *"apply the update in every
/// possible world, then re-decompose"*.
///
/// Each verb mutates one base relation (or, for
/// [`WriteBackend::apply_condition`], the whole store) in place.  Backends
/// decide *how* their representation absorbs the change — per-world edits,
/// component splitting and renormalization on WSDs/UWSDTs, world-table DNF
/// rewriting on U-relations — but all of them must agree with applying the
/// verb to every enumerated world separately.  The `UpdateExpr` AST in
/// `ws_core::ops::update` dispatches onto these verbs; `maybms::Session`
/// adds typechecking, plan-cache invalidation and stats on top.
pub trait WriteBackend: QueryBackend {
    /// Insert `tuple` into `relation` in **every** world (set semantics: a
    /// world already containing the tuple is unchanged).
    fn insert_certain(
        &mut self,
        relation: &str,
        tuple: &Tuple,
    ) -> std::result::Result<(), Self::Error>;

    /// Insert `tuple` into `relation` with probability `prob`,
    /// independently of everything else: every world `w` splits into
    /// `w ∪ {t}` (mass `prob`) and `w` (mass `1 − prob`).
    ///
    /// `prob = 1` degenerates to [`WriteBackend::insert_certain`]; `prob = 0`
    /// is a no-op.  Backends that cannot represent the split (the
    /// single-world [`Database`]) reject fractional probabilities.
    fn insert_possible(
        &mut self,
        relation: &str,
        tuple: &Tuple,
        prob: f64,
    ) -> std::result::Result<(), Self::Error>;

    /// Delete, in every world, the tuples of `relation` satisfying `pred`.
    /// Deletion never removes worlds, so probabilities are untouched.
    fn delete_where(
        &mut self,
        relation: &str,
        pred: &Predicate,
    ) -> std::result::Result<(), Self::Error>;

    /// In every world, overwrite the assigned attributes of every tuple of
    /// `relation` satisfying `pred`.
    fn modify_where(
        &mut self,
        relation: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> std::result::Result<(), Self::Error>;

    /// Condition the store on integrity constraints: keep exactly the worlds
    /// satisfying every dependency, renormalize their probabilities, and
    /// return the satisfying mass `P(ψ)` of the *original* distribution.
    ///
    /// Fails with the backend's inconsistency error when no world survives
    /// (the store is left unchanged in that case on the single-world and
    /// explicit-worlds backends; decomposed backends may have partially
    /// chased — callers wanting transactional behavior should clone first).
    fn apply_condition(
        &mut self,
        constraints: &[crate::constraint::Dependency],
    ) -> std::result::Result<f64, Self::Error>;
}

/// Shared validation of an insert probability (used by every
/// [`WriteBackend`] implementation across the stack).
pub fn check_probability(prob: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&prob) || prob.is_nan() {
        return Err(RelationalError::Invalid(format!(
            "insert probability {prob} outside [0, 1]"
        )));
    }
    Ok(())
}

/// Shared validation of a modification's assignment values: the `⊥`/`?`
/// markers are reserved for the representations themselves and can never be
/// assigned (used by every [`WriteBackend`] implementation).
pub fn check_assignments(assignments: &[(String, Value)]) -> Result<()> {
    for (attr, value) in assignments {
        if matches!(value, Value::Bottom | Value::Unknown) {
            return Err(RelationalError::Invalid(format!(
                "assignment {attr} = {value}: the ⊥/? markers cannot be assigned"
            )));
        }
    }
    Ok(())
}

/// Shared validation of an inserted tuple: arity must match the schema and
/// the `⊥`/`?` markers are reserved for the representations themselves.
pub fn check_insertable(schema: &Schema, tuple: &Tuple) -> Result<()> {
    if tuple.arity() != schema.arity() {
        return Err(RelationalError::ArityMismatch {
            relation: schema.relation().to_string(),
            expected: schema.arity(),
            actual: tuple.arity(),
        });
    }
    if tuple.has_bottom() || tuple.has_unknown() {
        return Err(RelationalError::Invalid(
            "inserted tuples must not contain the ⊥/? markers".to_string(),
        ));
    }
    Ok(())
}

/// Generate a fresh scratch-relation name `__{hint}{n}` that does not clash
/// with any name for which `exists` returns true.
///
/// This is the one shared implementation of the scratch-name generators that
/// used to be copy-pasted across `ws_core::ops`, `ws_uwsdt::query` and
/// `ws_urel::ops`.
pub fn fresh_scratch_name(
    exists: impl Fn(&str) -> bool,
    counter: &mut usize,
    hint: &str,
) -> String {
    loop {
        let name = format!("__{hint}{}", *counter);
        *counter += 1;
        if !exists(&name) {
            return name;
        }
    }
}

/// The scratch-name allocator threaded through one plan execution.
///
/// Every name handed out is recorded so the executor can drop the scratch
/// relations afterwards — in particular on error paths, where the previous
/// per-crate translators leaked every intermediate created before the
/// failure.
#[derive(Debug, Default)]
pub struct TempNames {
    counter: usize,
    created: Vec<String>,
}

impl TempNames {
    /// An allocator starting at `__{hint}0`.
    pub fn new() -> Self {
        TempNames::default()
    }

    /// A fresh name that `exists` rejects; the name is recorded for cleanup.
    pub fn fresh(&mut self, exists: impl Fn(&str) -> bool, hint: &str) -> String {
        let name = fresh_scratch_name(exists, &mut self.counter, hint);
        self.created.push(name.clone());
        name
    }

    /// The scratch names handed out so far (in allocation order).
    pub fn created(&self) -> &[String] {
        &self.created
    }

    fn drain(&mut self) -> Vec<String> {
        std::mem::take(&mut self.created)
    }
}

/// The per-execution state threaded through every physical operator: the
/// scratch-name allocator plus the worker pool sized by
/// [`EngineConfig::threads`].
///
/// Backends without parallel operators simply ignore [`ExecContext::pool`];
/// backends that fan rows out (the single-world [`Database`] below) draw the
/// pool from here so one `EngineConfig` knob controls the whole pipeline.
#[derive(Debug, Default)]
pub struct ExecContext {
    temps: TempNames,
    pool: WorkerPool,
    /// The observation scope of this execution — the observer plus the
    /// session/request ids every instrumented operator stamps on its
    /// measurements.  Captured from the thread-local [`ws_obs::scope`]
    /// (installed by the session layer) only when [`EngineConfig::observe`]
    /// is set, so a non-observed run never touches the thread-local.
    obs: Option<ws_obs::Scope>,
}

impl ExecContext {
    /// A context for one plan execution under `config`.
    pub fn new(config: &EngineConfig) -> Self {
        ExecContext {
            temps: TempNames::new(),
            pool: WorkerPool::new(config.threads),
            obs: if config.observe {
                ws_obs::scope()
            } else {
                None
            },
        }
    }

    /// The observation scope propagated through this execution, when
    /// [`EngineConfig::observe`] is on and a session attached one.
    pub fn obs(&self) -> Option<&ws_obs::Scope> {
        self.obs.as_ref()
    }

    /// A fresh scratch name that `exists` rejects; recorded for cleanup.
    pub fn fresh(&mut self, exists: impl Fn(&str) -> bool, hint: &str) -> String {
        self.temps.fresh(exists, hint)
    }

    /// The worker pool operators fan row batches out on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The scratch names handed out so far (in allocation order).
    pub fn created(&self) -> &[String] {
        self.temps.created()
    }

    fn drain(&mut self) -> Vec<String> {
        self.temps.drain()
    }
}

/// Knobs of the unified pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Run the rule-based optimizer before execution (default).
    pub optimize: bool,
    /// Recognise `σ_{A=B}(L × R)` as a physical equi-join during execution
    /// (default).  [`EngineConfig::naive`] turns this off together with the
    /// optimizer so the plan is evaluated exactly as written, operator by
    /// operator — used by the cross-backend equivalence tests and by the
    /// optimizer-ablation bench as the true unoptimized baseline.
    pub recognize_joins: bool,
    /// Drop scratch relations after *successful* evaluation too.
    ///
    /// Safe for backends whose relations are self-contained (single-world
    /// databases, U-relations, explicit world-sets).  Component-sharing
    /// representations (WSD, UWSDT) keep their intermediates by default:
    /// projecting shared components away mid-stream may split local worlds
    /// and change world counts observed by callers.  Error paths always
    /// clean up regardless of this flag.
    pub drop_temps: bool,
    /// Worker threads for the parallel physical operators (default 1).
    ///
    /// `1` runs every operator serially on the calling thread, reproducing
    /// the exact behavior and tuple order of the pre-parallel engine; larger
    /// values hand contiguous row **morsels** out via
    /// [`crate::par::WorkerPool`] (dynamically scheduled, so stragglers
    /// don't serialize the batch) and re-concatenate the per-morsel results
    /// in morsel order, so results are identical (including order) for every
    /// thread count.  `0` is treated as 1.
    pub threads: usize,
    /// Dispatch to a backend's whole-plan vectorized executor
    /// ([`QueryBackend::execute_plan`]) when it has one (default).
    ///
    /// On the single-world [`Database`] backend this evaluates the plan over
    /// dictionary-encoded column batches with selection vectors
    /// ([`crate::batch`], [`crate::kernels`]) instead of row-at-a-time
    /// operators; results are bit-identical either way, which the
    /// equivalence suites check by running both settings.  Backends without
    /// a columnar executor ignore the flag.
    pub columnar: bool,
    /// Cache prepared plans keyed by their normalized fingerprint
    /// ([`crate::fingerprint::plan_key`]), so preparing the same query twice
    /// runs the optimizer once (default).  Honored by plan-caching layers
    /// (`maybms::Session`); the one-shot [`evaluate_query`] entry points
    /// below plan every call regardless.
    pub plan_cache: bool,
    /// Record per-operator timings, row counts and profile nodes into the
    /// thread-local [`ws_obs::Scope`] / [`ws_obs::profile`] collector while
    /// executing (default **off**).
    ///
    /// Instrumentation is observation only — it never changes which code
    /// runs, so results are bit-identical with the flag on or off (checked
    /// by `tests/observability_equivalence.rs`).  When off, the entire cost
    /// is this one branch per operator; the bench gate holds the observed
    /// path to ≤ 1.10× of the unobserved one.
    pub observe: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            optimize: true,
            recognize_joins: true,
            drop_temps: false,
            threads: 1,
            columnar: true,
            plan_cache: true,
            observe: false,
        }
    }
}

impl EngineConfig {
    /// The default pipeline with success-path scratch cleanup enabled.
    pub fn with_temp_cleanup() -> Self {
        EngineConfig {
            drop_temps: true,
            ..EngineConfig::default()
        }
    }

    /// The fully naive pipeline: no plan rewriting, no join recognition —
    /// every operator is executed exactly as written.
    pub fn naive() -> Self {
        EngineConfig {
            optimize: false,
            recognize_joins: false,
            ..EngineConfig::default()
        }
    }

    /// The default pipeline with `threads` parallel workers.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads: threads.max(1),
            ..EngineConfig::default()
        }
    }

    /// A one-line, self-describing summary of the effective settings, used
    /// by the benches so ablation output records its own configuration.
    pub fn summary(&self) -> String {
        fn on_off(b: bool) -> &'static str {
            if b {
                "on"
            } else {
                "off"
            }
        }
        format!(
            "optimize={} join-recognition={} drop-temps={} threads={} columnar={} plan-cache={} observe={}",
            on_off(self.optimize),
            on_off(self.recognize_joins),
            on_off(self.drop_temps),
            self.threads.max(1),
            on_off(self.columnar),
            on_off(self.plan_cache),
            on_off(self.observe),
        )
    }
}

/// Evaluate `query` on `backend` through the full `optimize → execute`
/// pipeline, materializing the result as relation `out`.  Returns `out`.
pub fn evaluate_query<B: QueryBackend>(
    backend: &mut B,
    query: &RaExpr,
    out: &str,
) -> std::result::Result<String, B::Error> {
    evaluate_query_with(backend, query, out, EngineConfig::default())
}

/// [`evaluate_query`] with explicit [`EngineConfig`] knobs.
pub fn evaluate_query_with<B: QueryBackend>(
    backend: &mut B,
    query: &RaExpr,
    out: &str,
    config: EngineConfig,
) -> std::result::Result<String, B::Error> {
    let plan = if config.optimize {
        optimizer::optimize(backend, query).map_err(B::Error::from)?
    } else {
        query.clone()
    };
    execute_with(backend, &plan, out, config)?;
    Ok(out.to_string())
}

/// Execute an already-planned expression on a backend (no optimization).
pub fn execute<B: QueryBackend>(
    backend: &mut B,
    plan: &RaExpr,
    out: &str,
) -> std::result::Result<(), B::Error> {
    execute_with(backend, plan, out, EngineConfig::default())
}

fn execute_with<B: QueryBackend>(
    backend: &mut B,
    plan: &RaExpr,
    out: &str,
    config: EngineConfig,
) -> std::result::Result<(), B::Error> {
    if config.columnar {
        // Whole-plan vectorized fast path: no scratch relations are created,
        // so there is nothing to clean up on either outcome.
        if let Some(result) = backend.execute_plan(plan, out, &config) {
            return result;
        }
    }
    let mut ctx = ExecContext::new(&config);
    let result = eval_node(backend, plan, out, &mut ctx, config);
    if result.is_err() || config.drop_temps {
        for name in ctx.drain() {
            backend.drop_scratch(&name);
        }
    }
    result
}

/// The profile/metrics label of a plan node's operator.
pub(crate) fn op_name(plan: &RaExpr) -> &'static str {
    match plan {
        RaExpr::Rel(_) => "scan",
        RaExpr::Select { .. } => "select",
        RaExpr::Project { .. } => "project",
        RaExpr::Product { .. } => "product",
        RaExpr::Union { .. } => "union",
        RaExpr::Difference { .. } => "difference",
        RaExpr::Rename { .. } => "rename",
    }
}

/// The operator detail shown in profiles (predicate, attribute list, …).
/// Only rendered when a profile collector is installed.
pub(crate) fn op_detail(plan: &RaExpr) -> String {
    match plan {
        RaExpr::Rel(name) => name.clone(),
        RaExpr::Select { pred, .. } => pred.to_string(),
        RaExpr::Project { attrs, .. } => attrs.join(", "),
        RaExpr::Rename { from, to, .. } => format!("{from}→{to}"),
        RaExpr::Product { .. } | RaExpr::Union { .. } | RaExpr::Difference { .. } => String::new(),
    }
}

/// One operator of the row-at-a-time path, wrapped in instrumentation when
/// [`EngineConfig::observe`] is on: a profile node (rows out via
/// [`QueryBackend::profile_rows`]) plus an `exec.op.<name>.ns` histogram
/// sample on the scope's observer.  With the flag off this is a single
/// branch in front of [`eval_node_inner`].
fn eval_node<B: QueryBackend>(
    backend: &mut B,
    plan: &RaExpr,
    out: &str,
    ctx: &mut ExecContext,
    config: EngineConfig,
) -> std::result::Result<(), B::Error> {
    if !config.observe {
        return eval_node_inner(backend, plan, out, ctx, config);
    }
    let token = ws_obs::profile::enter(op_name(plan), || op_detail(plan));
    let started = std::time::Instant::now();
    let result = eval_node_inner(backend, plan, out, ctx, config);
    if let Some(token) = token {
        let rows_out = match &result {
            Ok(()) => backend.profile_rows(out).unwrap_or(0),
            Err(_) => 0,
        };
        token.finish(rows_out, 1, "row");
    }
    if let Some(scope) = ctx.obs() {
        scope
            .observer
            .metrics()
            .histogram(&format!("exec.op.{}.ns", op_name(plan)))
            .record_duration(started.elapsed());
    }
    result
}

fn eval_node_inner<B: QueryBackend>(
    backend: &mut B,
    plan: &RaExpr,
    out: &str,
    ctx: &mut ExecContext,
    config: EngineConfig,
) -> std::result::Result<(), B::Error> {
    match plan {
        RaExpr::Rel(name) => {
            if !backend.contains_relation(name) {
                return Err(B::Error::from(RelationalError::UnknownRelation(
                    name.clone(),
                )));
            }
            backend.materialize_base(name, out)
        }
        RaExpr::Select { pred, input } => {
            // θ-join recognition: σ_{… A=B …}(L × R) with A, B spanning the
            // two operands becomes a physical equi-join.
            if let (true, RaExpr::Product { left, right }) =
                (config.recognize_joins, input.as_ref())
            {
                if let Some(join) =
                    recognize_equi_join(backend, pred, left, right).map_err(B::Error::from)?
                {
                    if config.observe {
                        if let Some(scope) = ctx.obs() {
                            scope
                                .observer
                                .metrics()
                                .counter("exec.join.recognized")
                                .inc();
                        }
                    }
                    let l = eval_operand(backend, left, ctx, config)?;
                    let r = eval_operand(backend, right, ctx, config)?;
                    return match join.residual {
                        None => backend.apply_equi_join(
                            &l,
                            &r,
                            &join.left_attr,
                            &join.right_attr,
                            out,
                            ctx,
                        ),
                        Some(residual) => {
                            let joined = ctx.fresh(|n| backend.contains_relation(n), "join");
                            backend.apply_equi_join(
                                &l,
                                &r,
                                &join.left_attr,
                                &join.right_attr,
                                &joined,
                                ctx,
                            )?;
                            backend.apply_select(&joined, &residual, out, ctx)
                        }
                    };
                }
            }
            let input_name = eval_operand(backend, input, ctx, config)?;
            backend.apply_select(&input_name, pred, out, ctx)
        }
        RaExpr::Project { attrs, input } => {
            let input_name = eval_operand(backend, input, ctx, config)?;
            backend.apply_project(&input_name, attrs, out, ctx)
        }
        RaExpr::Product { left, right } => {
            let l = eval_operand(backend, left, ctx, config)?;
            let r = eval_operand(backend, right, ctx, config)?;
            backend.apply_product(&l, &r, out, ctx)
        }
        RaExpr::Union { left, right } => {
            let l = eval_operand(backend, left, ctx, config)?;
            let r = eval_operand(backend, right, ctx, config)?;
            backend.apply_union(&l, &r, out)
        }
        RaExpr::Difference { left, right } => {
            let l = eval_operand(backend, left, ctx, config)?;
            let r = eval_operand(backend, right, ctx, config)?;
            backend.apply_difference(&l, &r, out)
        }
        RaExpr::Rename { from, to, input } => {
            let input_name = eval_operand(backend, input, ctx, config)?;
            backend.apply_rename(&input_name, from, to, out)
        }
    }
}

/// Evaluate an operand expression; base relations are used in place (no
/// copy), composite expressions are materialized under a scratch name.
fn eval_operand<B: QueryBackend>(
    backend: &mut B,
    expr: &RaExpr,
    ctx: &mut ExecContext,
    config: EngineConfig,
) -> std::result::Result<String, B::Error> {
    if let RaExpr::Rel(name) = expr {
        if !backend.contains_relation(name) {
            return Err(B::Error::from(RelationalError::UnknownRelation(
                name.clone(),
            )));
        }
        return Ok(name.clone());
    }
    let name = ctx.fresh(|n| backend.contains_relation(n), hint_for(expr));
    eval_node(backend, expr, &name, ctx, config)?;
    Ok(name)
}

fn hint_for(expr: &RaExpr) -> &'static str {
    match expr {
        RaExpr::Rel(_) => "rel",
        RaExpr::Select { .. } => "sel",
        RaExpr::Project { .. } => "proj",
        RaExpr::Product { .. } => "prod",
        RaExpr::Union { .. } => "union",
        RaExpr::Difference { .. } => "diff",
        RaExpr::Rename { .. } => "ren",
    }
}

/// A recognized equi-join: the oriented attribute pair plus whatever part of
/// the selection condition is not the join atom.
pub(crate) struct EquiJoin {
    pub(crate) left_attr: String,
    pub(crate) right_attr: String,
    pub(crate) residual: Option<Predicate>,
}

/// Detect `σ_{… A=B …}(L × R)` where `A` and `B` come from different
/// operands.  Returns `None` (fall back to product + selection) when no
/// top-level equality conjunct spans both sides.
pub(crate) fn recognize_equi_join<C: SchemaCatalog + ?Sized>(
    catalog: &C,
    pred: &Predicate,
    left: &RaExpr,
    right: &RaExpr,
) -> Result<Option<EquiJoin>> {
    let left_attrs = optimizer::output_attrs(catalog, left)?;
    let right_attrs = optimizer::output_attrs(catalog, right)?;
    let conjuncts = optimizer::conjuncts(pred);
    for (idx, conjunct) in conjuncts.iter().enumerate() {
        let Predicate::AttrAttr {
            left: a,
            op: CmpOp::Eq,
            right: b,
        } = conjunct
        else {
            continue;
        };
        let oriented = if left_attrs.contains(a) && right_attrs.contains(b) {
            Some((a.clone(), b.clone()))
        } else if left_attrs.contains(b) && right_attrs.contains(a) {
            Some((b.clone(), a.clone()))
        } else {
            None
        };
        let Some((left_attr, right_attr)) = oriented else {
            continue;
        };
        let rest: Vec<Predicate> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, p)| p.clone())
            .collect();
        let residual = if rest.is_empty() {
            None
        } else {
            Some(optimizer::conjunction(rest))
        };
        return Ok(Some(EquiJoin {
            left_attr,
            right_attr,
            residual,
        }));
    }
    Ok(None)
}

// ---------------------------------------------------------------------------
// The single-world backend: an ordinary `Database` of `Relation`s.
// ---------------------------------------------------------------------------

impl SchemaCatalog for Database {
    fn schema_of(&self, relation: &str) -> Result<Schema> {
        Ok(self.relation(relation)?.schema().clone())
    }

    fn contains_relation(&self, relation: &str) -> bool {
        Database::contains_relation(self, relation)
    }
}

impl Database {
    pub(crate) fn store_as(&mut self, mut relation: Relation, out: &str) {
        let renamed = relation.schema().renamed_relation(out);
        *relation.schema_mut() = renamed;
        self.insert_relation(relation);
    }
}

impl QueryBackend for Database {
    type Error = RelationalError;

    /// The vectorized columnar executor ([`crate::kernels`]): the whole plan
    /// evaluated over [`crate::batch::ColumnBatch`]es with selection vectors,
    /// bit-identical to the operator path below.  Bare `Rel` plans fall back
    /// to [`QueryBackend::materialize_base`] — a plain clone beats an
    /// encode/decode roundtrip.
    fn execute_plan(
        &mut self,
        plan: &RaExpr,
        out: &str,
        config: &EngineConfig,
    ) -> Option<Result<()>> {
        if matches!(plan, RaExpr::Rel(_)) {
            return None;
        }
        Some(crate::kernels::execute_columnar(self, plan, out, config))
    }

    /// Single-world relations have an exact, O(1) tuple count.
    fn profile_rows(&self, relation: &str) -> Option<u64> {
        self.relation(relation).ok().map(|r| r.len() as u64)
    }

    fn materialize_base(&mut self, name: &str, out: &str) -> Result<()> {
        let relation = self.relation(name)?.clone();
        self.store_as(relation, out);
        Ok(())
    }

    fn apply_select(
        &mut self,
        input: &str,
        pred: &Predicate,
        out: &str,
        ctx: &mut ExecContext,
    ) -> Result<()> {
        let rel = self.relation(input)?;
        let schema = rel.schema();
        let chunks = ctx.pool().map_chunks(rel.rows(), |_, chunk| {
            chunk
                .iter()
                .filter_map(|row| match pred.eval(schema, row) {
                    Ok(true) => Some(Ok(row.clone())),
                    Ok(false) => None,
                    Err(e) => Some(Err(e)),
                })
                .collect::<Result<Vec<Tuple>>>()
        });
        let mut rows = Vec::new();
        for chunk in chunks {
            rows.extend(chunk?);
        }
        let result = Relation::with_rows(schema.clone(), rows)?;
        self.store_as(result, out);
        Ok(())
    }

    fn apply_project(
        &mut self,
        input: &str,
        attrs: &[String],
        out: &str,
        ctx: &mut ExecContext,
    ) -> Result<()> {
        let rel = self.relation(input)?;
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let positions: Vec<usize> = attr_refs
            .iter()
            .map(|a| rel.schema().position_of(a))
            .collect::<Result<_>>()?;
        let schema = rel.schema().projected(&attr_refs)?;
        let rows = ctx
            .pool()
            .map(rel.rows(), |row| row.project_positions(&positions));
        let result = Relation::with_rows(schema, rows)?;
        self.store_as(result, out);
        Ok(())
    }

    fn apply_product(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
        ctx: &mut ExecContext,
    ) -> Result<()> {
        let l = self.relation(left)?;
        let r = self.relation(right)?;
        let schema = l.schema().product(r.schema(), out)?;
        let right_rows = r.rows();
        let rows = ctx.pool().flat_map(l.rows(), |lt| {
            right_rows.iter().map(|rt| lt.concat(rt)).collect()
        });
        let result = Relation::with_rows(schema, rows)?;
        self.store_as(result, out);
        Ok(())
    }

    /// Hash equi-join with a partitioned build and a parallel probe.
    ///
    /// The build phase hashes the right operand's join column chunk by chunk
    /// (each worker builds a partial table, merged in chunk order so the
    /// per-key row lists stay sorted by row index); the probe phase fans the
    /// left rows out and emits, per left row, the matching right rows in
    /// index order.  The output is therefore exactly the row order the
    /// product-then-select default produces — `⊥`/`?` join keys never match,
    /// mirroring [`CmpOp::eval`]'s undefined comparisons.
    fn apply_equi_join(
        &mut self,
        left: &str,
        right: &str,
        left_attr: &str,
        right_attr: &str,
        out: &str,
        ctx: &mut ExecContext,
    ) -> Result<()> {
        let l = self.relation(left)?;
        let r = self.relation(right)?;
        let schema = l.schema().product(r.schema(), out)?;
        let lpos = l.schema().position_of(left_attr)?;
        let rpos = r.schema().position_of(right_attr)?;

        // Build: partition the right rows, hash each chunk, merge in chunk
        // order (chunks are contiguous, so per-key row lists stay ascending).
        let joinable = |v: &Value| !matches!(v, Value::Bottom | Value::Unknown);
        let partials = ctx.pool().map_chunks(r.rows(), |offset, chunk| {
            let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, rt) in chunk.iter().enumerate() {
                if joinable(&rt[rpos]) {
                    table.entry(rt[rpos].clone()).or_default().push(offset + i);
                }
            }
            table
        });
        let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
        for partial in partials {
            for (key, indices) in partial {
                table.entry(key).or_default().extend(indices);
            }
        }

        // Probe: left rows in order; matches inherit the right rows' order.
        let right_rows = r.rows();
        let rows = ctx.pool().flat_map(l.rows(), |lt| {
            if !joinable(&lt[lpos]) {
                return Vec::new();
            }
            match table.get(&lt[lpos]) {
                Some(matches) => matches.iter().map(|&i| lt.concat(&right_rows[i])).collect(),
                None => Vec::new(),
            }
        });
        let result = Relation::with_rows(schema, rows)?;
        self.store_as(result, out);
        Ok(())
    }

    fn apply_union(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        let l = self.relation(left)?;
        let r = self.relation(right)?;
        l.schema().check_union_compatible(r.schema())?;
        let mut result = Relation::new(l.schema().clone());
        for row in l.rows().iter().chain(r.rows()) {
            result.push(row.clone())?;
        }
        result.dedup();
        self.store_as(result, out);
        Ok(())
    }

    fn apply_difference(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        let l = self.relation(left)?;
        let r = self.relation(right)?;
        l.schema().check_union_compatible(r.schema())?;
        let right_rows: std::collections::HashSet<&crate::tuple::Tuple> = r.rows().iter().collect();
        let mut result = Relation::new(l.schema().clone());
        for row in l.rows() {
            if !right_rows.contains(row) {
                result.push(row.clone())?;
            }
        }
        result.dedup();
        self.store_as(result, out);
        Ok(())
    }

    fn apply_rename(&mut self, input: &str, from: &str, to: &str, out: &str) -> Result<()> {
        let rel = self.relation(input)?;
        let schema = rel.schema().renamed_attr(from, to)?;
        let result = Relation::with_rows(schema, rel.rows().to_vec())?;
        self.store_as(result, out);
        Ok(())
    }

    fn drop_scratch(&mut self, name: &str) {
        let _ = self.remove_relation(name);
    }
}

impl WriteBackend for Database {
    fn insert_certain(&mut self, relation: &str, tuple: &Tuple) -> Result<()> {
        let rel = self.relation_mut(relation)?;
        check_insertable(rel.schema(), tuple)?;
        rel.insert(tuple.clone())?;
        Ok(())
    }

    fn insert_possible(&mut self, relation: &str, tuple: &Tuple, prob: f64) -> Result<()> {
        check_probability(prob)?;
        if prob <= 0.0 {
            // Validate the target anyway so a bad insert never succeeds
            // silently just because its probability is zero.
            check_insertable(self.relation(relation)?.schema(), tuple)?;
            return Ok(());
        }
        if prob >= 1.0 {
            return self.insert_certain(relation, tuple);
        }
        Err(RelationalError::Invalid(format!(
            "a single-world database cannot represent a possible insert with probability {prob}; \
             use a world-set backend or insert with probability 0 or 1"
        )))
    }

    fn delete_where(&mut self, relation: &str, pred: &Predicate) -> Result<()> {
        let rel = self.relation_mut(relation)?;
        let schema = rel.schema().clone();
        let keep: Vec<bool> = rel
            .rows()
            .iter()
            .map(|row| pred.eval(&schema, row).map(|m| !m))
            .collect::<Result<_>>()?;
        let mut it = keep.into_iter();
        rel.retain(|_| it.next().unwrap_or(true));
        Ok(())
    }

    fn modify_where(
        &mut self,
        relation: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<()> {
        check_assignments(assignments)?;
        let rel = self.relation_mut(relation)?;
        let schema = rel.schema().clone();
        let positions: Vec<(usize, &Value)> = assignments
            .iter()
            .map(|(attr, value)| Ok((schema.position_of(attr)?, value)))
            .collect::<Result<_>>()?;
        let matches: Vec<bool> = rel
            .rows()
            .iter()
            .map(|row| pred.eval(&schema, row))
            .collect::<Result<_>>()?;
        for (row, matched) in rel.rows_mut().iter_mut().zip(matches) {
            if matched {
                for &(pos, value) in &positions {
                    row.set(pos, value.clone());
                }
            }
        }
        rel.dedup();
        Ok(())
    }

    fn apply_condition(&mut self, constraints: &[crate::constraint::Dependency]) -> Result<f64> {
        for dep in constraints {
            if !crate::constraint::world_satisfies(self, dep)? {
                return Err(RelationalError::Inconsistent);
            }
        }
        // The one world satisfies ψ, so P(ψ) = 1 and nothing changes.
        Ok(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::evaluate_set;
    use crate::predicate::CmpOp;
    use crate::schema::Schema;

    fn db() -> Database {
        let mut d = Database::new();
        let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        for (a, b) in [(1i64, 10i64), (2, 20), (3, 10), (4, 30)] {
            r.push_values([a, b]).unwrap();
        }
        d.insert_relation(r);
        let mut s = Relation::new(Schema::new("S", &["C", "D"]).unwrap());
        for (c, d_) in [(10i64, 7i64), (20, 8), (99, 9)] {
            s.push_values([c, d_]).unwrap();
        }
        d.insert_relation(s);
        d
    }

    fn query_suite() -> Vec<RaExpr> {
        vec![
            RaExpr::rel("R"),
            RaExpr::rel("R").select(Predicate::eq_const("B", 10i64)),
            RaExpr::rel("R")
                .join(RaExpr::rel("S"), Predicate::cmp_attr("B", CmpOp::Eq, "C"))
                .project(vec!["A", "D"]),
            RaExpr::rel("R")
                .product(RaExpr::rel("S"))
                .select(Predicate::and(vec![
                    Predicate::cmp_attr("C", CmpOp::Eq, "B"),
                    Predicate::cmp_const("A", CmpOp::Gt, 1i64),
                ])),
            RaExpr::rel("R")
                .project(vec!["B"])
                .union(RaExpr::rel("S").rename("C", "B").project(vec!["B"])),
            RaExpr::rel("R")
                .project(vec!["B"])
                .difference(RaExpr::rel("S").rename("C", "B").project(vec!["B"])),
            RaExpr::rel("R")
                .rename("A", "A2")
                .select(Predicate::cmp_const("A2", CmpOp::Ge, 3i64)),
        ]
    }

    #[test]
    fn engine_matches_the_reference_evaluator_on_databases() {
        for (i, query) in query_suite().into_iter().enumerate() {
            let reference = evaluate_set(&db(), &query).unwrap();
            for config in [
                EngineConfig::default(),
                EngineConfig::naive(),
                EngineConfig::with_temp_cleanup(),
            ] {
                let mut backend = db();
                let out = evaluate_query_with(&mut backend, &query, "OUT", config).unwrap();
                let mut result = backend.relation(&out).unwrap().clone();
                result.dedup();
                assert!(
                    reference.set_eq(&result),
                    "query #{i} {query}: {reference} vs {result} (config {config:?})"
                );
            }
        }
    }

    #[test]
    fn temp_cleanup_leaves_only_base_relations_and_the_result() {
        let mut backend = db();
        let query = query_suite().remove(3);
        evaluate_query_with(
            &mut backend,
            &query,
            "OUT",
            EngineConfig::with_temp_cleanup(),
        )
        .unwrap();
        let mut names = backend.relation_names();
        names.sort_unstable();
        assert_eq!(names, vec!["OUT", "R", "S"]);
    }

    #[test]
    fn scratch_relations_are_dropped_on_error() {
        let mut backend = db();
        // The union is incompatible (arity 1 vs 2) and fails *after* both
        // operands have been materialized as scratch relations.
        let query = RaExpr::rel("R")
            .project(vec!["A"])
            .union(RaExpr::rel("S").select(Predicate::eq_const("C", 10i64)));
        let before = backend.relation_names().len();
        assert!(evaluate_query_with(&mut backend, &query, "OUT", EngineConfig::naive()).is_err());
        assert_eq!(backend.relation_names().len(), before, "no leaked scratch");
    }

    #[test]
    fn unknown_relations_are_reported() {
        let mut backend = db();
        let err = evaluate_query(&mut backend, &RaExpr::rel("NOPE"), "OUT");
        assert!(matches!(err, Err(RelationalError::UnknownRelation(_))));
    }

    #[test]
    fn equi_join_recognition_orients_and_splits_residuals() {
        let backend = db();
        let pred = Predicate::and(vec![
            Predicate::cmp_const("A", CmpOp::Gt, 0i64),
            Predicate::cmp_attr("C", CmpOp::Eq, "B"),
        ]);
        let join = recognize_equi_join(&backend, &pred, &RaExpr::rel("R"), &RaExpr::rel("S"))
            .unwrap()
            .expect("join recognized");
        assert_eq!(
            (join.left_attr.as_str(), join.right_attr.as_str()),
            ("B", "C")
        );
        assert!(join.residual.is_some());

        // A same-side equality is not a join condition.
        let local = Predicate::cmp_attr("A", CmpOp::Eq, "B");
        assert!(
            recognize_equi_join(&backend, &local, &RaExpr::rel("R"), &RaExpr::rel("S"))
                .unwrap()
                .is_none()
        );
    }

    /// A database large enough that the fine-grained chunking floor is
    /// actually crossed and real worker threads are spawned.
    fn big_db() -> Database {
        let mut d = Database::new();
        let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        for i in 0..500i64 {
            r.push_values([i, i % 17]).unwrap();
        }
        d.insert_relation(r);
        let mut s = Relation::new(Schema::new("S", &["C", "D"]).unwrap());
        for i in 0..300i64 {
            s.push_values([i % 17, i]).unwrap();
        }
        d.insert_relation(s);
        d
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_serial() {
        let queries = {
            let mut qs = query_suite();
            // A join large enough to exercise the parallel build/probe.
            qs.push(
                RaExpr::rel("R")
                    .join(RaExpr::rel("S"), Predicate::cmp_attr("B", CmpOp::Eq, "C"))
                    .select(Predicate::cmp_const("A", CmpOp::Lt, 400i64))
                    .project(vec!["A", "D"]),
            );
            qs
        };
        for (i, query) in queries.into_iter().enumerate() {
            let mut serial = big_db();
            let out =
                evaluate_query_with(&mut serial, &query, "OUT", EngineConfig::default()).unwrap();
            let serial_rows = serial.relation(&out).unwrap().rows().to_vec();
            for threads in [2usize, 4, 8] {
                let mut parallel = big_db();
                let config = EngineConfig::with_threads(threads);
                let out = evaluate_query_with(&mut parallel, &query, "OUT", config).unwrap();
                assert_eq!(
                    parallel.relation(&out).unwrap().rows(),
                    &serial_rows[..],
                    "query #{i} {query}: rows (or their order) differ at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn hash_join_matches_product_plus_selection_order() {
        // The recognized-join path (hash join) must produce exactly the rows
        // and row order of the naive product-then-select path.
        let query = RaExpr::rel("R")
            .product(RaExpr::rel("S"))
            .select(Predicate::cmp_attr("B", CmpOp::Eq, "C"));
        let mut naive = big_db();
        let out = evaluate_query_with(&mut naive, &query, "OUT", EngineConfig::naive()).unwrap();
        let naive_rows = naive.relation(&out).unwrap().rows().to_vec();
        assert!(!naive_rows.is_empty());

        let mut joined = big_db();
        let out = evaluate_query_with(&mut joined, &query, "OUT", EngineConfig::default()).unwrap();
        assert_eq!(joined.relation(&out).unwrap().rows(), &naive_rows[..]);
    }

    #[test]
    fn hash_join_never_matches_undefined_keys() {
        // ⊥ and ? compare as undefined (CmpOp::eval → false), so they must
        // not join — not even with themselves.
        let mut d = Database::new();
        let mut r = Relation::new(Schema::new("R", &["A"]).unwrap());
        r.push(Tuple::new(vec![Value::Bottom])).unwrap();
        r.push(Tuple::new(vec![Value::Unknown])).unwrap();
        r.push(Tuple::new(vec![Value::int(1)])).unwrap();
        d.insert_relation(r);
        let mut s = Relation::new(Schema::new("S", &["B"]).unwrap());
        s.push(Tuple::new(vec![Value::Bottom])).unwrap();
        s.push(Tuple::new(vec![Value::Unknown])).unwrap();
        s.push(Tuple::new(vec![Value::int(1)])).unwrap();
        d.insert_relation(s);
        let query =
            RaExpr::rel("R").join(RaExpr::rel("S"), Predicate::cmp_attr("A", CmpOp::Eq, "B"));
        for config in [EngineConfig::default(), EngineConfig::naive()] {
            let mut backend = d.clone();
            let out = evaluate_query_with(&mut backend, &query, "OUT", config).unwrap();
            let rows = backend.relation(&out).unwrap().rows().to_vec();
            assert_eq!(
                rows,
                vec![Tuple::new(vec![Value::int(1), Value::int(1)])],
                "config {config:?}"
            );
        }
    }

    #[test]
    fn engine_config_summary_is_self_describing() {
        assert_eq!(
            EngineConfig::default().summary(),
            "optimize=on join-recognition=on drop-temps=off threads=1 columnar=on \
             plan-cache=on observe=off"
        );
        assert_eq!(
            EngineConfig::naive().summary(),
            "optimize=off join-recognition=off drop-temps=off threads=1 columnar=on \
             plan-cache=on observe=off"
        );
        let parallel = EngineConfig::with_threads(8);
        assert!(parallel.summary().contains("threads=8"));
        assert_eq!(EngineConfig::with_threads(0).threads, 1);
        let uncached = EngineConfig {
            plan_cache: false,
            ..EngineConfig::default()
        };
        assert!(uncached.summary().contains("plan-cache=off"));
        let observed = EngineConfig {
            observe: true,
            ..EngineConfig::default()
        };
        assert!(observed.summary().ends_with("observe=on"));
    }

    #[test]
    fn database_write_backend_applies_per_world_semantics() {
        use crate::constraint::{Dependency, FunctionalDependency};
        let mut d = db();
        d.insert_certain("R", &Tuple::from_iter([9i64, 90]))
            .unwrap();
        assert!(d
            .relation("R")
            .unwrap()
            .contains(&Tuple::from_iter([9i64, 90])));
        // Set semantics: inserting again changes nothing.
        let before = d.relation("R").unwrap().len();
        d.insert_certain("R", &Tuple::from_iter([9i64, 90]))
            .unwrap();
        assert_eq!(d.relation("R").unwrap().len(), before);
        // Degenerate possible inserts work; fractional ones cannot be
        // represented by a single world.
        d.insert_possible("R", &Tuple::from_iter([8i64, 80]), 1.0)
            .unwrap();
        d.insert_possible("R", &Tuple::from_iter([7i64, 70]), 0.0)
            .unwrap();
        assert!(!d
            .relation("R")
            .unwrap()
            .contains(&Tuple::from_iter([7i64, 70])));
        assert!(d
            .insert_possible("R", &Tuple::from_iter([7i64, 70]), 0.5)
            .is_err());
        assert!(d
            .insert_possible("R", &Tuple::from_iter([7i64, 70]), 1.5)
            .is_err());
        assert!(
            d.insert_certain("R", &Tuple::from_iter([7i64])).is_err(),
            "arity mismatch"
        );
        assert!(
            d.insert_certain("R", &Tuple::new(vec![Value::Bottom, Value::int(0)]))
                .is_err(),
            "⊥ is reserved"
        );
        // Modify then delete.
        d.modify_where(
            "R",
            &Predicate::eq_const("A", 9i64),
            &[("B".to_string(), Value::int(33))],
        )
        .unwrap();
        assert!(d
            .relation("R")
            .unwrap()
            .contains(&Tuple::from_iter([9i64, 33])));
        d.delete_where("R", &Predicate::cmp_const("A", CmpOp::Ge, 8i64))
            .unwrap();
        assert!(!d
            .relation("R")
            .unwrap()
            .contains(&Tuple::from_iter([9i64, 33])));
        assert!(d
            .modify_where("R", &Predicate::eq_const("Z", 1i64), &[])
            .is_err());
        assert!(
            d.modify_where(
                "R",
                &Predicate::eq_const("A", 1i64),
                &[("B".to_string(), Value::Bottom)],
            )
            .is_err(),
            "⊥ can never be assigned"
        );
        // Conditioning on a satisfied constraint is a mass-1 no-op; on a
        // violated one it reports inconsistency.
        let key = Dependency::Fd(FunctionalDependency::new("R", vec!["A"], vec!["B"]));
        assert_eq!(d.apply_condition(std::slice::from_ref(&key)).unwrap(), 1.0);
        d.insert_certain("R", &Tuple::from_iter([1i64, 99]))
            .unwrap();
        assert!(matches!(
            d.apply_condition(&[key]),
            Err(RelationalError::Inconsistent)
        ));
    }

    #[test]
    fn fresh_scratch_names_skip_existing_relations() {
        let mut counter = 0;
        let taken = ["__t0".to_string(), "__t1".to_string()];
        let name = fresh_scratch_name(|n| taken.contains(&n.to_string()), &mut counter, "t");
        assert_eq!(name, "__t2");
        let mut temps = TempNames::new();
        let a = temps.fresh(|_| false, "q");
        let b = temps.fresh(|_| false, "q");
        assert_ne!(a, b);
        assert_eq!(temps.created(), &[a, b]);
    }
}
