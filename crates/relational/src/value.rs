//! Typed values stored in tuple fields.
//!
//! Besides ordinary constants the paper's representations need two special
//! markers:
//!
//! * `⊥` ([`Value::Bottom`]) — used inside world-set relations and WSD
//!   components to mark a field of a *deleted/absent* tuple (§3: "any tuple
//!   that has at least one symbol ⊥ is a t⊥ tuple").
//! * `?` ([`Value::Unknown`]) — used inside template relations of WSDTs and
//!   UWSDTs as a placeholder for a field on which the possible worlds
//!   disagree (§3, "Adding Template Relations").

use std::fmt;
use std::sync::Arc;

/// A single field value.
///
/// Probabilities are *not* values: component-tuple probabilities are stored
/// separately (as `f64`) so that `Value` can stay `Eq + Ord + Hash`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The `⊥` marker: this field belongs to a tuple that is absent in the
    /// worlds described by the enclosing component tuple.
    Bottom,
    /// The `?` placeholder used in template relations: the possible worlds
    /// disagree on this field; the component relations define its values.
    Unknown,
    /// A boolean constant.
    Bool(bool),
    /// A 64-bit signed integer constant.  All census attributes are coded as
    /// small integers, as in the IPUMS extract used by the paper.
    Int(i64),
    /// A string constant (cheaply cloneable).
    Text(Arc<str>),
}

impl Value {
    /// Build a text value from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns `true` iff this is the `⊥` marker.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Value::Bottom)
    }

    /// Returns `true` iff this is the `?` template placeholder.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Value::Unknown)
    }

    /// Returns `true` iff this is an ordinary constant (neither `⊥` nor `?`).
    pub fn is_constant(&self) -> bool {
        !self.is_bottom() && !self.is_unknown()
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text payload, if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compare two values with the comparison semantics used by selections.
    ///
    /// Comparisons involving `⊥` or `?` are *undefined* and return `None`;
    /// the world-set operators never compare against these markers directly
    /// (they test for them explicitly first).  Comparisons between values of
    /// different runtime types are also undefined.
    pub fn partial_cmp_sql(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Bottom, _) | (_, Bottom) | (Unknown, _) | (_, Unknown) => None,
            (Bool(a), Bool(b)) => a.partial_cmp(b),
            (Int(a), Int(b)) => a.partial_cmp(b),
            (Text(a), Text(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bottom => write!(f, "⊥"),
            Value::Unknown => write!(f, "?"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("abc"), Value::text("abc"));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(String::from("s")), Value::text("s"));
    }

    #[test]
    fn bottom_and_unknown_markers() {
        assert!(Value::Bottom.is_bottom());
        assert!(!Value::Bottom.is_constant());
        assert!(Value::Unknown.is_unknown());
        assert!(!Value::Unknown.is_constant());
        assert!(Value::int(1).is_constant());
    }

    #[test]
    fn sql_comparison_defined_only_on_same_typed_constants() {
        assert_eq!(
            Value::int(1).partial_cmp_sql(&Value::int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::text("b").partial_cmp_sql(&Value::text("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::int(1).partial_cmp_sql(&Value::text("1")), None);
        assert_eq!(Value::Bottom.partial_cmp_sql(&Value::int(1)), None);
        assert_eq!(Value::Unknown.partial_cmp_sql(&Value::Unknown), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bottom.to_string(), "⊥");
        assert_eq!(Value::Unknown.to_string(), "?");
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::text("Smith").to_string(), "Smith");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn ordering_is_total_for_collection_use() {
        // Values are used as BTreeMap/BTreeSet keys; Ord must be total.
        let mut vals = vec![
            Value::text("z"),
            Value::int(5),
            Value::Bottom,
            Value::Unknown,
            Value::Bool(true),
        ];
        vals.sort();
        // Sorting twice gives the same order (total, deterministic).
        let again = {
            let mut v = vals.clone();
            v.sort();
            v
        };
        assert_eq!(vals, again);
    }
}
