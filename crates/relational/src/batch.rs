//! Columnar batches: the vectorized executor's in-flight representation.
//!
//! MayBMS inherited vectorizable, column-sliceable execution for free by
//! compiling U-relational queries onto PostgreSQL; our native engine gets the
//! same effect with [`ColumnBatch`]: a relation's rows transposed into flat,
//! type-specialized columns that the kernels in [`crate::kernels`] stream
//! over with selection vectors instead of `Tuple` clones.
//!
//! Layout:
//!
//! * a column whose values are all [`Value::Int`] is stored as a flat
//!   `Vec<i64>` ([`Column::Int`]) — the census workload is entirely in this
//!   fast path;
//! * any other column is **dictionary-encoded** ([`Column::Dict`]): distinct
//!   values (including the `⊥`/`?` markers and interned strings, which are
//!   `Arc<str>` and cheap to hold) are assigned dense `u32` codes in order of
//!   first appearance, and the column stores one code per row.  Predicates
//!   over dictionary columns evaluate once per *distinct value* instead of
//!   once per row.
//!
//! A batch carries the **full logical schema** of its expression while
//! physically holding only the columns downstream operators will touch
//! (`cols[i] = None` for pruned attributes).  This keeps schema-level errors
//! (unknown attributes, duplicate product attributes, union compatibility)
//! byte-identical to the row-at-a-time operators while letting leaf scans
//! skip encoding untouched columns.  [`Relation`]/[`Tuple`] remain the
//! materialization boundary: batches exist only inside one plan execution.

use crate::error::Result;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// One encoded column of a [`ColumnBatch`].
#[derive(Clone, Debug)]
pub enum Column {
    /// A column whose every value is [`Value::Int`], stored flat.
    Int(Vec<i64>),
    /// A dictionary-encoded column: `codes[row]` indexes into `dict`, which
    /// lists the distinct values in order of first appearance.
    Dict {
        /// One dense dictionary code per row.
        codes: Vec<u32>,
        /// The distinct values, indexed by code.
        dict: Vec<Value>,
    },
}

impl Column {
    /// Encode one attribute of `rows` (the values at `pos`).
    ///
    /// Tries the flat-integer fast path first and falls back to dictionary
    /// encoding on the first non-`Int` value.
    pub fn encode(rows: &[Tuple], pos: usize) -> Column {
        Column::encode_values(rows.iter().map(|row| &row[pos]))
    }

    /// [`Column::encode`] restricted to the rows listed in `sel`, in `sel`
    /// order — the late-materialization path: encode a filtered base
    /// relation's column without ever materializing the filtered rows.
    pub fn encode_sel(rows: &[Tuple], pos: usize, sel: &[u32]) -> Column {
        Column::encode_values(sel.iter().map(|&i| &rows[i as usize][pos]))
    }

    fn encode_values<'a, I>(values: I) -> Column
    where
        I: Iterator<Item = &'a Value> + Clone,
    {
        let (lower, _) = values.size_hint();
        let mut ints = Vec::with_capacity(lower);
        for value in values.clone() {
            match value {
                Value::Int(i) => ints.push(*i),
                _ => return Column::encode_dict_values(values),
            }
        }
        Column::Int(ints)
    }

    fn encode_dict_values<'a, I>(values: I) -> Column
    where
        I: Iterator<Item = &'a Value>,
    {
        let (lower, _) = values.size_hint();
        let mut codes = Vec::with_capacity(lower);
        let mut dict: Vec<Value> = Vec::new();
        let mut seen: HashMap<Value, u32> = HashMap::new();
        for value in values {
            let code = match seen.get(value) {
                Some(&code) => code,
                None => {
                    let code = u32::try_from(dict.len()).expect("dictionary exceeds u32 codes");
                    seen.insert(value.clone(), code);
                    dict.push(value.clone());
                    code
                }
            };
            codes.push(code);
        }
        Column::Dict { codes, dict }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The decoded value of one row (clones are cheap: ints are `Copy`,
    /// text is `Arc<str>`).
    pub fn value_at(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Dict { codes, dict } => dict[codes[row] as usize].clone(),
        }
    }

    /// Keep only the rows listed in `sel` (ascending), in `sel` order.
    pub fn gather(&self, sel: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Dict { codes, dict } => Column::Dict {
                codes: sel.iter().map(|&i| codes[i as usize]).collect(),
                dict: dict.clone(),
            },
        }
    }

    /// The column of a product's **left** operand: every value repeated
    /// `times` consecutive rows (left-major order).
    pub fn repeat_each(&self, times: usize) -> Column {
        match self {
            Column::Int(v) => {
                let mut out = Vec::with_capacity(v.len() * times);
                for &x in v {
                    out.resize(out.len() + times, x);
                }
                Column::Int(out)
            }
            Column::Dict { codes, dict } => {
                let mut out = Vec::with_capacity(codes.len() * times);
                for &c in codes {
                    out.resize(out.len() + times, c);
                }
                Column::Dict {
                    codes: out,
                    dict: dict.clone(),
                }
            }
        }
    }

    /// The column of a product's **right** operand: the whole column tiled
    /// `times` times (left-major order).
    pub fn tile(&self, times: usize) -> Column {
        match self {
            Column::Int(v) => {
                let mut out = Vec::with_capacity(v.len() * times);
                for _ in 0..times {
                    out.extend_from_slice(v);
                }
                Column::Int(out)
            }
            Column::Dict { codes, dict } => {
                let mut out = Vec::with_capacity(codes.len() * times);
                for _ in 0..times {
                    out.extend_from_slice(codes);
                }
                Column::Dict {
                    codes: out,
                    dict: dict.clone(),
                }
            }
        }
    }
}

/// A batch: the full logical schema of one (sub-)expression plus the encoded
/// columns the rest of the plan actually reads (`None` = pruned).
#[derive(Clone, Debug)]
pub struct ColumnBatch {
    schema: Schema,
    cols: Vec<Option<Column>>,
    len: usize,
}

impl ColumnBatch {
    /// Encode `relation`, materializing only the attributes in `needed`
    /// (all of them when `needed` is `None`).  The batch keeps the full
    /// schema either way, so downstream schema checks see every attribute.
    pub fn from_relation(
        relation: &Relation,
        needed: Option<&std::collections::BTreeSet<String>>,
    ) -> ColumnBatch {
        let schema = relation.schema().clone();
        let rows = relation.rows();
        let cols = schema
            .attrs()
            .iter()
            .enumerate()
            .map(|(pos, attr)| match needed {
                Some(set) if !set.contains(attr.as_ref()) => None,
                _ => Some(Column::encode(rows, pos)),
            })
            .collect();
        ColumnBatch {
            schema,
            cols,
            len: rows.len(),
        }
    }

    /// [`ColumnBatch::from_relation`] restricted to the rows listed in `sel`
    /// (in `sel` order): encodes each needed column straight off the filtered
    /// base rows, skipping the unfiltered encode + gather roundtrip.
    pub fn from_relation_sel(
        relation: &Relation,
        sel: &[u32],
        needed: Option<&std::collections::BTreeSet<String>>,
    ) -> ColumnBatch {
        let schema = relation.schema().clone();
        let rows = relation.rows();
        let cols = schema
            .attrs()
            .iter()
            .enumerate()
            .map(|(pos, attr)| match needed {
                Some(set) if !set.contains(attr.as_ref()) => None,
                _ => Some(Column::encode_sel(rows, pos, sel)),
            })
            .collect();
        ColumnBatch {
            schema,
            cols,
            len: sel.len(),
        }
    }

    /// A batch from parts; every present column must have `len` rows.
    pub fn from_parts(schema: Schema, cols: Vec<Option<Column>>, len: usize) -> ColumnBatch {
        debug_assert_eq!(schema.arity(), cols.len());
        debug_assert!(cols.iter().flatten().all(|c| { c.len() == len }));
        ColumnBatch { schema, cols, len }
    }

    /// The full logical schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The physically present columns (one slot per schema attribute).
    pub fn cols(&self) -> &[Option<Column>] {
        &self.cols
    }

    /// The column at `pos`; panics if it was pruned (the executor's
    /// needed-attribute propagation guarantees referenced columns are
    /// present).
    pub fn col(&self, pos: usize) -> &Column {
        self.cols[pos]
            .as_ref()
            .expect("column pruned away but referenced by a kernel")
    }

    /// Consume the batch, returning its column slots.
    pub fn into_cols(self) -> Vec<Option<Column>> {
        self.cols
    }

    /// Keep only the rows listed in `sel` (ascending), in `sel` order.
    pub fn gather(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch {
            schema: self.schema.clone(),
            cols: self
                .cols
                .iter()
                .map(|c| c.as_ref().map(|col| col.gather(sel)))
                .collect(),
            len: sel.len(),
        }
    }

    /// Decode into tuples, in row order.  All columns must be present.
    pub fn decode_rows(&self) -> Vec<Tuple> {
        let cols: Vec<&Column> = (0..self.cols.len()).map(|i| self.col(i)).collect();
        (0..self.len)
            .map(|row| Tuple::new(cols.iter().map(|c| c.value_at(row)).collect()))
            .collect()
    }

    /// Materialize as a [`Relation`] (the engine's row-level boundary).
    pub fn into_relation(self) -> Result<Relation> {
        let rows = self.decode_rows();
        Relation::with_rows(self.schema, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn relation() -> Relation {
        let schema = Schema::new("R", &["A", "B", "C"]).unwrap();
        let rows = vec![
            Tuple::new(vec![Value::int(1), Value::text("x"), Value::int(10)]),
            Tuple::new(vec![Value::int(2), Value::text("y"), Value::int(20)]),
            Tuple::new(vec![Value::int(3), Value::text("x"), Value::int(30)]),
        ];
        Relation::with_rows(schema, rows).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rel = relation();
        let batch = ColumnBatch::from_relation(&rel, None);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert!(matches!(batch.col(0), Column::Int(_)));
        // The text column dictionary-encodes with first-appearance codes.
        match batch.col(1) {
            Column::Dict { codes, dict } => {
                assert_eq!(codes, &[0, 1, 0]);
                assert_eq!(dict.len(), 2);
            }
            c => panic!("expected dict column, got {c:?}"),
        }
        let roundtrip = batch.into_relation().unwrap();
        assert_eq!(roundtrip.rows(), rel.rows());
    }

    #[test]
    fn pruned_columns_are_absent_but_schema_is_full() {
        let rel = relation();
        let needed: BTreeSet<String> = ["A".to_string()].into();
        let batch = ColumnBatch::from_relation(&rel, Some(&needed));
        assert_eq!(batch.schema().arity(), 3);
        assert!(batch.cols()[0].is_some());
        assert!(batch.cols()[1].is_none());
        assert!(batch.cols()[2].is_none());
    }

    #[test]
    fn gather_repeat_and_tile_preserve_order() {
        let rel = relation();
        let batch = ColumnBatch::from_relation(&rel, None);
        let picked = batch.gather(&[2, 0]);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked.col(0).value_at(0), Value::int(3));
        assert_eq!(picked.col(0).value_at(1), Value::int(1));
        assert_eq!(picked.col(1).value_at(0), Value::text("x"));

        let left = batch.col(0).repeat_each(2);
        assert_eq!(left.len(), 6);
        assert_eq!(left.value_at(0), Value::int(1));
        assert_eq!(left.value_at(1), Value::int(1));
        assert_eq!(left.value_at(2), Value::int(2));

        let right = batch.col(1).tile(2);
        assert_eq!(right.len(), 6);
        assert_eq!(right.value_at(3), Value::text("x"));
        assert!(!right.is_empty());
    }

    #[test]
    fn markers_and_mixed_types_dictionary_encode() {
        let schema = Schema::new("S", &["X"]).unwrap();
        let rows = vec![
            Tuple::new(vec![Value::int(1)]),
            Tuple::new(vec![Value::Bottom]),
            Tuple::new(vec![Value::Unknown]),
            Tuple::new(vec![Value::int(1)]),
        ];
        let rel = Relation::with_rows(schema, rows.clone()).unwrap();
        let batch = ColumnBatch::from_relation(&rel, None);
        assert!(matches!(batch.col(0), Column::Dict { .. }));
        assert_eq!(batch.decode_rows(), rows);
    }
}
