//! Selection predicates.
//!
//! The paper's selections are of the form `σ_{AθB}` or `σ_{Aθc}` where `θ` is
//! one of `=, ≠, <, ≤, >, ≥` (§4).  For convenience the single-world evaluator
//! also supports conjunction, disjunction and negation so that the census
//! queries Q1–Q6 (Fig. 29), which use composite conditions, can be expressed
//! as a single selection node.

use crate::error::Result;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A comparison operator `θ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Evaluate `left θ right`.
    ///
    /// Comparisons involving `⊥`/`?` or mixed types are undefined and yield
    /// `false` (no world-set operator relies on comparing these markers).
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        use std::cmp::Ordering::*;
        match left.partial_cmp_sql(right) {
            None => false,
            Some(ord) => match self {
                CmpOp::Eq => ord == Equal,
                CmpOp::Ne => ord != Equal,
                CmpOp::Lt => ord == Less,
                CmpOp::Le => ord != Greater,
                CmpOp::Gt => ord == Greater,
                CmpOp::Ge => ord != Less,
            },
        }
    }

    /// [`CmpOp::eval`] specialized to two defined integers — the kernels'
    /// branch-free inner-loop comparison.
    #[inline]
    pub fn eval_i64(self, left: i64, right: i64) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }

    /// The negated operator (`¬(a θ b)  ⇔  a θ̄ b` on defined comparisons).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean predicate over the attributes of one tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// `A θ c` — attribute compared with a constant.
    AttrConst {
        /// The attribute name `A`.
        attr: String,
        /// The comparison operator `θ`.
        op: CmpOp,
        /// The constant `c`.
        value: Value,
    },
    /// `A θ B` — two attributes of the same tuple compared.
    AttrAttr {
        /// The left attribute `A`.
        left: String,
        /// The comparison operator `θ`.
        op: CmpOp,
        /// The right attribute `B`.
        right: String,
    },
    /// Conjunction of sub-predicates (empty conjunction is `true`).
    And(Vec<Predicate>),
    /// Disjunction of sub-predicates (empty disjunction is `false`).
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `A = c` shorthand.
    pub fn eq_const(attr: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::AttrConst {
            attr: attr.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `A θ c` shorthand.
    pub fn cmp_const(attr: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::AttrConst {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// `A θ B` shorthand.
    pub fn cmp_attr(left: impl Into<String>, op: CmpOp, right: impl Into<String>) -> Predicate {
        Predicate::AttrAttr {
            left: left.into(),
            op,
            right: right.into(),
        }
    }

    /// Conjunction helper.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        Predicate::And(preds)
    }

    /// Disjunction helper.
    pub fn or(preds: Vec<Predicate>) -> Predicate {
        Predicate::Or(preds)
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(pred: Predicate) -> Predicate {
        Predicate::Not(Box::new(pred))
    }

    /// All attribute names referenced by the predicate.
    pub fn referenced_attrs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_attrs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::AttrConst { attr, .. } => out.push(attr),
            Predicate::AttrAttr { left, right, .. } => {
                out.push(left);
                out.push(right);
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_attrs(out);
                }
            }
            Predicate::Not(p) => p.collect_attrs(out),
        }
    }

    /// Evaluate the predicate on a tuple under the given schema.
    ///
    /// Unknown attributes yield an error (rather than silently `false`) so
    /// that malformed queries are surfaced.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        Ok(match self {
            Predicate::AttrConst { attr, op, value } => {
                let pos = schema.position_of(attr)?;
                op.eval(&tuple[pos], value)
            }
            Predicate::AttrAttr { left, op, right } => {
                let l = schema.position_of(left)?;
                let r = schema.position_of(right)?;
                op.eval(&tuple[l], &tuple[r])
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(schema, tuple)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(schema, tuple)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval(schema, tuple)?,
        })
    }

    /// Resolve every attribute position against `schema` once, so per-row
    /// evaluation needs no name lookups.  Errors on the first unknown
    /// attribute — callers that must reproduce [`Predicate::eval`]'s per-row
    /// short-circuit masking of unknown attributes should fall back to the
    /// uncompiled path when compilation fails (and skip evaluation entirely
    /// on empty inputs).
    pub fn compile(&self, schema: &Schema) -> Result<CompiledPredicate> {
        Ok(match self {
            Predicate::AttrConst { attr, op, value } => {
                let pos = schema.position_of(attr)?;
                match value {
                    Value::Int(c) => CompiledPredicate::IntConst {
                        pos,
                        op: *op,
                        value: *c,
                    },
                    _ => CompiledPredicate::AttrConst {
                        pos,
                        op: *op,
                        value: value.clone(),
                    },
                }
            }
            Predicate::AttrAttr { left, op, right } => CompiledPredicate::AttrAttr {
                lpos: schema.position_of(left)?,
                op: *op,
                rpos: schema.position_of(right)?,
            },
            Predicate::And(ps) => CompiledPredicate::And(
                ps.iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Predicate::Or(ps) => CompiledPredicate::Or(
                ps.iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Predicate::Not(p) => CompiledPredicate::Not(Box::new(p.compile(schema)?)),
        })
    }
}

/// A [`Predicate`] with every attribute name resolved to its tuple position —
/// the per-row fast path of the selection hot loops ([`crate::kernels`], the
/// UWSDT/U-relation selections).  Produced by [`Predicate::compile`];
/// evaluation is infallible and returns exactly [`Predicate::eval`]'s truth
/// value on every tuple of the compiled schema.
#[derive(Clone, Debug, PartialEq)]
pub enum CompiledPredicate {
    /// `A θ c` with an integer constant: the common census-style atom,
    /// comparing without touching [`Value::partial_cmp_sql`] when the row
    /// value is an integer too.
    IntConst {
        /// Resolved position of `A`.
        pos: usize,
        /// The comparison operator `θ`.
        op: CmpOp,
        /// The integer constant `c`.
        value: i64,
    },
    /// `A θ c` with a general constant.
    AttrConst {
        /// Resolved position of `A`.
        pos: usize,
        /// The comparison operator `θ`.
        op: CmpOp,
        /// The constant `c`.
        value: Value,
    },
    /// `A θ B`.
    AttrAttr {
        /// Resolved position of `A`.
        lpos: usize,
        /// The comparison operator `θ`.
        op: CmpOp,
        /// Resolved position of `B`.
        rpos: usize,
    },
    /// Conjunction (empty = `true`).
    And(Vec<CompiledPredicate>),
    /// Disjunction (empty = `false`).
    Or(Vec<CompiledPredicate>),
    /// Negation.
    Not(Box<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Evaluate on one tuple of the compiled schema.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            CompiledPredicate::IntConst { pos, op, value } => match tuple[*pos] {
                Value::Int(v) => op.eval_i64(v, *value),
                // Non-integer θ integer is undefined, hence false.
                _ => false,
            },
            CompiledPredicate::AttrConst { pos, op, value } => op.eval(&tuple[*pos], value),
            CompiledPredicate::AttrAttr { lpos, op, rpos } => op.eval(&tuple[*lpos], &tuple[*rpos]),
            CompiledPredicate::And(ps) => ps.iter().all(|p| p.eval(tuple)),
            CompiledPredicate::Or(ps) => ps.iter().any(|p| p.eval(tuple)),
            CompiledPredicate::Not(p) => !p.eval(tuple),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::AttrConst { attr, op, value } => write!(f, "{attr}{op}{value}"),
            Predicate::AttrAttr { left, op, right } => write!(f, "{left}{op}{right}"),
            Predicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(p) => write!(f, "¬{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::new("R", &["A", "B", "C"]).unwrap()
    }

    fn tuple(a: i64, b: i64, c: i64) -> Tuple {
        Tuple::from_iter([a, b, c])
    }

    #[test]
    fn comparison_operators() {
        let one = Value::int(1);
        let two = Value::int(2);
        assert!(CmpOp::Eq.eval(&one, &one));
        assert!(CmpOp::Ne.eval(&one, &two));
        assert!(CmpOp::Lt.eval(&one, &two));
        assert!(CmpOp::Le.eval(&one, &one));
        assert!(CmpOp::Gt.eval(&two, &one));
        assert!(CmpOp::Ge.eval(&two, &two));
        assert!(!CmpOp::Eq.eval(&Value::Bottom, &Value::Bottom));
        assert!(!CmpOp::Eq.eval(&one, &Value::text("1")));
    }

    #[test]
    fn operator_negation_roundtrip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            // On defined comparisons, negate flips the truth value.
            let a = Value::int(3);
            let b = Value::int(5);
            assert_ne!(op.eval(&a, &b), op.negate().eval(&a, &b));
        }
    }

    #[test]
    fn attr_const_and_attr_attr() {
        let s = schema();
        let p = Predicate::cmp_const("A", CmpOp::Gt, 1i64);
        assert!(!p.eval(&s, &tuple(1, 1, 1)).unwrap());
        assert!(p.eval(&s, &tuple(2, 1, 1)).unwrap());

        let q = Predicate::cmp_attr("A", CmpOp::Eq, "B");
        assert!(q.eval(&s, &tuple(4, 4, 0)).unwrap());
        assert!(!q.eval(&s, &tuple(4, 5, 0)).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let s = schema();
        let p = Predicate::and(vec![
            Predicate::eq_const("A", 1i64),
            Predicate::or(vec![
                Predicate::eq_const("B", 2i64),
                Predicate::eq_const("B", 3i64),
            ]),
        ]);
        assert!(p.eval(&s, &tuple(1, 3, 0)).unwrap());
        assert!(!p.eval(&s, &tuple(1, 4, 0)).unwrap());
        assert!(!p.eval(&s, &tuple(2, 2, 0)).unwrap());

        let n = Predicate::not(Predicate::eq_const("C", 0i64));
        assert!(!n.eval(&s, &tuple(1, 1, 0)).unwrap());
        assert!(n.eval(&s, &tuple(1, 1, 9)).unwrap());

        assert!(Predicate::And(vec![]).eval(&s, &tuple(0, 0, 0)).unwrap());
        assert!(!Predicate::Or(vec![]).eval(&s, &tuple(0, 0, 0)).unwrap());
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let s = schema();
        let p = Predicate::eq_const("Z", 1i64);
        assert!(p.eval(&s, &tuple(1, 1, 1)).is_err());
    }

    #[test]
    fn referenced_attrs_deduplicated() {
        let p = Predicate::and(vec![
            Predicate::eq_const("A", 1i64),
            Predicate::cmp_attr("A", CmpOp::Lt, "B"),
            Predicate::not(Predicate::eq_const("C", 2i64)),
        ]);
        assert_eq!(p.referenced_attrs(), vec!["A", "B", "C"]);
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::and(vec![
            Predicate::eq_const("A", 1i64),
            Predicate::not(Predicate::cmp_attr("B", CmpOp::Lt, "C")),
        ]);
        let s = p.to_string();
        assert!(s.contains("A=1"));
        assert!(s.contains("¬B<C"));
    }

    #[test]
    fn compiled_eval_matches_interpreted_eval() {
        let s = schema();
        let preds = vec![
            Predicate::eq_const("A", 1i64),
            Predicate::cmp_const("B", CmpOp::Ge, 2i64),
            Predicate::cmp_const("C", CmpOp::Ne, Value::Bottom),
            Predicate::cmp_attr("A", CmpOp::Lt, "B"),
            Predicate::and(vec![
                Predicate::eq_const("A", 1i64),
                Predicate::cmp_attr("B", CmpOp::Le, "C"),
            ]),
            Predicate::or(vec![
                Predicate::eq_const("A", 9i64),
                Predicate::not(Predicate::eq_const("C", 3i64)),
            ]),
        ];
        for p in preds {
            let c = p.compile(&s).unwrap();
            for t in [
                tuple(1, 2, 3),
                tuple(1, 1, 1),
                tuple(9, 0, 3),
                tuple(-1, 5, 5),
            ] {
                assert_eq!(c.eval(&t), p.eval(&s, &t).unwrap(), "{p} on {t:?}");
            }
        }
    }

    #[test]
    fn compile_resolves_int_constants_to_positions() {
        let s = schema();
        match Predicate::eq_const("B", 7i64).compile(&s).unwrap() {
            CompiledPredicate::IntConst { pos, op, value } => {
                assert_eq!((pos, op, value), (1, CmpOp::Eq, 7));
            }
            other => panic!("expected IntConst, got {other:?}"),
        }
    }

    #[test]
    fn compile_errors_on_unknown_attribute() {
        let s = schema();
        assert!(Predicate::eq_const("Z", 1i64).compile(&s).is_err());
        assert!(Predicate::and(vec![
            Predicate::eq_const("A", 1i64),
            Predicate::eq_const("Z", 1i64),
        ])
        .compile(&s)
        .is_err());
    }

    #[test]
    fn compiled_non_int_value_against_int_atom_is_false() {
        let s = schema();
        let c = Predicate::eq_const("A", 1i64).compile(&s).unwrap();
        let t = Tuple::from(vec![Value::Bottom, Value::Int(1), Value::Int(1)]);
        assert!(!c.eval(&t));
        assert!(!Predicate::eq_const("A", 1i64).eval(&s, &t).unwrap());
    }
}
