//! Tuples: fixed-arity rows of [`Value`]s.

use crate::value::Value;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A tuple `(A1: a1, …, Ak: ak)`; the attribute names live in the schema, the
/// tuple itself stores only the positional values.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Create a tuple of `arity` copies of `⊥` (the padding tuple `t⊥`).
    pub fn bottom(arity: usize) -> Self {
        Tuple {
            values: vec![Value::Bottom; arity],
        }
    }

    /// Create a tuple from anything convertible to values.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// The arity of the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether the tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the underlying values.
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Consume the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// The value at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Overwrite the value at position `i`.
    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    /// Append a value (used by `ext`-style column extensions).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// `true` iff at least one field is the `⊥` marker — i.e. the tuple is a
    /// `t⊥` tuple in the sense of §3 and is dropped by `inline⁻¹`.
    pub fn has_bottom(&self) -> bool {
        self.values.iter().any(Value::is_bottom)
    }

    /// `true` iff every field is the `⊥` marker.
    pub fn all_bottom(&self) -> bool {
        !self.values.is_empty() && self.values.iter().all(Value::is_bottom)
    }

    /// `true` iff at least one field is the `?` template placeholder.
    pub fn has_unknown(&self) -> bool {
        self.values.iter().any(Value::is_unknown)
    }

    /// Concatenation `self ◦ other` used by the `inline` encoding.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// The sub-tuple formed by the given positions, in the given order.
    pub fn project_positions(&self, positions: &[usize]) -> Tuple {
        Tuple {
            values: positions.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl IndexMut<usize> for Tuple {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        &mut self.values[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::from_iter([1i64, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t[1], Value::Int(2));
        assert_eq!(t.get(5), None);
        assert!(!t.is_empty());
        let mut t = t;
        t.set(0, Value::int(9));
        t[2] = Value::int(8);
        assert_eq!(t.values(), &[Value::int(9), Value::int(2), Value::int(8)]);
        t.push(Value::text("x"));
        assert_eq!(t.arity(), 4);
        assert_eq!(t.clone().into_values().len(), 4);
    }

    #[test]
    fn bottom_padding_and_detection() {
        let pad = Tuple::bottom(3);
        assert!(pad.all_bottom());
        assert!(pad.has_bottom());

        let mut t = Tuple::from_iter([1i64, 2]);
        assert!(!t.has_bottom());
        t.set(0, Value::Bottom);
        assert!(t.has_bottom());
        assert!(!t.all_bottom());
        assert!(!Tuple::new(vec![]).all_bottom());
    }

    #[test]
    fn unknown_detection() {
        let mut t = Tuple::from_iter([1i64]);
        assert!(!t.has_unknown());
        t.push(Value::Unknown);
        assert!(t.has_unknown());
    }

    #[test]
    fn concat_is_inline_concatenation() {
        let a = Tuple::from_iter([1i64, 2]);
        let b = Tuple::from_iter(["x", "y"]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 4);
        assert_eq!(c[0], Value::int(1));
        assert_eq!(c[3], Value::text("y"));
    }

    #[test]
    fn projection_by_positions() {
        let t = Tuple::from_iter([10i64, 20, 30]);
        let p = t.project_positions(&[2, 0]);
        assert_eq!(p.values(), &[Value::int(30), Value::int(10)]);
    }

    #[test]
    fn display_is_parenthesised() {
        let t = Tuple::from_iter([1i64, 2]);
        assert_eq!(t.to_string(), "(1, 2)");
    }
}
