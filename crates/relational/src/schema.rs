//! Relation schemas in the named perspective of the relational model.
//!
//! A relational schema is a tuple `Σ = (R1[U1], …, Rk[Uk])` where each `Ri`
//! is a relation name and `Ui` a list of attribute names (§2 of the paper).
//! Attribute order is significant for tuple layout, but lookups are by name.

use crate::error::{RelationalError, Result};
use std::fmt;
use std::sync::Arc;

/// An attribute name.  Cheap to clone; interned per construction site.
pub type AttrName = Arc<str>;

/// A relation name.
pub type RelName = Arc<str>;

/// Create an [`AttrName`] / [`RelName`] from a string slice.
pub fn name(s: impl AsRef<str>) -> Arc<str> {
    Arc::from(s.as_ref())
}

/// The schema of one relation: its name and ordered attribute list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    name: RelName,
    attrs: Vec<AttrName>,
}

impl Schema {
    /// Create a schema from a relation name and attribute names.
    ///
    /// Duplicate attribute names are rejected.
    pub fn new<S: AsRef<str>>(relation: impl AsRef<str>, attrs: &[S]) -> Result<Self> {
        let attrs: Vec<AttrName> = attrs.iter().map(|a| name(a.as_ref())).collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b == a) {
                return Err(RelationalError::DuplicateAttribute(a.to_string()));
            }
        }
        Ok(Schema {
            name: name(relation),
            attrs,
        })
    }

    /// Create a schema without duplicate checking from already-interned names.
    pub fn from_parts(relation: RelName, attrs: Vec<AttrName>) -> Self {
        Schema {
            name: relation,
            attrs,
        }
    }

    /// The relation name.
    pub fn relation(&self) -> &RelName {
        &self.name
    }

    /// The ordered attribute names (`sch(R)` in the paper).
    pub fn attrs(&self) -> &[AttrName] {
        &self.attrs
    }

    /// The arity `ar(R)` of the relation.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The position of an attribute, if present.
    pub fn position(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.as_ref() == attr)
    }

    /// The position of an attribute, or an error naming the relation.
    pub fn position_of(&self, attr: &str) -> Result<usize> {
        self.position(attr)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                attr: attr.to_string(),
                relation: self.name.to_string(),
            })
    }

    /// Whether the schema contains the attribute.
    pub fn contains(&self, attr: &str) -> bool {
        self.position(attr).is_some()
    }

    /// Returns a copy of this schema under a different relation name.
    pub fn renamed_relation(&self, new_name: impl AsRef<str>) -> Schema {
        Schema {
            name: name(new_name),
            attrs: self.attrs.clone(),
        }
    }

    /// Returns a copy of this schema with one attribute renamed
    /// (the `δ_{A→A'}` operation on schemas).
    pub fn renamed_attr(&self, from: &str, to: impl AsRef<str>) -> Result<Schema> {
        let pos = self.position_of(from)?;
        let new_attr = name(to);
        if self
            .attrs
            .iter()
            .enumerate()
            .any(|(i, a)| i != pos && *a == new_attr)
        {
            return Err(RelationalError::DuplicateAttribute(new_attr.to_string()));
        }
        let mut attrs = self.attrs.clone();
        attrs[pos] = new_attr;
        Ok(Schema {
            name: self.name.clone(),
            attrs,
        })
    }

    /// Returns the schema obtained by keeping only the attributes in `keep`
    /// (in `keep` order) — the schema-level projection `π_U`.
    pub fn projected<S: AsRef<str>>(&self, keep: &[S]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(keep.len());
        for a in keep {
            self.position_of(a.as_ref())?;
            attrs.push(name(a.as_ref()));
        }
        Ok(Schema {
            name: self.name.clone(),
            attrs,
        })
    }

    /// Returns the concatenated schema of a product `R × S`.
    ///
    /// Attribute sets must be disjoint, as the paper assumes for `×`.
    pub fn product(&self, other: &Schema, result_name: impl AsRef<str>) -> Result<Schema> {
        let mut attrs = self.attrs.clone();
        for a in other.attrs() {
            if attrs.iter().any(|b| b == a) {
                return Err(RelationalError::DuplicateAttribute(a.to_string()));
            }
            attrs.push(a.clone());
        }
        Ok(Schema {
            name: name(result_name),
            attrs,
        })
    }

    /// Checks that two schemas are union-compatible (same attribute list).
    pub fn check_union_compatible(&self, other: &Schema) -> Result<()> {
        if self.attrs == other.attrs {
            Ok(())
        } else {
            Err(RelationalError::SchemaMismatch {
                left: self.name.to_string(),
                right: other.name.to_string(),
            })
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new("R", &["A", "B", "C"]).unwrap()
    }

    #[test]
    fn positions_and_arity() {
        let s = abc();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("B"), Some(1));
        assert_eq!(s.position("Z"), None);
        assert!(s.contains("C"));
        assert!(!s.contains("D"));
        assert!(s.position_of("Z").is_err());
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(Schema::new("R", &["A", "A"]).is_err());
    }

    #[test]
    fn rename_relation_and_attribute() {
        let s = abc();
        let p = s.renamed_relation("P");
        assert_eq!(p.relation().as_ref(), "P");
        assert_eq!(p.attrs(), s.attrs());

        let r = s.renamed_attr("B", "B2").unwrap();
        assert_eq!(r.position("B2"), Some(1));
        assert!(!r.contains("B"));
        // Renaming onto an existing attribute is rejected.
        assert!(s.renamed_attr("B", "A").is_err());
        // Renaming an attribute to itself is fine.
        assert!(s.renamed_attr("B", "B").is_ok());
    }

    #[test]
    fn projection_reorders_and_validates() {
        let s = abc();
        let p = s.projected(&["C", "A"]).unwrap();
        assert_eq!(
            p.attrs().iter().map(|a| a.as_ref()).collect::<Vec<_>>(),
            vec!["C", "A"]
        );
        assert!(s.projected(&["X"]).is_err());
    }

    #[test]
    fn product_requires_disjoint_attrs() {
        let s = abc();
        let t = Schema::new("S", &["D", "E"]).unwrap();
        let p = s.product(&t, "T").unwrap();
        assert_eq!(p.arity(), 5);
        assert_eq!(p.relation().as_ref(), "T");
        let clash = Schema::new("S", &["C"]).unwrap();
        assert!(s.product(&clash, "T").is_err());
    }

    #[test]
    fn union_compatibility() {
        let s = abc();
        let same = Schema::new("S", &["A", "B", "C"]).unwrap();
        assert!(s.check_union_compatible(&same).is_ok());
        let diff = Schema::new("S", &["A", "B"]).unwrap();
        assert!(s.check_union_compatible(&diff).is_err());
    }

    #[test]
    fn display_shows_name_and_attrs() {
        assert_eq!(abc().to_string(), "R[A, B, C]");
    }
}
