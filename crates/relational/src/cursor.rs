//! Pull-based (volcano-style) streaming execution over a single-world
//! [`Database`].
//!
//! The shared engine of [`crate::engine`] materializes every operator's
//! result inside the backend — the right call for the world-set
//! representations, whose results *are* representations.  For the
//! single-world backend, though, a selection/projection pipeline over a large
//! relation does not need any intermediate at all: this module walks a plan
//! as a tree of row iterators, so `σ`/`π`/`δ` chains stream tuple by tuple
//! and only the operators that fundamentally need a buffered operand
//! (the right side of `×`, both sides of `∪`/`−`) materialize rows.
//!
//! [`Cursor`] complements the `maybms::Session` result API: sessions
//! materialize inside the backend and batch rows out (the representation
//! backends need the materialized result), while the cursor is the cheapest
//! way to scan a one-world query answer once without touching the catalog —
//! the single-world baselines of the examples and benches drive it:
//!
//! ```
//! use ws_relational::cursor::Cursor;
//! use ws_relational::{Database, Predicate, RaExpr, Relation, Schema};
//!
//! let mut db = Database::new();
//! let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
//! r.push_values([1i64, 10]).unwrap();
//! r.push_values([2i64, 20]).unwrap();
//! db.insert_relation(r);
//!
//! let plan = RaExpr::rel("R").select(Predicate::eq_const("A", 1i64));
//! let mut cursor = Cursor::open(&db, &plan).unwrap();
//! assert_eq!(cursor.schema().attrs().len(), 2);
//! assert_eq!(cursor.try_count().unwrap(), 1);
//! ```
//!
//! Rows are produced in exactly the order the materializing executor with
//! `EngineConfig::naive()` produces them (products nest left-major; unions
//! and differences are deduplicated into sorted order, mirroring
//! [`Relation::dedup`]), so streamed and materialized evaluation agree row
//! for row, not just as sets.

use crate::algebra::RaExpr;
use crate::database::Database;
use crate::error::Result;
use crate::optimizer;
use crate::predicate::Predicate;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::BTreeSet;

/// The executor's native batch granularity, in rows: one morsel
/// ([`crate::par::MORSEL_ROWS`]) of the columnar kernels.  Batched row pulls
/// (`Cursor::next_batch`, the session `Rows` stream) default to this size so
/// a refill moves exactly one kernel-sized unit per copy.
pub const NATIVE_BATCH_ROWS: usize = crate::par::MORSEL_ROWS;

/// A pull-based row stream over one query plan against one [`Database`].
///
/// Iterates `Result<Tuple>`: predicate-evaluation errors (unknown attribute,
/// incomparable values) surface at the row that triggers them, exactly as
/// the materializing executor would fail the whole operator.
pub struct Cursor<'a> {
    schema: Schema,
    node: Node<'a>,
}

impl<'a> Cursor<'a> {
    /// Open a cursor over `plan` exactly as written (no optimizer pass).
    pub fn open(db: &'a Database, plan: &RaExpr) -> Result<Cursor<'a>> {
        let (schema, node) = build(db, plan)?;
        Ok(Cursor { schema, node })
    }

    /// Open a cursor over the rule-based optimizer's rewrite of `plan`
    /// (selection pushdown before streaming pays off on product-heavy plans).
    pub fn open_optimized(db: &'a Database, plan: &RaExpr) -> Result<Cursor<'a>> {
        let optimized = optimizer::optimize(db, plan)?;
        Cursor::open(db, &optimized)
    }

    /// The schema of the streamed rows.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Pull up to `limit` rows into a batch (empty when exhausted).
    /// [`NATIVE_BATCH_ROWS`] is the natural `limit` — one executor morsel.
    pub fn next_batch(&mut self, limit: usize) -> Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(limit.min(NATIVE_BATCH_ROWS));
        while out.len() < limit {
            match self.node.next_row()? {
                Some(tuple) => out.push(tuple),
                None => break,
            }
        }
        Ok(out)
    }

    /// Count the remaining rows without retaining any of them.
    pub fn try_count(&mut self) -> Result<usize> {
        let mut n = 0usize;
        while self.node.next_row()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// Drain the stream into a materialized [`Relation`].
    pub fn try_collect(mut self) -> Result<Relation> {
        let mut rows = Vec::new();
        while let Some(tuple) = self.node.next_row()? {
            rows.push(tuple);
        }
        Relation::with_rows(self.schema, rows)
    }
}

impl Iterator for Cursor<'_> {
    type Item = Result<Tuple>;

    fn next(&mut self) -> Option<Self::Item> {
        self.node.next_row().transpose()
    }
}

/// One operator of the streaming tree.
enum Node<'a> {
    /// Base-relation scan (borrows the rows, clones lazily per pull).
    Scan { rows: &'a [Tuple], pos: usize },
    /// Streaming selection; needs its input's schema for predicate evaluation.
    Select {
        pred: Predicate,
        schema: Schema,
        input: Box<Node<'a>>,
    },
    /// Streaming projection by precomputed positions.
    Project {
        positions: Vec<usize>,
        input: Box<Node<'a>>,
    },
    /// Nested-loop product: left streams, right is buffered once.
    Product {
        left: Box<Node<'a>>,
        right: Vec<Tuple>,
        current: Option<Tuple>,
        rpos: usize,
    },
    /// Fully buffered rows (union/difference results).
    Buffered(std::vec::IntoIter<Tuple>),
}

impl Node<'_> {
    fn next_row(&mut self) -> Result<Option<Tuple>> {
        match self {
            Node::Scan { rows, pos } => {
                let row = rows.get(*pos).cloned();
                *pos += 1;
                Ok(row)
            }
            Node::Select {
                pred,
                schema,
                input,
            } => loop {
                let Some(row) = input.next_row()? else {
                    return Ok(None);
                };
                if pred.eval(schema, &row)? {
                    return Ok(Some(row));
                }
            },
            Node::Project { positions, input } => Ok(input
                .next_row()?
                .map(|row| row.project_positions(positions))),
            Node::Product {
                left,
                right,
                current,
                rpos,
            } => loop {
                if right.is_empty() {
                    return Ok(None);
                }
                if current.is_none() {
                    *current = left.next_row()?;
                    *rpos = 0;
                }
                let Some(lt) = current.as_ref() else {
                    return Ok(None);
                };
                if *rpos < right.len() {
                    let row = lt.concat(&right[*rpos]);
                    *rpos += 1;
                    return Ok(Some(row));
                }
                *current = None;
            },
            Node::Buffered(rows) => Ok(rows.next()),
        }
    }

    fn drain(&mut self) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        while let Some(row) = self.next_row()? {
            out.push(row);
        }
        Ok(out)
    }
}

/// Recursively translate a plan into its schema and streaming node.
fn build<'a>(db: &'a Database, expr: &RaExpr) -> Result<(Schema, Node<'a>)> {
    match expr {
        RaExpr::Rel(name) => {
            let rel = db.relation(name)?;
            Ok((
                rel.schema().clone(),
                Node::Scan {
                    rows: rel.rows(),
                    pos: 0,
                },
            ))
        }
        RaExpr::Select { pred, input } => {
            let (schema, node) = build(db, input)?;
            Ok((
                schema.clone(),
                Node::Select {
                    pred: pred.clone(),
                    schema,
                    input: Box::new(node),
                },
            ))
        }
        RaExpr::Project { attrs, input } => {
            let (schema, node) = build(db, input)?;
            let positions: Vec<usize> = attrs
                .iter()
                .map(|a| schema.position_of(a))
                .collect::<Result<_>>()?;
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            Ok((
                schema.projected(&attr_refs)?,
                Node::Project {
                    positions,
                    input: Box::new(node),
                },
            ))
        }
        RaExpr::Product { left, right } => {
            let (ls, ln) = build(db, left)?;
            let (rs, mut rn) = build(db, right)?;
            let schema = ls.product(&rs, "cursor")?;
            Ok((
                schema,
                Node::Product {
                    left: Box::new(ln),
                    right: rn.drain()?,
                    current: None,
                    rpos: 0,
                },
            ))
        }
        RaExpr::Union { left, right } => {
            let (ls, mut ln) = build(db, left)?;
            let (rs, mut rn) = build(db, right)?;
            ls.check_union_compatible(&rs)?;
            let mut set: BTreeSet<Tuple> = ln.drain()?.into_iter().collect();
            set.extend(rn.drain()?);
            Ok((
                ls,
                Node::Buffered(set.into_iter().collect::<Vec<_>>().into_iter()),
            ))
        }
        RaExpr::Difference { left, right } => {
            let (ls, mut ln) = build(db, left)?;
            let (rs, mut rn) = build(db, right)?;
            ls.check_union_compatible(&rs)?;
            let remove: BTreeSet<Tuple> = rn.drain()?.into_iter().collect();
            let keep: BTreeSet<Tuple> = ln
                .drain()?
                .into_iter()
                .filter(|t| !remove.contains(t))
                .collect();
            Ok((
                ls,
                Node::Buffered(keep.into_iter().collect::<Vec<_>>().into_iter()),
            ))
        }
        RaExpr::Rename { from, to, input } => {
            let (schema, node) = build(db, input)?;
            Ok((schema.renamed_attr(from, to)?, node))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate_query_with, EngineConfig};
    use crate::predicate::CmpOp;

    fn db() -> Database {
        let mut d = Database::new();
        let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        for (a, b) in [(1i64, 10i64), (2, 20), (3, 10), (4, 30), (5, 20)] {
            r.push_values([a, b]).unwrap();
        }
        d.insert_relation(r);
        let mut s = Relation::new(Schema::new("S", &["C", "D"]).unwrap());
        for (c, d_) in [(10i64, 7i64), (20, 8), (99, 9)] {
            s.push_values([c, d_]).unwrap();
        }
        d.insert_relation(s);
        d
    }

    fn suite() -> Vec<RaExpr> {
        vec![
            RaExpr::rel("R"),
            RaExpr::rel("R").select(Predicate::eq_const("B", 10i64)),
            RaExpr::rel("R")
                .select(Predicate::cmp_const("A", CmpOp::Gt, 1i64))
                .project(vec!["B"]),
            RaExpr::rel("R")
                .product(RaExpr::rel("S"))
                .select(Predicate::cmp_attr("B", CmpOp::Eq, "C"))
                .project(vec!["A", "D"]),
            RaExpr::rel("R")
                .project(vec!["B"])
                .union(RaExpr::rel("S").rename("C", "B").project(vec!["B"])),
            RaExpr::rel("R")
                .project(vec!["B"])
                .difference(RaExpr::rel("S").rename("C", "B").project(vec!["B"])),
            RaExpr::rel("R")
                .rename("A", "A2")
                .select(Predicate::cmp_const("A2", CmpOp::Ge, 3i64)),
        ]
    }

    #[test]
    fn streaming_matches_the_materializing_naive_executor_row_for_row() {
        for (i, plan) in suite().into_iter().enumerate() {
            let mut backend = db();
            let out =
                evaluate_query_with(&mut backend, &plan, "OUT", EngineConfig::naive()).unwrap();
            let materialized = backend.relation(&out).unwrap();

            let source = db();
            let cursor = Cursor::open(&source, &plan).unwrap();
            let streamed = cursor.try_collect().unwrap();
            assert_eq!(
                streamed.rows(),
                materialized.rows(),
                "plan #{i} {plan}: streamed rows differ from the executor"
            );
            assert_eq!(
                streamed.schema().attrs(),
                materialized.schema().attrs(),
                "plan #{i} {plan}: schemas differ"
            );
        }
    }

    #[test]
    fn optimized_cursor_agrees_as_a_set() {
        for plan in suite() {
            let source = db();
            let plain: BTreeSet<Tuple> = Cursor::open(&source, &plan)
                .unwrap()
                .collect::<Result<_>>()
                .unwrap();
            let optimized: BTreeSet<Tuple> = Cursor::open_optimized(&source, &plan)
                .unwrap()
                .collect::<Result<_>>()
                .unwrap();
            assert_eq!(plain, optimized, "optimizer changed the answer for {plan}");
        }
    }

    #[test]
    fn batches_partition_the_stream() {
        let source = db();
        let plan = RaExpr::rel("R").product(RaExpr::rel("S"));
        let mut cursor = Cursor::open(&source, &plan).unwrap();
        let mut rows = Vec::new();
        loop {
            let batch = cursor.next_batch(4).unwrap();
            if batch.is_empty() {
                break;
            }
            assert!(batch.len() <= 4);
            rows.extend(batch);
        }
        assert_eq!(rows.len(), 15);
        // Exhausted cursors keep returning empty batches.
        assert!(cursor.next_batch(4).unwrap().is_empty());
    }

    #[test]
    fn count_does_not_retain_rows_and_errors_surface() {
        let source = db();
        let mut cursor = Cursor::open(
            &source,
            &RaExpr::rel("R").select(Predicate::eq_const("B", 10i64)),
        )
        .unwrap();
        assert_eq!(cursor.try_count().unwrap(), 2);

        // Unknown relation fails at open; unknown attribute fails at open for
        // projections (positions are resolved eagerly).
        assert!(Cursor::open(&source, &RaExpr::rel("NOPE")).is_err());
        assert!(Cursor::open(&source, &RaExpr::rel("R").project(vec!["Z"])).is_err());
    }

    #[test]
    fn empty_product_side_short_circuits() {
        let mut d = Database::new();
        let r = Relation::new(Schema::new("R", &["A"]).unwrap());
        d.insert_relation(r);
        let mut s = Relation::new(Schema::new("S", &["B"]).unwrap());
        s.push_values([1i64]).unwrap();
        d.insert_relation(s);
        let plan = RaExpr::rel("S").product(RaExpr::rel("R"));
        assert_eq!(Cursor::open(&d, &plan).unwrap().try_count().unwrap(), 0);
        let plan = RaExpr::rel("R").product(RaExpr::rel("S"));
        assert_eq!(Cursor::open(&d, &plan).unwrap().try_count().unwrap(), 0);
    }
}
