//! Error type shared by the relational substrate.

use std::fmt;

/// Result alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, RelationalError>;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// The missing attribute.
        attr: String,
        /// The schema (relation) in which it was looked up.
        relation: String,
    },
    /// A relation name was not found in the database catalog.
    UnknownRelation(String),
    /// A tuple's arity did not match the schema it was inserted into.
    ArityMismatch {
        /// Relation the tuple was inserted into.
        relation: String,
        /// Arity the schema expects.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// Union/difference operands had incompatible schemas.
    SchemaMismatch {
        /// Left operand description.
        left: String,
        /// Right operand description.
        right: String,
    },
    /// An attribute would be duplicated (e.g. by a product or rename).
    DuplicateAttribute(String),
    /// Conditioning removed every possible world (no world satisfies the
    /// constraints).
    Inconsistent,
    /// Anything else worth reporting with a message.
    Invalid(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownAttribute { attr, relation } => {
                write!(f, "unknown attribute `{attr}` in relation `{relation}`")
            }
            RelationalError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            RelationalError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for `{relation}`: expected {expected}, got {actual}"
            ),
            RelationalError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch between `{left}` and `{right}`")
            }
            RelationalError::DuplicateAttribute(a) => {
                write!(f, "duplicate attribute `{a}`")
            }
            RelationalError::Inconsistent => {
                write!(f, "world-set is inconsistent (no world remains)")
            }
            RelationalError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offenders() {
        let e = RelationalError::UnknownAttribute {
            attr: "SSN".into(),
            relation: "R".into(),
        };
        assert!(e.to_string().contains("SSN"));
        assert!(e.to_string().contains('R'));

        let e = RelationalError::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));

        let e = RelationalError::UnknownRelation("S".into());
        assert!(e.to_string().contains('S'));
        let e = RelationalError::SchemaMismatch {
            left: "R".into(),
            right: "S".into(),
        };
        assert!(e.to_string().contains("mismatch"));
        let e = RelationalError::DuplicateAttribute("A".into());
        assert!(e.to_string().contains("duplicate"));
        let e = RelationalError::Invalid("boom".into());
        assert_eq!(e.to_string(), "boom");
    }
}
