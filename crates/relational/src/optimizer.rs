//! Rule-based query optimizer for [`RaExpr`] plans.
//!
//! Section 5 of the paper notes that the standard relational optimizations
//! remain applicable when rewriting queries onto UWSDTs: selections are merged
//! with products into joins, selections and projections are distributed to the
//! operands, and repeated scans are shared.  This module implements the plan
//! rewrites used by those optimizations on the single-world algebra so that
//! both the one-world baseline and the UWSDT query rewriter can run over
//! optimized plans:
//!
//! * conjunctive selections are split, pushed as far down as possible
//!   (through projections, renamings, unions, the left side of differences
//!   and into the matching side of a product) and re-merged,
//! * adjacent selections are combined into one conjunction,
//! * adjacent projections are collapsed,
//! * a selection sitting directly on a product is recognised as a θ-join by
//!   the cost model.
//!
//! All rewrites preserve the evaluation semantics of [`evaluate`]
//! (bag semantics for select/project/product, set semantics for union and
//! difference); `tests::optimized_plans_are_equivalent` and the
//! `optimizer_equivalence` integration test check this against randomly
//! generated databases.

use std::collections::BTreeSet;

use crate::algebra::{evaluate, RaExpr};
use crate::database::Database;
use crate::engine::SchemaCatalog;
use crate::error::Result;
use crate::predicate::Predicate;
use crate::relation::Relation;

/// The attribute names an expression produces, computed structurally (without
/// evaluating the plan).  Base relations are resolved against the catalog of
/// any backend — a one-world [`Database`], a WSD, a UWSDT, a U-relation
/// store or an explicit world-set.
pub fn output_attrs<C: SchemaCatalog + ?Sized>(
    catalog: &C,
    expr: &RaExpr,
) -> Result<BTreeSet<String>> {
    Ok(match expr {
        RaExpr::Rel(name) => catalog
            .schema_of(name)?
            .attrs()
            .iter()
            .map(|a| a.to_string())
            .collect(),
        RaExpr::Select { input, .. } => output_attrs(catalog, input)?,
        RaExpr::Project { attrs, .. } => attrs.iter().cloned().collect(),
        RaExpr::Product { left, right } => {
            let mut l = output_attrs(catalog, left)?;
            l.extend(output_attrs(catalog, right)?);
            l
        }
        RaExpr::Union { left, .. } | RaExpr::Difference { left, .. } => {
            output_attrs(catalog, left)?
        }
        RaExpr::Rename { from, to, input } => {
            let mut attrs = output_attrs(catalog, input)?;
            if attrs.remove(from) {
                attrs.insert(to.clone());
            }
            attrs
        }
    })
}

/// Replace every occurrence of attribute `from` by `to` inside a predicate.
///
/// Used when a selection is pushed through a renaming `δ_{to→from}`.
pub fn rename_pred_attr(pred: &Predicate, from: &str, to: &str) -> Predicate {
    match pred {
        Predicate::AttrConst { attr, op, value } => Predicate::AttrConst {
            attr: if attr == from {
                to.to_string()
            } else {
                attr.clone()
            },
            op: *op,
            value: value.clone(),
        },
        Predicate::AttrAttr { left, op, right } => Predicate::AttrAttr {
            left: if left == from {
                to.to_string()
            } else {
                left.clone()
            },
            op: *op,
            right: if right == from {
                to.to_string()
            } else {
                right.clone()
            },
        },
        Predicate::And(ps) => {
            Predicate::And(ps.iter().map(|p| rename_pred_attr(p, from, to)).collect())
        }
        Predicate::Or(ps) => {
            Predicate::Or(ps.iter().map(|p| rename_pred_attr(p, from, to)).collect())
        }
        Predicate::Not(p) => Predicate::Not(Box::new(rename_pred_attr(p, from, to))),
    }
}

/// Split a predicate into its top-level conjuncts.
///
/// `A=1 ∧ (B=2 ∨ C=3) ∧ D>0` becomes three predicates; non-conjunctive
/// predicates are returned as a single-element vector.
pub fn conjuncts(pred: &Predicate) -> Vec<Predicate> {
    match pred {
        Predicate::And(ps) => ps.iter().flat_map(conjuncts).collect(),
        other => vec![other.clone()],
    }
}

/// Re-assemble a conjunction, avoiding a needless `And` wrapper for a single
/// conjunct and producing the always-true empty conjunction for none.
pub fn conjunction(mut preds: Vec<Predicate>) -> Predicate {
    if preds.len() == 1 {
        preds.pop().expect("len checked")
    } else {
        Predicate::And(preds)
    }
}

fn is_subset(needed: &[&str], available: &BTreeSet<String>) -> bool {
    needed.iter().all(|a| available.contains(*a))
}

/// One bottom-up rewriting pass.  Returns the rewritten expression and a flag
/// indicating whether anything changed.
fn rewrite_once<C: SchemaCatalog + ?Sized>(catalog: &C, expr: &RaExpr) -> Result<(RaExpr, bool)> {
    match expr {
        RaExpr::Rel(_) => Ok((expr.clone(), false)),
        RaExpr::Select { pred, input } => {
            let (input, mut changed) = rewrite_once(catalog, input)?;
            // Merge with an inner selection first: σ_p(σ_q(E)) = σ_{p∧q}(E).
            let (pred, input) = if let RaExpr::Select {
                pred: inner_pred,
                input: inner_input,
            } = input
            {
                changed = true;
                let mut all = conjuncts(pred);
                all.extend(conjuncts(&inner_pred));
                (conjunction(all), *inner_input)
            } else {
                (pred.clone(), input)
            };

            // Try to push each conjunct down through the input operator.
            let mut remaining: Vec<Predicate> = Vec::new();
            let mut pushed_any = false;
            let mut new_input = input;
            for conjunct in conjuncts(&pred) {
                match push_conjunct(catalog, conjunct, new_input)? {
                    (next_input, None) => {
                        pushed_any = true;
                        new_input = next_input;
                    }
                    (next_input, Some(kept)) => {
                        new_input = next_input;
                        remaining.push(kept);
                    }
                }
            }
            changed |= pushed_any;
            let result = if remaining.is_empty() {
                new_input
            } else {
                RaExpr::Select {
                    pred: conjunction(remaining),
                    input: Box::new(new_input),
                }
            };
            Ok((result, changed))
        }
        RaExpr::Project { attrs, input } => {
            let (input, mut changed) = rewrite_once(catalog, input)?;
            // π_U(π_V(E)) = π_U(E) whenever the outer list is valid, which it
            // must be for the plan to type-check.
            let input = if let RaExpr::Project {
                input: inner_input, ..
            } = input
            {
                changed = true;
                *inner_input
            } else {
                input
            };
            Ok((
                RaExpr::Project {
                    attrs: attrs.clone(),
                    input: Box::new(input),
                },
                changed,
            ))
        }
        RaExpr::Product { left, right } => {
            let (l, cl) = rewrite_once(catalog, left)?;
            let (r, cr) = rewrite_once(catalog, right)?;
            Ok((
                RaExpr::Product {
                    left: Box::new(l),
                    right: Box::new(r),
                },
                cl || cr,
            ))
        }
        RaExpr::Union { left, right } => {
            let (l, cl) = rewrite_once(catalog, left)?;
            let (r, cr) = rewrite_once(catalog, right)?;
            Ok((
                RaExpr::Union {
                    left: Box::new(l),
                    right: Box::new(r),
                },
                cl || cr,
            ))
        }
        RaExpr::Difference { left, right } => {
            let (l, cl) = rewrite_once(catalog, left)?;
            let (r, cr) = rewrite_once(catalog, right)?;
            Ok((
                RaExpr::Difference {
                    left: Box::new(l),
                    right: Box::new(r),
                },
                cl || cr,
            ))
        }
        RaExpr::Rename { from, to, input } => {
            let (input, changed) = rewrite_once(catalog, input)?;
            Ok((
                RaExpr::Rename {
                    from: from.clone(),
                    to: to.clone(),
                    input: Box::new(input),
                },
                changed,
            ))
        }
    }
}

/// Try to push one selection conjunct below the root operator of `input`.
///
/// Returns the (possibly rewritten) input together with `None` if the
/// conjunct was absorbed below, or `Some(conjunct)` if it has to stay above.
fn push_conjunct<C: SchemaCatalog + ?Sized>(
    catalog: &C,
    conjunct: Predicate,
    input: RaExpr,
) -> Result<(RaExpr, Option<Predicate>)> {
    let needed = conjunct
        .referenced_attrs()
        .into_iter()
        .map(str::to_string)
        .collect::<Vec<_>>();
    let needed_refs: Vec<&str> = needed.iter().map(String::as_str).collect();
    match input {
        RaExpr::Product { left, right } => {
            let left_attrs = output_attrs(catalog, &left)?;
            let right_attrs = output_attrs(catalog, &right)?;
            if is_subset(&needed_refs, &left_attrs) {
                Ok((
                    RaExpr::Product {
                        left: Box::new(left.select(conjunct)),
                        right,
                    },
                    None,
                ))
            } else if is_subset(&needed_refs, &right_attrs) {
                Ok((
                    RaExpr::Product {
                        left,
                        right: Box::new(right.select(conjunct)),
                    },
                    None,
                ))
            } else {
                // A genuine join condition: it has to stay above the product.
                Ok((RaExpr::Product { left, right }, Some(conjunct)))
            }
        }
        RaExpr::Union { left, right } => Ok((
            RaExpr::Union {
                left: Box::new(left.select(conjunct.clone())),
                right: Box::new(right.select(conjunct)),
            },
            None,
        )),
        RaExpr::Difference { left, right } => Ok((
            // σ_p(E1 − E2) = σ_p(E1) − E2 under set semantics.
            RaExpr::Difference {
                left: Box::new(left.select(conjunct)),
                right,
            },
            None,
        )),
        RaExpr::Rename { from, to, input } => {
            let rewritten = rename_pred_attr(&conjunct, &to, &from);
            Ok((
                RaExpr::Rename {
                    from,
                    to,
                    input: Box::new(input.select(rewritten)),
                },
                None,
            ))
        }
        RaExpr::Project { attrs, input } => {
            // The conjunct only mentions projected attributes (otherwise the
            // original plan would not type-check), so it commutes with π.
            Ok((
                RaExpr::Project {
                    attrs,
                    input: Box::new(input.select(conjunct)),
                },
                None,
            ))
        }
        other @ (RaExpr::Rel(_) | RaExpr::Select { .. }) => Ok((other, Some(conjunct))),
    }
}

/// Optimize a plan by applying the rewrite rules to a fixpoint.
///
/// The rewriting is bounded by the plan size, so this always terminates; in
/// practice two or three passes suffice.
pub fn optimize<C: SchemaCatalog + ?Sized>(catalog: &C, expr: &RaExpr) -> Result<RaExpr> {
    let mut current = expr.clone();
    let bound = expr.node_count() + 4;
    for _ in 0..bound {
        let (next, changed) = rewrite_once(catalog, &current)?;
        current = next;
        if !changed {
            break;
        }
    }
    Ok(current)
}

/// A crude cardinality estimate for a plan, used to compare plan shapes in
/// the optimizer ablation bench (not to pick plans — the rule set is
/// heuristic-free).
///
/// * base relation: its actual row count,
/// * selection: 10% of the input per conjunct (equality), 33% otherwise,
/// * projection/renaming: input cardinality,
/// * product: product of the inputs,
/// * union: sum, difference: left input.
pub fn estimated_rows(db: &Database, expr: &RaExpr) -> Result<f64> {
    Ok(match expr {
        RaExpr::Rel(name) => db.relation(name)?.len() as f64,
        RaExpr::Select { pred, input } => {
            let base = estimated_rows(db, input)?;
            let mut selectivity = 1.0;
            for c in conjuncts(pred) {
                selectivity *= match c {
                    Predicate::AttrConst { op, .. } | Predicate::AttrAttr { op, .. }
                        if op == crate::predicate::CmpOp::Eq =>
                    {
                        0.1
                    }
                    _ => 0.33,
                };
            }
            base * selectivity
        }
        RaExpr::Project { input, .. } | RaExpr::Rename { input, .. } => estimated_rows(db, input)?,
        RaExpr::Product { left, right } => estimated_rows(db, left)? * estimated_rows(db, right)?,
        RaExpr::Union { left, right } => estimated_rows(db, left)? + estimated_rows(db, right)?,
        RaExpr::Difference { left, .. } => estimated_rows(db, left)?,
    })
}

/// The total estimated number of intermediate rows materialized by a plan —
/// the sum of [`estimated_rows`] over every operator.  Lower is better; the
/// ablation bench reports this next to the measured evaluation times.
pub fn estimated_cost(db: &Database, expr: &RaExpr) -> Result<f64> {
    let own = estimated_rows(db, expr)?;
    Ok(own
        + match expr {
            RaExpr::Rel(_) => 0.0,
            RaExpr::Select { input, .. }
            | RaExpr::Project { input, .. }
            | RaExpr::Rename { input, .. } => estimated_cost(db, input)?,
            RaExpr::Product { left, right }
            | RaExpr::Union { left, right }
            | RaExpr::Difference { left, right } => {
                estimated_cost(db, left)? + estimated_cost(db, right)?
            }
        })
}

/// Evaluate a plan after optimizing it.  Convenience used by the one-world
/// baseline of the evaluation benches.
pub fn evaluate_optimized(db: &Database, expr: &RaExpr) -> Result<Relation> {
    let plan = optimize(db, expr)?;
    evaluate(db, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        for (a, b) in [(1, 10), (2, 20), (3, 30), (4, 20)] {
            r.push(Tuple::from_iter([Value::int(a), Value::int(b)]))
                .unwrap();
        }
        let mut s = Relation::new(Schema::new("S", &["C", "D"]).unwrap());
        for (c, d) in [(10, 7), (20, 8), (99, 9)] {
            s.push(Tuple::from_iter([Value::int(c), Value::int(d)]))
                .unwrap();
        }
        db.insert_relation(r);
        db.insert_relation(s);
        db
    }

    fn sample_queries() -> Vec<RaExpr> {
        vec![
            // σ over a product with a join conjunct and two pushable conjuncts.
            RaExpr::rel("R")
                .product(RaExpr::rel("S"))
                .select(Predicate::and(vec![
                    Predicate::cmp_attr("B", CmpOp::Eq, "C"),
                    Predicate::cmp_const("A", CmpOp::Gt, 1i64),
                    Predicate::cmp_const("D", CmpOp::Lt, 9i64),
                ])),
            // Stacked selections and projections.
            RaExpr::rel("R")
                .select(Predicate::cmp_const("A", CmpOp::Ge, 2i64))
                .select(Predicate::eq_const("B", 20i64))
                .project(vec!["A", "B"])
                .project(vec!["A"]),
            // Selection over a union and a rename.
            RaExpr::rel("R")
                .project(vec!["A"])
                .union(RaExpr::rel("S").rename("C", "A").project(vec!["A"]))
                .select(Predicate::cmp_const("A", CmpOp::Gt, 2i64)),
            // Selection over a difference.
            RaExpr::rel("R")
                .project(vec!["B"])
                .difference(RaExpr::rel("S").rename("C", "B").project(vec!["B"]))
                .select(Predicate::cmp_const("B", CmpOp::Gt, 5i64)),
            // Selection over a renamed relation.
            RaExpr::rel("S")
                .rename("C", "B")
                .select(Predicate::eq_const("B", 20i64)),
        ]
    }

    #[test]
    fn optimized_plans_are_equivalent() {
        let db = sample_db();
        for query in sample_queries() {
            let plain = evaluate(&db, &query).unwrap();
            let optimized_plan = optimize(&db, &query).unwrap();
            let optimized = evaluate(&db, &optimized_plan).unwrap();
            assert!(
                plain.set_eq(&optimized),
                "optimization changed the answer for {query}: {plain} vs {optimized}"
            );
        }
    }

    #[test]
    fn join_conjunct_stays_while_locals_are_pushed() {
        let db = sample_db();
        let query = sample_queries().remove(0);
        let plan = optimize(&db, &query).unwrap();
        // The top of the plan must still be the join selection …
        match &plan {
            RaExpr::Select { pred, input } => {
                assert_eq!(conjuncts(pred).len(), 1, "only the join conjunct remains");
                // … and both local conjuncts must have moved below the product.
                match input.as_ref() {
                    RaExpr::Product { left, right } => {
                        assert!(matches!(left.as_ref(), RaExpr::Select { .. }));
                        assert!(matches!(right.as_ref(), RaExpr::Select { .. }));
                    }
                    other => panic!("expected a product under the join selection, got {other}"),
                }
            }
            other => panic!("expected a selection at the root, got {other}"),
        }
    }

    #[test]
    fn selection_merges_and_projections_collapse() {
        let db = sample_db();
        let query = sample_queries().remove(1);
        let plan = optimize(&db, &query).unwrap();
        // One projection over one selection over the base relation.
        match &plan {
            RaExpr::Project { attrs, input } => {
                assert_eq!(attrs, &vec!["A".to_string()]);
                match input.as_ref() {
                    RaExpr::Select { pred, input } => {
                        assert_eq!(conjuncts(pred).len(), 2);
                        assert!(matches!(input.as_ref(), RaExpr::Rel(_)));
                    }
                    other => panic!("expected a merged selection, got {other}"),
                }
            }
            other => panic!("expected a single projection at the root, got {other}"),
        }
    }

    #[test]
    fn pushdown_through_rename_rewrites_the_predicate() {
        let db = sample_db();
        let query = sample_queries().remove(4);
        let plan = optimize(&db, &query).unwrap();
        match &plan {
            RaExpr::Rename { input, .. } => match input.as_ref() {
                RaExpr::Select { pred, .. } => {
                    assert_eq!(pred.referenced_attrs(), vec!["C"]);
                }
                other => panic!("expected selection below the rename, got {other}"),
            },
            other => panic!("expected the rename at the root, got {other}"),
        }
    }

    #[test]
    fn cost_model_prefers_pushed_down_plans() {
        let db = sample_db();
        let query = sample_queries().remove(0);
        let optimized = optimize(&db, &query).unwrap();
        let before = estimated_cost(&db, &query).unwrap();
        let after = estimated_cost(&db, &optimized).unwrap();
        assert!(after <= before, "pushdown must not increase estimated cost");
        assert!(estimated_rows(&db, &RaExpr::rel("R")).unwrap() > 0.0);
    }

    #[test]
    fn evaluate_optimized_matches_plain_evaluation() {
        let db = sample_db();
        for query in sample_queries() {
            let a = evaluate(&db, &query).unwrap();
            let b = evaluate_optimized(&db, &query).unwrap();
            assert!(a.set_eq(&b));
        }
    }

    #[test]
    fn output_attrs_follows_renames_and_projections() {
        let db = sample_db();
        let expr = RaExpr::rel("S").rename("C", "X").project(vec!["X"]);
        let attrs = output_attrs(&db, &expr).unwrap();
        assert_eq!(attrs.into_iter().collect::<Vec<_>>(), vec!["X".to_string()]);
    }

    #[test]
    fn conjunct_helpers_round_trip() {
        let p = Predicate::and(vec![
            Predicate::eq_const("A", 1i64),
            Predicate::and(vec![
                Predicate::eq_const("B", 2i64),
                Predicate::cmp_const("C", CmpOp::Gt, 3i64),
            ]),
        ]);
        let parts = conjuncts(&p);
        assert_eq!(parts.len(), 3);
        let rebuilt = conjunction(parts);
        assert_eq!(conjuncts(&rebuilt).len(), 3);
        // A single conjunct must not get wrapped.
        let single = conjunction(vec![Predicate::eq_const("A", 1i64)]);
        assert!(matches!(single, Predicate::AttrConst { .. }));
    }
}
