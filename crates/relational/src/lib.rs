//! # ws-relational — in-memory relational engine substrate
//!
//! The paper's prototype (MayBMS) is implemented as a layer on top of
//! PostgreSQL.  This crate is the from-scratch substitute for that substrate:
//! a small but complete in-memory relational engine providing
//!
//! * typed [`Value`]s (including the special `⊥` and `?` markers used by
//!   world-set decompositions and template relations),
//! * named [`Schema`]s and [`Relation`]s with both set and bag semantics,
//! * boolean [`Predicate`]s over tuples,
//! * a relational-algebra AST ([`RaExpr`]) with the named-perspective
//!   operators used in the paper (selection, projection, product, union,
//!   difference, renaming) and a straightforward single-world evaluator,
//! * hash [`Index`]es used by the higher layers for join and chase
//!   acceleration,
//! * a [`Database`] catalog mapping relation names to relations, and
//! * the **unified query engine** ([`engine`]): the [`QueryBackend`] trait,
//!   the shared plan executor and the catalog-generic rule-based
//!   [`optimizer`] that every possible-worlds representation of this
//!   repository (single-world, WSD, UWSDT, U-relations, explicit worlds)
//!   evaluates queries through, and
//! * the **vectorized columnar executor** ([`batch`], [`kernels`]): plans on
//!   the single-world backend evaluate batch-at-a-time over flat `i64` /
//!   dictionary-encoded columns with selection vectors, bit-identical to the
//!   operator path (toggle with [`engine::EngineConfig::columnar`]), and
//! * the **lineage layer** ([`lineage`]): boolean provenance over
//!   finite-domain world variables with an annotated executor, a safe-plan
//!   (extensional) evaluator, and a Shannon-expansion d-tree compiler — the
//!   engine-side half of the tiered `Session::confidence` strategy — plus
//!   the shared Hoeffding (ε, δ) sample planner ([`approx`]) every
//!   Monte-Carlo confidence estimator draws its trial blocks from, and
//! * the deterministic fan-out/fan-in [`par::WorkerPool`] behind
//!   [`engine::EngineConfig::threads`]: scans, selections, projections, the
//!   equi-join build/probe phases and the columnar kernels hand out row
//!   morsels across cores with output canonicalized to the serial order for
//!   any thread count.
//!
//! Everything in the world-set stack (`ws-core`, `ws-uwsdt`, `ws-census`,
//! `ws-baselines`) is built on top of these types; the single-world evaluator
//! in [`algebra`] doubles as the "0% density / one world" baseline of the
//! paper's Figure 30.

pub mod algebra;
pub mod approx;
pub mod batch;
pub mod constraint;
pub mod cursor;
pub mod database;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod index;
pub mod kernels;
pub mod lineage;
pub mod optimizer;
pub mod par;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use algebra::{evaluate, evaluate_checked, evaluate_set, RaExpr};
pub use approx::{hoeffding_samples, ApproxConfig};
pub use batch::{Column, ColumnBatch};
pub use constraint::{
    world_satisfies, AttrComparison, Dependency, EqualityGeneratingDependency, FunctionalDependency,
};
pub use cursor::Cursor;
pub use database::Database;
pub use engine::{
    evaluate_query, evaluate_query_with, execute, EngineConfig, ExecContext, QueryBackend,
    SchemaCatalog, TempNames, WriteBackend,
};
pub use error::{RelationalError, Result};
pub use fingerprint::{fingerprint, normalize_plan, normalize_predicate, plan_key};
pub use index::Index;
pub use lineage::{Clause, DtreeCompiler, LineageDb, LineageRelation, VarTable};
pub use optimizer::{estimated_cost, estimated_rows, evaluate_optimized, optimize, output_attrs};
pub use par::WorkerPool;
pub use predicate::{CmpOp, CompiledPredicate, Predicate};
pub use relation::Relation;
pub use schema::{AttrName, RelName, Schema};
pub use tuple::Tuple;
pub use value::Value;
