//! A database: a catalog of named relations (one possible world).

use crate::error::{RelationalError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use std::collections::BTreeMap;
use std::fmt;

/// A relational database over some schema `Σ = (R1[U1], …, Rk[Uk])`.
///
/// In the world-set setting a `Database` plays the role of one *possible
/// world* `A` (§2/§3); the explicit world-enumeration oracle in
/// `ws-baselines` manipulates sets of these.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Add (or replace) a relation, keyed by its schema's relation name.
    pub fn insert_relation(&mut self, relation: Relation) {
        self.relations
            .insert(relation.schema().relation().to_string(), relation);
    }

    /// Add an empty relation for the given schema.
    pub fn create_relation(&mut self, schema: Schema) {
        self.insert_relation(Relation::new(schema));
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Mutable lookup.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Remove a relation, returning it if present.
    pub fn remove_relation(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Whether a relation with the given name exists.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations, in sorted order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Iterate over `(name, relation)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Set-semantics equality of two databases: same relation names, and each
    /// pair of relations equal as *sets* of tuples.  This is the equality
    /// used when comparing possible worlds.
    pub fn world_eq(&self, other: &Database) -> bool {
        if self.relation_names() != other.relation_names() {
            return false;
        }
        self.relations
            .iter()
            .all(|(name, rel)| other.relations.get(name).is_some_and(|o| rel.set_eq(o)))
    }

    /// A canonical key for this database under world (set) semantics, usable
    /// for deduplicating possible worlds in `BTreeSet`s.
    pub fn canonical_key(&self) -> Vec<(String, Vec<crate::tuple::Tuple>)> {
        self.relations
            .iter()
            .map(|(name, rel)| {
                let mut rows: Vec<_> = rel.row_set().into_iter().collect();
                rows.sort();
                (name.clone(), rows)
            })
            .collect()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "-- {name} --")?;
            write!(f, "{rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn db() -> Database {
        let mut d = Database::new();
        let schema = Schema::new("R", &["A"]).unwrap();
        let mut r = Relation::new(schema);
        r.push_values([1i64]).unwrap();
        r.push_values([2i64]).unwrap();
        d.insert_relation(r);
        d.create_relation(Schema::new("S", &["X", "Y"]).unwrap());
        d
    }

    #[test]
    fn catalog_operations() {
        let mut d = db();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.relation_names(), vec!["R", "S"]);
        assert!(d.contains_relation("R"));
        assert!(d.relation("R").is_ok());
        assert!(d.relation("T").is_err());
        d.relation_mut("S")
            .unwrap()
            .push_values([1i64, 2i64])
            .unwrap();
        assert_eq!(d.relation("S").unwrap().len(), 1);
        assert!(d.remove_relation("S").is_some());
        assert!(d.remove_relation("S").is_none());
        assert_eq!(d.iter().count(), 1);
    }

    #[test]
    fn world_equality_ignores_row_order_and_duplicates() {
        let mut a = db();
        let mut b = db();
        b.relation_mut("R").unwrap().rows_mut().reverse();
        // Duplicate row does not change the world under set semantics.
        b.relation_mut("R")
            .unwrap()
            .push(Tuple::from_iter([1i64]))
            .unwrap();
        assert!(a.world_eq(&b));
        a.relation_mut("R").unwrap().push_values([3i64]).unwrap();
        assert!(!a.world_eq(&b));

        let mut c = db();
        c.remove_relation("S");
        assert!(!c.world_eq(&db()));
    }

    #[test]
    fn canonical_key_is_order_insensitive() {
        let mut a = db();
        let mut b = db();
        a.relation_mut("R").unwrap().rows_mut().reverse();
        b.relation_mut("R")
            .unwrap()
            .push(Tuple::from_iter([2i64]))
            .unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn display_lists_relations() {
        let s = db().to_string();
        assert!(s.contains("-- R --"));
        assert!(s.contains("-- S --"));
    }
}
