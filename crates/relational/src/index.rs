//! Hash indexes over relation columns.
//!
//! The paper tunes its PostgreSQL-based evaluation "by employing indices and
//! materializing often used temporary results" (§5).  The world-set layers
//! use these indexes for equi-join evaluation on templates and for finding
//! candidate tuple pairs during the chase of functional dependencies.

use crate::error::Result;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A hash index from the values of one or more key columns to row positions.
#[derive(Clone, Debug, Default)]
pub struct Index {
    /// Positions of the key attributes inside the indexed relation's schema.
    key_positions: Vec<usize>,
    /// key values → row indices in the indexed relation.
    map: HashMap<Vec<Value>, Vec<usize>>,
}

impl Index {
    /// Build an index on the given key attributes of a relation.
    pub fn build(relation: &Relation, key_attrs: &[&str]) -> Result<Self> {
        let mut key_positions = Vec::with_capacity(key_attrs.len());
        for a in key_attrs {
            key_positions.push(relation.schema().position_of(a)?);
        }
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (row_idx, row) in relation.rows().iter().enumerate() {
            let key: Vec<Value> = key_positions.iter().map(|&p| row[p].clone()).collect();
            map.entry(key).or_default().push(row_idx);
        }
        Ok(Index { key_positions, map })
    }

    /// The attribute positions this index is keyed on.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Row indices whose key equals `key` (empty slice if none).
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row indices matching the key extracted from another tuple, given the
    /// positions of the probe attributes in that tuple.
    pub fn probe(&self, tuple: &Tuple, probe_positions: &[usize]) -> &[usize] {
        let key: Vec<Value> = probe_positions.iter().map(|&p| tuple[p].clone()).collect();
        self.map.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate over `(key, row indices)` groups.
    pub fn groups(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<usize>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel() -> Relation {
        let schema = Schema::new("R", &["A", "B"]).unwrap();
        let mut r = Relation::new(schema);
        r.push_values([1i64, 10]).unwrap();
        r.push_values([2i64, 20]).unwrap();
        r.push_values([1i64, 30]).unwrap();
        r
    }

    #[test]
    fn single_column_lookup() {
        let r = rel();
        let idx = Index::build(&r, &["A"]).unwrap();
        assert_eq!(idx.lookup(&[Value::int(1)]), &[0, 2]);
        assert_eq!(idx.lookup(&[Value::int(2)]), &[1]);
        assert!(idx.lookup(&[Value::int(9)]).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.key_positions(), &[0]);
    }

    #[test]
    fn multi_column_lookup_and_probe() {
        let r = rel();
        let idx = Index::build(&r, &["A", "B"]).unwrap();
        assert_eq!(idx.lookup(&[Value::int(1), Value::int(30)]), &[2]);
        // Probe with a tuple whose layout differs: (B, A) at positions (0, 1).
        let probe = Tuple::from_iter([30i64, 1i64]);
        assert_eq!(idx.probe(&probe, &[1, 0]), &[2]);
        assert_eq!(idx.groups().count(), 3);
    }

    #[test]
    fn unknown_key_attr_is_error() {
        assert!(Index::build(&rel(), &["Z"]).is_err());
    }
}
