//! Conditional tables (c-tables) of Imieliński & Lipski \[20\], as far as they
//! are needed to mirror the paper's comparison (§1): a WSDT can be read as a
//! c-table whose body is the template relation and whose global condition is
//! a conjunction — one conjunct per component — of disjunctions over the
//! component's local worlds.

use std::collections::BTreeMap;
use std::fmt;
use ws_core::{FieldId, Result as WsResult, WsError, Wsdt};
use ws_relational::{Relation, Tuple, Value};

/// A term of a c-table field: a constant or a named variable.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// A constant value.
    Constant(Value),
    /// A variable, identified by name.
    Variable(String),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Constant(v) => write!(f, "{v}"),
            Term::Variable(x) => write!(f, "{x}"),
        }
    }
}

/// The global condition of the c-table, in the normal form induced by a
/// WSDT: a conjunction over components of disjunctions over local worlds,
/// each local world being a conjunction of `variable = constant` equalities.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GlobalCondition {
    /// One conjunct per component: the list of its local worlds, each a list
    /// of `(variable, value)` equalities.
    pub conjuncts: Vec<Vec<Vec<(String, Value)>>>,
}

impl GlobalCondition {
    /// Number of satisfying assignments (product of the disjunct counts —
    /// the variables of different conjuncts are disjoint by construction).
    pub fn satisfying_assignments(&self) -> u128 {
        self.conjuncts
            .iter()
            .fold(1u128, |acc, c| acc.saturating_mul(c.len() as u128))
    }

    /// Whether an assignment (variable → value) satisfies the condition.
    pub fn satisfied_by(&self, assignment: &BTreeMap<String, Value>) -> bool {
        self.conjuncts.iter().all(|disjunction| {
            disjunction.iter().any(|world| {
                world
                    .iter()
                    .all(|(var, value)| assignment.get(var) == Some(value))
            })
        })
    }
}

impl fmt::Display for GlobalCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "true");
        }
        for (i, disjunction) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, world) in disjunction.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "(")?;
                for (k, (var, value)) in world.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{var}={value}")?;
                }
                write!(f, ")")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A c-table over one relation: a table of terms plus a global condition.
#[derive(Clone, Debug, PartialEq)]
pub struct CTable {
    /// The relation name.
    pub relation: String,
    /// The attribute names.
    pub attrs: Vec<String>,
    /// The table body: tuples of terms.
    pub rows: Vec<Vec<Term>>,
    /// The global condition `Φ`.
    pub condition: GlobalCondition,
}

impl CTable {
    /// Build the c-table view of one relation of a WSDT (the §1 equivalence).
    ///
    /// Every `?` placeholder of the template becomes a fresh variable named
    /// after its field (`R_t1_S`), and every component contributes one
    /// conjunct to the global condition.
    pub fn from_wsdt(wsdt: &Wsdt, relation: &str) -> WsResult<Self> {
        let template = wsdt
            .templates
            .get(relation)
            .ok_or_else(|| WsError::unknown_relation(relation))?;
        let slots = &wsdt.tuple_slots[relation];
        let attrs: Vec<String> = template
            .schema()
            .attrs()
            .iter()
            .map(|a| a.to_string())
            .collect();
        let var_name =
            |field: &FieldId| format!("{}_{}_{}", field.relation, field.tuple, field.attr);
        let mut rows = Vec::with_capacity(template.len());
        for (row, &slot) in template.rows().iter().zip(slots) {
            let mut terms = Vec::with_capacity(attrs.len());
            for (i, attr) in attrs.iter().enumerate() {
                if row[i].is_unknown() {
                    terms.push(Term::Variable(var_name(&FieldId::new(
                        relation, slot, attr,
                    ))));
                } else {
                    terms.push(Term::Constant(row[i].clone()));
                }
            }
            rows.push(terms);
        }
        let mut conjuncts = Vec::new();
        for component in &wsdt.components {
            if !component.fields.iter().any(|f| f.in_relation(relation)) {
                continue;
            }
            let mut disjunction = Vec::with_capacity(component.rows.len());
            for local in &component.rows {
                let mut equalities = Vec::new();
                for (pos, field) in component.fields.iter().enumerate() {
                    if field.in_relation(relation) && !local.values[pos].is_bottom() {
                        equalities.push((var_name(field), local.values[pos].clone()));
                    }
                }
                disjunction.push(equalities);
            }
            conjuncts.push(disjunction);
        }
        Ok(CTable {
            relation: relation.to_string(),
            attrs,
            rows,
            condition: GlobalCondition { conjuncts },
        })
    }

    /// The variables appearing in the table body.
    pub fn variables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .rows
            .iter()
            .flatten()
            .filter_map(|t| match t {
                Term::Variable(x) => Some(x.as_str()),
                Term::Constant(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Instantiate the c-table under a variable assignment, dropping rows
    /// with unassigned variables.
    pub fn instantiate(&self, assignment: &BTreeMap<String, Value>) -> WsResult<Relation> {
        let schema = ws_relational::Schema::new(
            &self.relation,
            &self.attrs.iter().map(String::as_str).collect::<Vec<_>>(),
        )?;
        let mut out = Relation::new(schema);
        if !self.condition.satisfied_by(assignment) {
            return Ok(out);
        }
        for row in &self.rows {
            let mut values = Vec::with_capacity(row.len());
            let mut complete = true;
            for term in row {
                match term {
                    Term::Constant(v) => values.push(v.clone()),
                    Term::Variable(x) => match assignment.get(x) {
                        Some(v) => values.push(v.clone()),
                        None => {
                            complete = false;
                            break;
                        }
                    },
                }
            }
            if complete {
                let tuple = Tuple::new(values);
                if !out.contains(&tuple) {
                    out.push(tuple)?;
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for CTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]", self.relation, self.attrs.join(", "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Term::to_string).collect();
            writeln!(f, "  ({})", cells.join(", "))?;
        }
        write!(f, "Φ = {}", self.condition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_core::wsd::example_census_wsd;

    fn census_ctable() -> CTable {
        let wsdt = Wsdt::from_wsd(&example_census_wsd()).unwrap();
        CTable::from_wsdt(&wsdt, "R").unwrap()
    }

    #[test]
    fn ctable_matches_the_introduction_example() {
        let ct = census_ctable();
        assert_eq!(ct.rows.len(), 2);
        assert_eq!(ct.attrs, vec!["S", "N", "M"]);
        // Names are constants, SSNs and marital statuses are variables.
        assert!(matches!(ct.rows[0][1], Term::Constant(_)));
        assert!(matches!(ct.rows[0][0], Term::Variable(_)));
        assert_eq!(ct.variables().len(), 4);
        // Global condition: 3 conjuncts (SSN pair, t1.M, t2.M) and
        // 3 · 2 · 4 = 24 satisfying assignments — the 24 worlds.
        assert_eq!(ct.condition.conjuncts.len(), 3);
        assert_eq!(ct.condition.satisfying_assignments(), 24);
        let shown = ct.to_string();
        assert!(shown.contains("Φ ="));
        assert!(shown.contains("Smith"));
    }

    #[test]
    fn instantiation_recovers_a_world() {
        let ct = census_ctable();
        // Choose the first local world of each component.
        let assignment: BTreeMap<String, Value> = [
            ("R_t1_S".to_string(), Value::int(185)),
            ("R_t2_S".to_string(), Value::int(186)),
            ("R_t1_M".to_string(), Value::int(1)),
            ("R_t2_M".to_string(), Value::int(2)),
        ]
        .into();
        assert!(ct.condition.satisfied_by(&assignment));
        let world = ct.instantiate(&assignment).unwrap();
        assert_eq!(world.len(), 2);
        assert!(world.contains(&Tuple::from_iter([
            Value::int(185),
            Value::text("Smith"),
            Value::int(1)
        ])));

        // An assignment violating the SSN component yields no rows.
        let bad: BTreeMap<String, Value> = [
            ("R_t1_S".to_string(), Value::int(185)),
            ("R_t2_S".to_string(), Value::int(185)),
            ("R_t1_M".to_string(), Value::int(1)),
            ("R_t2_M".to_string(), Value::int(2)),
        ]
        .into();
        assert!(!ct.condition.satisfied_by(&bad));
        assert!(ct.instantiate(&bad).unwrap().is_empty());
    }

    #[test]
    fn unknown_relation_is_rejected_and_empty_condition_is_true() {
        let wsdt = Wsdt::from_wsd(&example_census_wsd()).unwrap();
        assert!(CTable::from_wsdt(&wsdt, "NOPE").is_err());
        let cond = GlobalCondition::default();
        assert_eq!(cond.satisfying_assignments(), 1);
        assert!(cond.satisfied_by(&BTreeMap::new()));
        assert_eq!(cond.to_string(), "true");
    }
}
