//! ULDB-style x-relations: tuples with alternatives.
//!
//! The related-work discussion of the paper compares WSDs against ULDBs
//! (Benjelloun et al. \[11\]) and the "working models" of \[28\]: relations whose
//! rows are **x-tuples**, each a set of mutually exclusive alternatives,
//! optionally allowed to be absent altogether (a *maybe* x-tuple).  Cross-
//! x-tuple correlations require lineage in full ULDBs; the comparison the
//! paper draws, however, is about representation *size*: an or-set relation
//! with `k` uncertain fields per tuple has a WSD of linear size but an
//! x-relation needs one alternative per combination of field values — in
//! general exponentially many.  This module implements the x-relation model
//! far enough to reproduce that comparison and to serve as an additional
//! baseline in the ablation benches:
//!
//! * [`XTuple`] / [`UldbRelation`] — alternatives, maybe-tuples, world
//!   counting and world enumeration (x-tuples are independent, as in \[28\]),
//! * [`UldbRelation::from_or_relation`] — the blow-up conversion from or-set
//!   relations,
//! * [`UldbRelation::from_tuple_independent`] — the (linear) conversion from
//!   tuple-independent probabilistic relations, and
//! * possible-tuple and confidence computation for the independent case.

use std::collections::BTreeSet;

use ws_core::{Result as WsResult, WsError};
use ws_relational::{Relation, Schema, Tuple};

use crate::orset::OrSetRelation;
use crate::tuple_independent::TupleIndependentRelation;

/// One x-tuple: a set of mutually exclusive alternatives with probabilities.
///
/// The probabilities must sum to at most one; the remaining mass is the
/// probability that the x-tuple contributes no tuple at all (a *maybe*
/// x-tuple has strictly positive remaining mass).
#[derive(Clone, Debug, PartialEq)]
pub struct XTuple {
    alternatives: Vec<(Tuple, f64)>,
}

impl XTuple {
    /// Build an x-tuple from weighted alternatives.
    pub fn new(alternatives: Vec<(Tuple, f64)>) -> WsResult<Self> {
        if alternatives.is_empty() {
            return Err(WsError::invalid(
                "an x-tuple needs at least one alternative",
            ));
        }
        let total: f64 = alternatives.iter().map(|(_, p)| p).sum();
        if alternatives.iter().any(|(_, p)| *p < 0.0) || total > 1.0 + 1e-9 {
            return Err(WsError::invalid(format!(
                "alternative probabilities must be non-negative and sum to ≤ 1 (got {total})"
            )));
        }
        Ok(XTuple { alternatives })
    }

    /// An x-tuple whose alternatives are equally likely and exhaustive.
    pub fn uniform(alternatives: Vec<Tuple>) -> WsResult<Self> {
        let n = alternatives.len();
        if n == 0 {
            return Err(WsError::invalid(
                "an x-tuple needs at least one alternative",
            ));
        }
        XTuple::new(
            alternatives
                .into_iter()
                .map(|t| (t, 1.0 / n as f64))
                .collect(),
        )
    }

    /// A certain x-tuple.
    pub fn certain(tuple: Tuple) -> Self {
        XTuple {
            alternatives: vec![(tuple, 1.0)],
        }
    }

    /// The alternatives with their probabilities.
    pub fn alternatives(&self) -> &[(Tuple, f64)] {
        &self.alternatives
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.alternatives.len()
    }

    /// Whether there are no alternatives (never true for a valid x-tuple).
    pub fn is_empty(&self) -> bool {
        self.alternatives.is_empty()
    }

    /// The probability that the x-tuple contributes no tuple.
    pub fn absence_probability(&self) -> f64 {
        (1.0 - self.alternatives.iter().map(|(_, p)| p).sum::<f64>()).max(0.0)
    }

    /// Whether the x-tuple may be absent (a "maybe" x-tuple).
    pub fn is_maybe(&self) -> bool {
        self.absence_probability() > 1e-9
    }

    /// The number of choices a world makes for this x-tuple.
    pub fn choice_count(&self) -> usize {
        self.alternatives.len() + usize::from(self.is_maybe())
    }
}

/// An x-relation: a schema plus a list of independent x-tuples.
#[derive(Clone, Debug, PartialEq)]
pub struct UldbRelation {
    schema: Schema,
    xtuples: Vec<XTuple>,
}

impl UldbRelation {
    /// An empty x-relation.
    pub fn new(schema: Schema) -> Self {
        UldbRelation {
            schema,
            xtuples: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The x-tuples.
    pub fn xtuples(&self) -> &[XTuple] {
        &self.xtuples
    }

    /// Append an x-tuple, validating the arity of every alternative.
    pub fn push(&mut self, xtuple: XTuple) -> WsResult<()> {
        for (t, _) in xtuple.alternatives() {
            if t.arity() != self.schema.arity() {
                return Err(WsError::invalid(format!(
                    "alternative arity {} does not match schema arity {}",
                    t.arity(),
                    self.schema.arity()
                )));
            }
        }
        self.xtuples.push(xtuple);
        Ok(())
    }

    /// Number of x-tuples.
    pub fn len(&self) -> usize {
        self.xtuples.len()
    }

    /// Whether the relation has no x-tuples.
    pub fn is_empty(&self) -> bool {
        self.xtuples.is_empty()
    }

    /// Total number of stored alternatives — the representation-size metric
    /// the paper's related-work comparison is about.
    pub fn alternative_count(&self) -> usize {
        self.xtuples.iter().map(XTuple::len).sum()
    }

    /// The number of represented worlds (saturating).
    pub fn world_count(&self) -> u128 {
        self.xtuples
            .iter()
            .fold(1u128, |acc, x| acc.saturating_mul(x.choice_count() as u128))
    }

    /// The blow-up conversion from an or-set relation: every row becomes one
    /// x-tuple whose alternatives are the combinations of its or-set fields.
    ///
    /// A row with `k` uncertain fields of sizes `d1 … dk` produces
    /// `d1 · … · dk` alternatives, versus the `d1 + … + dk` component rows of
    /// its WSD — the exponential gap of the related-work comparison.
    pub fn from_or_relation(orset: &OrSetRelation) -> WsResult<Self> {
        let mut out = UldbRelation::new(orset.schema().clone());
        for row in orset.rows() {
            let mut combos: Vec<Vec<ws_relational::Value>> = vec![Vec::new()];
            for field in row {
                let mut next = Vec::with_capacity(combos.len() * field.len());
                for combo in &combos {
                    for v in field.values() {
                        let mut extended = combo.clone();
                        extended.push(v.clone());
                        next.push(extended);
                    }
                }
                combos = next;
            }
            out.push(XTuple::uniform(
                combos.into_iter().map(Tuple::new).collect(),
            )?)?;
        }
        Ok(out)
    }

    /// The (linear) conversion from a tuple-independent probabilistic
    /// relation: one maybe x-tuple per row.
    pub fn from_tuple_independent(relation: &TupleIndependentRelation) -> WsResult<Self> {
        let mut out = UldbRelation::new(relation.schema().clone());
        for (tuple, confidence) in relation.rows() {
            out.push(XTuple::new(vec![(tuple.clone(), *confidence)])?)?;
        }
        Ok(out)
    }

    /// The distinct tuples appearing in at least one world.
    pub fn possible_tuples(&self) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        let mut seen: BTreeSet<&Tuple> = BTreeSet::new();
        for x in &self.xtuples {
            for (t, _) in x.alternatives() {
                if seen.insert(t) {
                    out.push(t.clone()).expect("arity checked on push");
                }
            }
        }
        out
    }

    /// The confidence of a tuple: the probability that some x-tuple
    /// contributes it (x-tuples are independent, alternatives within one
    /// x-tuple are exclusive).
    pub fn conf(&self, tuple: &Tuple) -> f64 {
        let mut absent = 1.0;
        for x in &self.xtuples {
            let here: f64 = x
                .alternatives()
                .iter()
                .filter(|(t, _)| t == tuple)
                .map(|(_, p)| p)
                .sum();
            absent *= 1.0 - here;
        }
        1.0 - absent
    }

    /// Enumerate every world with its probability (testing / oracle use).
    pub fn enumerate_worlds(&self, limit: u128) -> WsResult<Vec<(Relation, f64)>> {
        if self.world_count() > limit {
            return Err(WsError::invalid(format!(
                "enumeration of {} worlds exceeds the limit {limit}",
                self.world_count()
            )));
        }
        let mut worlds: Vec<(Vec<Tuple>, f64)> = vec![(Vec::new(), 1.0)];
        for x in &self.xtuples {
            let mut next = Vec::with_capacity(worlds.len() * x.choice_count());
            for (tuples, p) in &worlds {
                for (alt, q) in x.alternatives() {
                    let mut extended = tuples.clone();
                    extended.push(alt.clone());
                    next.push((extended, p * q));
                }
                if x.is_maybe() {
                    next.push((tuples.clone(), p * x.absence_probability()));
                }
            }
            worlds = next;
        }
        worlds
            .into_iter()
            .map(|(tuples, p)| {
                let mut rel = Relation::new(self.schema.clone());
                for t in tuples {
                    rel.insert(t).map_err(WsError::from)?;
                }
                Ok((rel, p))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orset::OrSet;
    use ws_relational::Value;

    fn or_relation_with_wide_row(fields: usize, domain: usize) -> OrSetRelation {
        let attrs: Vec<String> = (0..fields).map(|i| format!("A{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let mut rel = OrSetRelation::new(Schema::new("R", &attr_refs).unwrap());
        let row: Vec<OrSet> = (0..fields)
            .map(|_| OrSet::of((0..domain as i64).collect::<Vec<_>>()))
            .collect();
        rel.push(row).unwrap();
        rel
    }

    #[test]
    fn xtuple_validation_and_metrics() {
        let t = |v: i64| Tuple::from_iter([Value::int(v)]);
        assert!(XTuple::new(vec![]).is_err());
        assert!(XTuple::uniform(vec![]).is_err());
        assert!(XTuple::new(vec![(t(1), 0.7), (t(2), 0.6)]).is_err());
        assert!(XTuple::new(vec![(t(1), -0.1)]).is_err());
        let x = XTuple::new(vec![(t(1), 0.3), (t(2), 0.4)]).unwrap();
        assert_eq!(x.len(), 2);
        assert!(!x.is_empty());
        assert!(x.is_maybe());
        assert!((x.absence_probability() - 0.3).abs() < 1e-12);
        assert_eq!(x.choice_count(), 3);
        let certain = XTuple::certain(t(5));
        assert!(!certain.is_maybe());
        assert_eq!(certain.choice_count(), 1);
    }

    #[test]
    fn or_set_conversion_exhibits_the_exponential_blowup() {
        // A single row with 6 binary or-set fields: the WSD (and the or-set
        // relation itself) stores 12 values, the x-relation needs 2^6 = 64
        // alternatives.
        let orset = or_relation_with_wide_row(6, 2);
        let uldb = UldbRelation::from_or_relation(&orset).unwrap();
        assert_eq!(uldb.len(), 1);
        assert_eq!(uldb.alternative_count(), 64);
        assert_eq!(uldb.world_count(), 64);
        // The WSD of the same or-set relation is linear: 6 components with
        // 2 rows each.
        let wsd = orset.to_wsd().unwrap();
        let wsd_rows: usize = wsd.components().map(|(_, c)| c.len()).sum();
        assert_eq!(wsd_rows, 12);
        assert_eq!(wsd.world_count(), 64);
    }

    #[test]
    fn tuple_independent_conversion_and_confidence() {
        let db = crate::tuple_independent::figure6_database();
        let s = &db.relations()[0];
        let uldb = UldbRelation::from_tuple_independent(s).unwrap();
        assert_eq!(uldb.len(), s.len());
        assert_eq!(uldb.alternative_count(), s.len());
        for (tuple, confidence) in s.rows() {
            assert!((uldb.conf(tuple) - confidence).abs() < 1e-12);
        }
        // Worlds of the x-relation match the tuple-independent semantics.
        let worlds = uldb.enumerate_worlds(1 << 10).unwrap();
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(worlds.len(), 4, "two maybe x-tuples give four worlds");
    }

    #[test]
    fn possible_tuples_and_world_enumeration() {
        let schema = Schema::new("R", &["A"]).unwrap();
        let mut uldb = UldbRelation::new(schema);
        assert!(uldb.is_empty());
        uldb.push(
            XTuple::uniform(vec![
                Tuple::from_iter([Value::int(1)]),
                Tuple::from_iter([Value::int(2)]),
            ])
            .unwrap(),
        )
        .unwrap();
        uldb.push(XTuple::certain(Tuple::from_iter([Value::int(3)])))
            .unwrap();
        assert_eq!(uldb.possible_tuples().len(), 3);
        assert_eq!(uldb.world_count(), 2);
        let worlds = uldb.enumerate_worlds(10).unwrap();
        assert_eq!(worlds.len(), 2);
        for (world, _) in &worlds {
            assert!(world.contains(&Tuple::from_iter([Value::int(3)])));
            assert_eq!(world.len(), 2);
        }
        assert!((uldb.conf(&Tuple::from_iter([Value::int(1)])) - 0.5).abs() < 1e-12);
        assert!((uldb.conf(&Tuple::from_iter([Value::int(3)])) - 1.0).abs() < 1e-12);
        assert_eq!(uldb.conf(&Tuple::from_iter([Value::int(9)])), 0.0);
        // Arity mismatches and over-budget enumerations are rejected.
        assert!(uldb
            .push(XTuple::certain(Tuple::from_iter([
                Value::int(1),
                Value::int(2)
            ])))
            .is_err());
        assert!(uldb.enumerate_worlds(1).is_err());
    }
}
