//! # ws-baselines — the representation systems the paper compares against
//!
//! * [`orset`] — or-set relations \[21\]: the incomplete-information format the
//!   introduction starts from; expressive enough for dirty input data but not
//!   closed under queries or cleaning.
//! * [`tuple_independent`] — tuple-independent probabilistic databases
//!   (Dalvi & Suciu \[15\]), which probabilistic WSDs strictly generalize
//!   (Example 5 / Figure 7).
//! * [`ctable`] — the c-table view \[20\] of a WSDT (the §1 equivalence).
//! * [`uldb`] — ULDB-style x-relations (tuples with alternatives, \[11\]/\[28\]),
//!   used to reproduce the representation-size comparison of the related-work
//!   discussion (or-set relations are linear as WSDs, exponential as
//!   x-relations).
//! * [`explicit`] — the explicit world-enumeration engine: the naive
//!   baseline and the correctness oracle used throughout the test suite.

pub mod ctable;
pub mod explicit;
pub mod orset;
pub mod tuple_independent;
pub mod uldb;

pub use ctable::{CTable, GlobalCondition, Term};
pub use explicit::{chase_worlds, confidence, possible_tuples, query_distribution, query_worlds};
pub use orset::{tightest_orset_cover, OrSet, OrSetRelation};
pub use tuple_independent::{figure6_database, TupleIndependentDb, TupleIndependentRelation};
pub use uldb::{UldbRelation, XTuple};
