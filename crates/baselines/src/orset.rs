//! Or-set relations \[21\]: the weakest representation system the paper starts
//! from.
//!
//! An or-set relation is a relation whose fields hold finite sets of possible
//! values; every combination of choices yields a possible world, and all
//! fields are independent.  Or-set relations cannot represent the result of
//! data cleaning (the introduction's SSN-uniqueness example) or of most
//! queries — which is exactly why WSDs exist — but they are the natural input
//! format for dirty data and convert losslessly *into* WSDs and UWSDTs.

use std::collections::BTreeSet;
use ws_core::{FieldId, Result as WsResult, WsError, Wsd};
use ws_relational::{Relation, Schema, Tuple, Value};
use ws_uwsdt::{from_or_relation, OrField, Result as UwsdtResult, Uwsdt};

/// An or-set field: one or more possible values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrSet {
    values: Vec<Value>,
}

impl OrSet {
    /// A certain field (singleton or-set).
    pub fn certain(value: impl Into<Value>) -> Self {
        OrSet {
            values: vec![value.into()],
        }
    }

    /// An or-set of several possible values (duplicates removed, order kept).
    pub fn of<V: Into<Value>>(values: Vec<V>) -> Self {
        let mut out: Vec<Value> = Vec::new();
        for v in values {
            let v = v.into();
            if !out.contains(&v) {
                out.push(v);
            }
        }
        OrSet { values: out }
    }

    /// The possible values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of possible values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the or-set is empty (an invalid field).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the field is certain (exactly one possible value).
    pub fn is_certain(&self) -> bool {
        self.values.len() == 1
    }
}

/// A relation with or-set fields.
#[derive(Clone, Debug, PartialEq)]
pub struct OrSetRelation {
    schema: Schema,
    rows: Vec<Vec<OrSet>>,
}

impl OrSetRelation {
    /// Create an empty or-set relation.
    pub fn new(schema: Schema) -> Self {
        OrSetRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<OrSet>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add a row of or-set fields.
    pub fn push(&mut self, row: Vec<OrSet>) -> WsResult<()> {
        if row.len() != self.schema.arity() {
            return Err(WsError::invalid(format!(
                "or-set row arity {} does not match schema arity {}",
                row.len(),
                self.schema.arity()
            )));
        }
        if row.iter().any(OrSet::is_empty) {
            return Err(WsError::invalid("or-set fields must be non-empty"));
        }
        self.rows.push(row);
        Ok(())
    }

    /// The number of possible worlds (product of the or-set sizes).
    pub fn world_count(&self) -> u128 {
        self.rows
            .iter()
            .flat_map(|row| row.iter())
            .fold(1u128, |acc, f| acc.saturating_mul(f.len() as u128))
    }

    /// Convert to a WSD: each field becomes its own component with uniform
    /// probabilities (the paper notes this conversion is linear).
    pub fn to_wsd(&self) -> WsResult<Wsd> {
        let mut wsd = Wsd::new();
        let name = self.schema.relation().to_string();
        let attrs: Vec<&str> = self.schema.attrs().iter().map(|a| a.as_ref()).collect();
        wsd.register_relation(&name, &attrs, self.rows.len())?;
        for (t, row) in self.rows.iter().enumerate() {
            for (i, field) in row.iter().enumerate() {
                let fid = FieldId::new(&name, t, attrs[i]);
                if field.is_certain() {
                    wsd.set_certain(fid, field.values[0].clone())?;
                } else {
                    wsd.set_uniform(fid, field.values.clone())?;
                }
            }
        }
        Ok(wsd)
    }

    /// Convert to a UWSDT (template + one component per uncertain field).
    pub fn to_uwsdt(&self) -> UwsdtResult<Uwsdt> {
        let mut template = Relation::new(self.schema.clone());
        let mut noise = Vec::new();
        for (t, row) in self.rows.iter().enumerate() {
            let mut values = Vec::with_capacity(row.len());
            for (i, field) in row.iter().enumerate() {
                if field.is_certain() {
                    values.push(field.values[0].clone());
                } else {
                    values.push(field.values[0].clone()); // replaced below
                    noise.push(OrField::uniform(
                        t,
                        self.schema.attrs()[i].as_ref(),
                        field.values.clone(),
                    ));
                }
            }
            template
                .push(Tuple::new(values))
                .expect("row arity was checked on insert");
        }
        from_or_relation(&template, &noise)
    }

    /// Enumerate the possible worlds (each world is one fully chosen
    /// relation).  Uses set semantics per world.
    pub fn worlds(&self, limit: u128) -> WsResult<Vec<Relation>> {
        let count = self.world_count();
        if count > limit {
            return Err(WsError::TooManyWorlds {
                worlds: count,
                limit,
            });
        }
        let fields: Vec<&OrSet> = self.rows.iter().flat_map(|row| row.iter()).collect();
        let arity = self.schema.arity();
        let mut choice = vec![0usize; fields.len()];
        let mut out = Vec::new();
        loop {
            let mut rel = Relation::new(self.schema.clone());
            for (t, _) in self.rows.iter().enumerate() {
                let values: Vec<Value> = (0..arity)
                    .map(|i| fields[t * arity + i].values[choice[t * arity + i]].clone())
                    .collect();
                let tuple = Tuple::new(values);
                if !rel.contains(&tuple) {
                    rel.push(tuple)?;
                }
            }
            out.push(rel);
            let mut k = 0;
            loop {
                if k == fields.len() {
                    return Ok(out);
                }
                choice[k] += 1;
                if choice[k] < fields[k].len() {
                    break;
                }
                choice[k] = 0;
                k += 1;
            }
            if fields.is_empty() {
                return Ok(out);
            }
        }
    }

    /// Whether a given world-set is representable as *this* or-set relation,
    /// i.e. whether the or-set reading (all combinations of the per-field
    /// value sets) describes exactly the given set of relations.  Used to
    /// demonstrate the incompleteness of or-set relations (§1).
    pub fn represents_exactly(&self, worlds: &[Relation], limit: u128) -> WsResult<bool> {
        let mine = self.worlds(limit)?;
        let mine: Vec<&Relation> = mine.iter().collect();
        let all_mine_present = mine.iter().all(|w| worlds.iter().any(|o| o.set_eq(w)));
        let all_theirs_present = worlds.iter().all(|o| mine.iter().any(|w| w.set_eq(o)));
        Ok(all_mine_present && all_theirs_present)
    }
}

/// Build the tightest or-set relation covering a set of worlds of identical
/// cardinality: field `t.A` gets the set of values it takes across the
/// worlds.  (This is an over-approximation in general — the point of §1.)
pub fn tightest_orset_cover(worlds: &[Relation]) -> WsResult<OrSetRelation> {
    let first = worlds
        .first()
        .ok_or_else(|| WsError::invalid("need at least one world"))?;
    if worlds.iter().any(|w| w.len() != first.len()) {
        return Err(WsError::invalid("worlds must have equal cardinality"));
    }
    let mut out = OrSetRelation::new(first.schema().clone());
    for t in 0..first.len() {
        let mut row = Vec::with_capacity(first.schema().arity());
        for i in 0..first.schema().arity() {
            let mut values: Vec<Value> = Vec::new();
            let mut seen = BTreeSet::new();
            for w in worlds {
                let v = w
                    .rows()
                    .get(t)
                    .ok_or_else(|| WsError::invalid("worlds must have equal cardinality"))?[i]
                    .clone();
                if seen.insert(v.clone()) {
                    values.push(v);
                }
            }
            row.push(OrSet::of(values));
        }
        out.push(row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The introduction's or-set relation (32 worlds).
    fn intro_orset() -> OrSetRelation {
        let schema = Schema::new("R", &["S", "N", "M"]).unwrap();
        let mut rel = OrSetRelation::new(schema);
        rel.push(vec![
            OrSet::of(vec![185i64, 785]),
            OrSet::certain("Smith"),
            OrSet::of(vec![1i64, 2]),
        ])
        .unwrap();
        rel.push(vec![
            OrSet::of(vec![185i64, 186]),
            OrSet::certain("Brown"),
            OrSet::of(vec![1i64, 2, 3, 4]),
        ])
        .unwrap();
        rel
    }

    #[test]
    fn world_count_and_enumeration() {
        let rel = intro_orset();
        assert_eq!(rel.world_count(), 32);
        assert_eq!(rel.len(), 2);
        assert!(!rel.is_empty());
        let worlds = rel.worlds(100).unwrap();
        assert_eq!(worlds.len(), 32);
        assert!(rel.worlds(10).is_err());
    }

    #[test]
    fn conversion_to_wsd_preserves_worlds() {
        let rel = intro_orset();
        let wsd = rel.to_wsd().unwrap();
        wsd.validate().unwrap();
        assert_eq!(wsd.world_count(), 32);
        let worlds = wsd.rep().unwrap();
        assert_eq!(worlds.len(), 32);
        // The same worlds as direct enumeration.
        for w in rel.worlds(100).unwrap() {
            let mut db = ws_relational::Database::new();
            db.insert_relation(w);
            assert!(worlds.contains(&db));
        }
    }

    #[test]
    fn conversion_to_uwsdt_preserves_worlds() {
        let rel = intro_orset();
        let uwsdt = rel.to_uwsdt().unwrap();
        uwsdt.validate().unwrap();
        assert_eq!(uwsdt.world_count(), 32);
        // Names are certain, so the template holds them.
        let template = uwsdt.template("R").unwrap();
        assert_eq!(template.rows()[0][1], Value::text("Smith"));
        assert!(template.rows()[0][0].is_unknown());
    }

    #[test]
    fn orsets_cannot_represent_the_cleaned_world_set() {
        // Enforce SSN uniqueness on the 32 worlds: 24 remain.  The tightest
        // or-set cover of those 24 worlds regenerates all 32 → or-sets are
        // not expressive enough (the §1 argument).
        let rel = intro_orset();
        let cleaned: Vec<Relation> = rel
            .worlds(100)
            .unwrap()
            .into_iter()
            .filter(|w| w.distinct_column("S").unwrap().len() == w.len())
            .collect();
        assert_eq!(cleaned.len(), 24);
        let cover = tightest_orset_cover(&cleaned).unwrap();
        assert!(!cover.represents_exactly(&cleaned, 1000).unwrap());
        // But the original or-set relation does represent its own world-set.
        let own: Vec<Relation> = rel.worlds(100).unwrap();
        assert!(rel.represents_exactly(&own, 1000).unwrap());
    }

    #[test]
    fn invalid_rows_are_rejected() {
        let schema = Schema::new("R", &["A", "B"]).unwrap();
        let mut rel = OrSetRelation::new(schema);
        assert!(rel.push(vec![OrSet::certain(1i64)]).is_err());
        assert!(rel
            .push(vec![OrSet::of(Vec::<i64>::new()), OrSet::certain(1i64)])
            .is_err());
        // Duplicates inside an or-set are collapsed.
        let field = OrSet::of(vec![1i64, 1, 2]);
        assert_eq!(field.len(), 2);
        assert!(!field.is_certain());
        assert!(OrSet::certain(5i64).is_certain());
    }

    #[test]
    fn tightest_cover_requires_uniform_cardinality() {
        let schema = Schema::new("R", &["A"]).unwrap();
        let mut w1 = Relation::new(schema.clone());
        w1.push_values([1i64]).unwrap();
        let mut w2 = Relation::new(schema);
        w2.push_values([1i64]).unwrap();
        w2.push_values([2i64]).unwrap();
        assert!(tightest_orset_cover(&[w1, w2]).is_err());
        assert!(tightest_orset_cover(&[]).is_err());
    }
}
