//! Tuple-independent probabilistic databases (Dalvi & Suciu \[15\]).
//!
//! Every tuple carries a confidence and the tuples are mutually independent;
//! a possible world is any subset of the tuples, with probability equal to
//! the product of the per-tuple "in or out" probabilities.  The paper shows
//! (Example 5 / Figure 7) that probabilistic WSDs strictly generalize this
//! model: each tuple becomes a two-local-world component — the tuple with
//! probability `c`, or the empty (`⊥`) world with probability `1 − c`.

use ws_core::{Component, FieldId, Result as WsResult, WsError, Wsd};
use ws_relational::{Database, Schema, Tuple, Value};

/// One relation of a tuple-independent probabilistic database.
#[derive(Clone, Debug, PartialEq)]
pub struct TupleIndependentRelation {
    schema: Schema,
    rows: Vec<(Tuple, f64)>,
}

impl TupleIndependentRelation {
    /// Create an empty relation.
    pub fn new(schema: Schema) -> Self {
        TupleIndependentRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples with their confidences.
    pub fn rows(&self) -> &[(Tuple, f64)] {
        &self.rows
    }

    /// Number of (possible) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add a tuple with a confidence in `(0, 1]`.
    pub fn push(&mut self, tuple: Tuple, confidence: f64) -> WsResult<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(WsError::invalid("tuple arity does not match the schema"));
        }
        if !(confidence > 0.0 && confidence <= 1.0) {
            return Err(WsError::invalid(format!(
                "confidence {confidence} out of (0, 1]"
            )));
        }
        self.rows.push((tuple, confidence));
        Ok(())
    }
}

/// A tuple-independent probabilistic database: a set of relations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TupleIndependentDb {
    relations: Vec<TupleIndependentRelation>,
}

impl TupleIndependentDb {
    /// Create an empty database.
    pub fn new() -> Self {
        TupleIndependentDb::default()
    }

    /// Add a relation.
    pub fn add_relation(&mut self, relation: TupleIndependentRelation) {
        self.relations.push(relation);
    }

    /// The relations.
    pub fn relations(&self) -> &[TupleIndependentRelation] {
        &self.relations
    }

    /// Number of possible tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations
            .iter()
            .map(TupleIndependentRelation::len)
            .sum()
    }

    /// Number of possible worlds (`2^tuples`, saturating).
    pub fn world_count(&self) -> u128 {
        1u128
            .checked_shl(self.tuple_count() as u32)
            .unwrap_or(u128::MAX)
    }

    /// Convert to a probabilistic WSD, following Figure 7: one component per
    /// tuple, with a present local world (probability `c`) and an absent
    /// (`⊥`) local world (probability `1 − c`).  Tuples with confidence 1 get
    /// a single certain local world.
    pub fn to_wsd(&self) -> WsResult<Wsd> {
        let mut wsd = Wsd::new();
        for relation in &self.relations {
            let name = relation.schema().relation().to_string();
            let attrs: Vec<&str> = relation
                .schema()
                .attrs()
                .iter()
                .map(|a| a.as_ref())
                .collect();
            wsd.register_relation(&name, &attrs, relation.len())?;
            for (t, (tuple, confidence)) in relation.rows().iter().enumerate() {
                let fields: Vec<FieldId> =
                    attrs.iter().map(|a| FieldId::new(&name, t, *a)).collect();
                let mut component = Component::new(fields);
                component.push_row(tuple.values().to_vec(), *confidence)?;
                if *confidence < 1.0 {
                    component.push_row(
                        vec![Value::Bottom; relation.schema().arity()],
                        1.0 - confidence,
                    )?;
                }
                wsd.add_component(component)?;
            }
        }
        Ok(wsd)
    }

    /// Enumerate the possible worlds with their probabilities (for tests and
    /// small examples).
    pub fn worlds(&self, limit: u128) -> WsResult<Vec<(Database, f64)>> {
        let count = self.world_count();
        if count > limit {
            return Err(WsError::TooManyWorlds {
                worlds: count,
                limit,
            });
        }
        // Flatten (relation index, tuple, confidence).
        let all: Vec<(usize, &Tuple, f64)> = self
            .relations
            .iter()
            .enumerate()
            .flat_map(|(r, rel)| rel.rows().iter().map(move |(t, c)| (r, t, *c)))
            .collect();
        let n = all.len();
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0u64..(1u64 << n) {
            let mut prob = 1.0;
            let mut db = Database::new();
            for relation in &self.relations {
                db.create_relation(relation.schema().clone());
            }
            for (bit, (r, tuple, confidence)) in all.iter().enumerate() {
                let included = mask & (1 << bit) != 0;
                prob *= if included {
                    *confidence
                } else {
                    1.0 - confidence
                };
                if included {
                    let name = self.relations[*r].schema().relation().to_string();
                    let rel = db.relation_mut(&name)?;
                    if !rel.contains(tuple) {
                        rel.push((*tuple).clone())?;
                    }
                }
            }
            if prob > 0.0 {
                out.push((db, prob));
            }
        }
        Ok(out)
    }
}

/// Build the example database of Figure 6 (taken from Dalvi & Suciu): two
/// relations `S` and `T` with three independent tuples.
pub fn figure6_database() -> TupleIndependentDb {
    let mut s = TupleIndependentRelation::new(Schema::new("S", &["A", "B"]).unwrap());
    s.push(Tuple::from_iter([Value::text("m"), Value::int(1)]), 0.8)
        .unwrap();
    s.push(Tuple::from_iter([Value::text("n"), Value::int(1)]), 0.5)
        .unwrap();
    let mut t = TupleIndependentRelation::new(Schema::new("T", &["C", "D"]).unwrap());
    t.push(Tuple::from_iter([Value::int(1), Value::text("p")]), 0.6)
        .unwrap();
    let mut db = TupleIndependentDb::new();
    db.add_relation(s);
    db.add_relation(t);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_core::confidence;

    #[test]
    fn figure6_has_eight_worlds_with_paper_probabilities() {
        let db = figure6_database();
        assert_eq!(db.tuple_count(), 3);
        assert_eq!(db.world_count(), 8);
        let worlds = db.worlds(100).unwrap();
        assert_eq!(worlds.len(), 8);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // D3 = {s2, t1} has probability (1 − 0.8) · 0.5 · 0.6 = 0.06.
        let d3 = worlds
            .iter()
            .find(|(w, _)| {
                let s = w.relation("S").unwrap();
                let t = w.relation("T").unwrap();
                s.len() == 1
                    && s.contains(&Tuple::from_iter([Value::text("n"), Value::int(1)]))
                    && t.len() == 1
            })
            .unwrap();
        assert!((d3.1 - 0.06).abs() < 1e-9);
        // D8 = ∅ has probability 0.2 · 0.5 · 0.4 = 0.04.
        let d8 = worlds
            .iter()
            .find(|(w, _)| {
                w.relation("S").unwrap().is_empty() && w.relation("T").unwrap().is_empty()
            })
            .unwrap();
        assert!((d8.1 - 0.04).abs() < 1e-9);
    }

    #[test]
    fn conversion_to_wsd_matches_figure7() {
        let db = figure6_database();
        let wsd = db.to_wsd().unwrap();
        wsd.validate().unwrap();
        assert_eq!(wsd.component_count(), 3);
        let expected = ws_core::WorldSet::from_weighted_worlds(db.worlds(100).unwrap());
        let actual = wsd.rep().unwrap();
        assert!(expected.same_worlds(&actual));
        assert!(expected.same_distribution(&actual, 1e-9));
        // Tuple confidences are recovered by the WSD confidence operator.
        let c = confidence::conf(
            &wsd,
            "S",
            &Tuple::from_iter([Value::text("m"), Value::int(1)]),
        )
        .unwrap();
        assert!((c - 0.8).abs() < 1e-9);
        let c = confidence::conf(
            &wsd,
            "T",
            &Tuple::from_iter([Value::int(1), Value::text("p")]),
        )
        .unwrap();
        assert!((c - 0.6).abs() < 1e-9);
    }

    #[test]
    fn certain_tuples_get_single_local_world_components() {
        let mut s = TupleIndependentRelation::new(Schema::new("S", &["A"]).unwrap());
        s.push(Tuple::from_iter([1i64]), 1.0).unwrap();
        let mut db = TupleIndependentDb::new();
        db.add_relation(s);
        let wsd = db.to_wsd().unwrap();
        assert_eq!(wsd.component_count(), 1);
        assert_eq!(wsd.world_count(), 1);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let mut s = TupleIndependentRelation::new(Schema::new("S", &["A"]).unwrap());
        assert!(s.push(Tuple::from_iter([1i64, 2]), 0.5).is_err());
        assert!(s.push(Tuple::from_iter([1i64]), 0.0).is_err());
        assert!(s.push(Tuple::from_iter([1i64]), 1.5).is_err());
        assert!(s.is_empty());
        s.push(Tuple::from_iter([1i64]), 0.5).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows().len(), 1);
        let mut db = TupleIndependentDb::new();
        db.add_relation(s);
        assert_eq!(db.relations().len(), 1);
        assert!(db.worlds(1).is_err());
    }
}
