//! The explicit world-enumeration engine: the naive baseline and the
//! correctness oracle.
//!
//! Everything the WSD/UWSDT layers do can, semantically, be done by
//! enumerating the possible worlds, applying the operation to each world
//! separately, and recombining.  That is infeasible at scale (which is the
//! paper's point) but invaluable as an oracle for testing and as the "what if
//! we didn't decompose" baseline in the ablation benchmarks.

use ws_core::chase::Dependency;
use ws_core::{Result as WsResult, WorldSet, WsError};
use ws_relational::engine::{self, EngineConfig};
use ws_relational::{evaluate_set, Database, RaExpr, Relation, Tuple};

/// Evaluate a relational-algebra query in every world, returning the
/// distribution over result relations.
pub fn query_distribution(worlds: &WorldSet, query: &RaExpr) -> WsResult<Vec<(Relation, f64)>> {
    let mut out: Vec<(Relation, f64)> = Vec::new();
    for (db, p) in worlds.worlds() {
        let result = evaluate_set(db, query)?;
        match out.iter_mut().find(|(r, _)| r.set_eq(&result)) {
            Some((_, q)) => *q += p,
            None => out.push((result, *p)),
        }
    }
    Ok(out)
}

/// Evaluate a query world-by-world and extend each world with the result
/// relation (the compositional semantics of §4), returning the new
/// world-set.
///
/// Even this naive engine runs through the shared `optimize → execute`
/// pipeline: the [`ws_relational::QueryBackend`] implementation on
/// [`WorldSet`] (in `ws_core::worldset`) applies each physical operator to
/// every world separately, so the oracle exercises exactly the same plans as
/// the decomposed representations it validates.
pub fn query_worlds(worlds: &WorldSet, query: &RaExpr, out_name: &str) -> WsResult<WorldSet> {
    // An empty (inconsistent) world-set has no catalog to resolve relations
    // against; the query over it is vacuously the empty world-set.
    if worlds.is_empty() {
        return Ok(WorldSet::new());
    }
    let mut extended = worlds.clone();
    engine::evaluate_query_with(
        &mut extended,
        query,
        out_name,
        EngineConfig::with_temp_cleanup(),
    )?;
    Ok(extended)
}

/// The confidence of a tuple in a relation: the total probability of the
/// worlds containing it.
pub fn confidence(worlds: &WorldSet, relation: &str, tuple: &Tuple) -> WsResult<f64> {
    let mut c = 0.0;
    for (db, p) in worlds.worlds() {
        if db.relation(relation)?.contains(tuple) {
            c += p;
        }
    }
    Ok(c)
}

/// The set of possible tuples of a relation: its union over all worlds.
pub fn possible_tuples(worlds: &WorldSet, relation: &str) -> WsResult<Vec<Tuple>> {
    let mut out: Vec<Tuple> = Vec::new();
    for (db, _) in worlds.worlds() {
        for tuple in db.relation(relation)?.rows() {
            if !out.contains(tuple) {
                out.push(tuple.clone());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Whether one world (database) satisfies a dependency.
///
/// Thin wrapper over [`ws_relational::world_satisfies`] — the check moved
/// into the substrate so the update subsystem's conditioning verb can share
/// it — kept here for the oracle-flavored `WsResult` signature.
pub fn world_satisfies(db: &Database, dependency: &Dependency) -> WsResult<bool> {
    Ok(ws_relational::world_satisfies(db, dependency)?)
}

/// The naive chase: keep only the worlds satisfying all dependencies and
/// renormalize.  Fails with [`WsError::Inconsistent`] if nothing survives.
pub fn chase_worlds(worlds: &WorldSet, dependencies: &[Dependency]) -> WsResult<WorldSet> {
    let mut error: Option<WsError> = None;
    let result = worlds.filter_worlds(|db| {
        dependencies
            .iter()
            .all(|dep| match world_satisfies(db, dep) {
                Ok(ok) => ok,
                Err(e) => {
                    error = Some(e);
                    false
                }
            })
    });
    if let Some(e) = error {
        return Err(e);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_core::chase::{AttrComparison, EqualityGeneratingDependency, FunctionalDependency};
    use ws_core::wsd::example_census_wsd;
    use ws_relational::{CmpOp, Predicate, Value};

    fn worlds() -> WorldSet {
        example_census_wsd().rep().unwrap()
    }

    #[test]
    fn query_distribution_sums_to_one() {
        let ws = worlds();
        let q = RaExpr::rel("R").select(Predicate::eq_const("M", 1i64));
        let dist = query_distribution(&ws, &q).unwrap();
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(dist.len() > 1);
    }

    #[test]
    fn query_worlds_extends_each_world() {
        let ws = worlds();
        let q = RaExpr::rel("R").project(vec!["S"]);
        let extended = query_worlds(&ws, &q, "Q").unwrap();
        for (db, _) in extended.worlds() {
            assert!(db.contains_relation("Q"));
            assert_eq!(db.relation("Q").unwrap().schema().arity(), 1);
        }
    }

    #[test]
    fn confidence_and_possible_match_the_wsd_operators() {
        let wsd = example_census_wsd();
        let ws = worlds();
        let possible = possible_tuples(&ws, "R").unwrap();
        assert_eq!(
            possible.len(),
            ws_core::confidence::possible(&wsd, "R").unwrap().len()
        );
        for tuple in &possible {
            let oracle = confidence(&ws, "R", tuple).unwrap();
            let ours = ws_core::confidence::conf(&wsd, "R", tuple).unwrap();
            assert!((oracle - ours).abs() < 1e-9);
        }
    }

    #[test]
    fn chase_worlds_filters_and_renormalizes() {
        let ws = worlds();
        let dep = Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "S",
            785i64,
            "M",
            CmpOp::Eq,
            1i64,
        ));
        let cleaned = chase_worlds(&ws, std::slice::from_ref(&dep)).unwrap();
        assert!(cleaned.len() < ws.len());
        assert!((cleaned.total_probability() - 1.0).abs() < 1e-9);
        for (db, _) in cleaned.worlds() {
            assert!(world_satisfies(db, &dep).unwrap());
        }
        // An unsatisfiable dependency empties the world-set.
        let impossible = Dependency::Egd(EqualityGeneratingDependency::new(
            "R",
            vec![],
            AttrComparison::new("S", CmpOp::Eq, -1i64),
        ));
        assert!(matches!(
            chase_worlds(&ws, &[impossible]),
            Err(WsError::Inconsistent)
        ));
    }

    #[test]
    fn fd_satisfaction_is_checked_per_world() {
        let ws = worlds();
        let fd = Dependency::Fd(FunctionalDependency::new("R", vec!["N"], vec!["M"]));
        // N is certain per tuple (Smith/Brown), so the FD trivially holds in
        // every world (distinct determinants).
        for (db, _) in ws.worlds() {
            assert!(world_satisfies(db, &fd).unwrap());
        }
        // A dependency over a missing relation errors.
        let bad = Dependency::Fd(FunctionalDependency::new("NOPE", vec!["A"], vec!["B"]));
        assert!(world_satisfies(&ws.worlds()[0].0, &bad).is_err());
        let _ = Value::int(0);
    }
}
