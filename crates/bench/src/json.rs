//! A minimal JSON reader for the benchmark snapshots.
//!
//! The workspace deliberately has no serialization dependency, and the two
//! files the bench-regression gate compares — the committed `BENCH_seed.json`
//! and the CI-produced `BENCH_ci.json` — are machine-written with a known
//! shape (objects, arrays, strings, plain numbers).  This parser covers full
//! JSON anyway so a hand-edited snapshot cannot silently mis-parse: strings
//! with the standard escapes, numbers via [`f64`] parsing, `true`/`false`/
//! `null`, and arbitrarily nested arrays and objects.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The object's field, if this is an object that has one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs do not occur in bench labels;
                            // map lone surrogates to U+FFFD rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_recorder_line_shape() {
        let line = r#"{"bench":"ablation_confidence","section":"tiers","name":"v14","metric":"safe_s","seconds":0.000123}"#;
        let value = Json::parse(line).unwrap();
        assert_eq!(
            value.get("bench").unwrap().as_str(),
            Some("ablation_confidence")
        );
        assert_eq!(value.get("seconds").unwrap().as_f64(), Some(0.000123));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"quick": true, "entries": [{"seconds": 1e-3}, {"seconds": -2.5}], "note": "a \"quoted\" – label\n"}"#;
        let value = Json::parse(doc).unwrap();
        assert_eq!(value.get("quick"), Some(&Json::Bool(true)));
        let entries = value.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries[0].get("seconds").unwrap().as_f64(), Some(0.001));
        assert_eq!(entries[1].get("seconds").unwrap().as_f64(), Some(-2.5));
        assert_eq!(
            value.get("note").unwrap().as_str(),
            Some("a \"quoted\" – label\n")
        );
    }

    #[test]
    fn parses_escapes_and_empty_containers() {
        let value = Json::parse(r#"{"a": [], "b": {}, "c": "A\t", "d": null}"#).unwrap();
        assert_eq!(value.get("a").unwrap().as_array(), Some(&[][..]));
        assert_eq!(value.get("b"), Some(&Json::Object(BTreeMap::new())));
        assert_eq!(value.get("c").unwrap().as_str(), Some("A\t"));
        assert_eq!(value.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]x",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
