//! # ws-bench — benchmark harness for the paper's evaluation section
//!
//! One benchmark target per evaluation figure (see DESIGN.md §3 and
//! EXPERIMENTS.md), plus ablation benches.  The helpers in this library crate
//! are shared by the individual `benches/*.rs` harnesses: scenario grids,
//! timing utilities and table printing.

use std::time::{Duration, Instant};
use ws_census::CensusScenario;

pub mod gate;
pub mod json;

/// The default tuple counts of the scaled-down sweep (the paper sweeps
/// 0.1M–12.5M tuples on a 32 GB server; see DESIGN.md for the substitution).
pub const DEFAULT_SIZES: [usize; 5] = [1_000, 5_000, 10_000, 20_000, 50_000];

/// The densities of the paper's evaluation (0.005% … 0.1%).
pub const DENSITIES: [f64; 4] = ws_census::PAPER_DENSITIES;

/// Labels matching [`DENSITIES`].
pub const DENSITY_LABELS: [&str; 4] = ws_census::PAPER_DENSITY_LABELS;

/// The tuple counts used when `WS_BENCH_QUICK` is set: small enough for a
/// CI smoke run, large enough to exercise every code path.
pub const QUICK_SIZES: [usize; 2] = [500, 2_000];

/// Whether quick (CI smoke) mode is enabled via the `WS_BENCH_QUICK`
/// environment variable (any non-empty value other than `0`).
pub fn is_quick() -> bool {
    std::env::var("WS_BENCH_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// The worker-thread count of the parallel benchmark axis: `WS_BENCH_THREADS`
/// if set, otherwise the machine's available parallelism (at least 2, so the
/// parallel axis differs from the serial baseline even on one-core runners).
pub fn bench_threads() -> usize {
    std::env::var("WS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .max(2)
        })
}

/// Read the benchmark tuple counts from the `WS_BENCH_SIZES` environment
/// variable (comma-separated), falling back to [`QUICK_SIZES`] in quick mode
/// and [`DEFAULT_SIZES`] otherwise.
pub fn bench_sizes() -> Vec<usize> {
    let fallback = || {
        if is_quick() {
            QUICK_SIZES.to_vec()
        } else {
            DEFAULT_SIZES.to_vec()
        }
    };
    match std::env::var("WS_BENCH_SIZES") {
        Ok(raw) => {
            let parsed: Vec<usize> = raw
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect();
            if parsed.is_empty() {
                fallback()
            } else {
                parsed
            }
        }
        Err(_) => fallback(),
    }
}

/// The scenario grid: every size × density combination with a fixed seed.
pub fn scenario_grid() -> Vec<(CensusScenario, &'static str)> {
    let mut out = Vec::new();
    for &tuples in &bench_sizes() {
        for (i, &density) in DENSITIES.iter().enumerate() {
            out.push((
                CensusScenario::new(tuples, density, 0xC0FFEE),
                DENSITY_LABELS[i],
            ));
        }
    }
    out
}

/// Time a closure once, returning its result and the elapsed wall-clock time.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// A machine-readable timing recorder for the ablation benches.
///
/// When the `WS_BENCH_JSON` environment variable names a file, every recorded
/// measurement is appended to it as one JSON object per line
/// (`{"bench": …, "section": …, "name": …, "metric": …, "seconds": …}`); the
/// CI bench step wraps those lines into `BENCH_ci.json`, and the committed
/// `BENCH_seed.json` snapshot was produced the same way.  Without the
/// variable the recorder is a no-op, so interactive runs just print tables.
#[derive(Debug, Default)]
pub struct Recorder {
    bench: String,
    lines: Vec<String>,
}

impl Recorder {
    /// A recorder for one bench binary.
    pub fn new(bench: &str) -> Self {
        Recorder {
            bench: bench.to_string(),
            lines: Vec::new(),
        }
    }

    /// Record one timing: a section (table) name, a row name, a metric label
    /// and the measured duration.  Labels must not contain `"` or `\`.
    pub fn record(&mut self, section: &str, name: &str, metric: &str, elapsed: Duration) {
        self.lines.push(format!(
            "{{\"bench\":\"{}\",\"section\":\"{section}\",\"name\":\"{name}\",\
             \"metric\":\"{metric}\",\"seconds\":{:.6}}}",
            self.bench,
            elapsed.as_secs_f64(),
        ));
    }

    /// Append the recorded lines to the `WS_BENCH_JSON` file, if configured.
    pub fn flush(&self) {
        let Ok(path) = std::env::var("WS_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        use std::io::Write;
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut file) => {
                for line in &self.lines {
                    let _ = writeln!(file, "{line}");
                }
            }
            Err(e) => eprintln!("WS_BENCH_JSON: cannot open {path}: {e}"),
        }
    }
}

/// Format a duration in seconds with three decimal places.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Print a Markdown-ish table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a Markdown-ish table header with a separator line.
pub fn print_header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| " --- ").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_fall_back_to_defaults() {
        // The environment variable is unlikely to be set during unit tests;
        // either way the result must be non-empty and sorted ascending-ish.
        let sizes = bench_sizes();
        assert!(!sizes.is_empty());
        let grid = scenario_grid();
        assert_eq!(grid.len(), sizes.len() * DENSITIES.len());
    }

    #[test]
    fn recorder_formats_json_lines() {
        let mut rec = Recorder::new("unit");
        rec.record("sec", "row", "metric", Duration::from_millis(250));
        assert_eq!(rec.lines.len(), 1);
        assert!(rec.lines[0].contains("\"bench\":\"unit\""));
        assert!(rec.lines[0].contains("\"seconds\":0.250000"));
        // Without WS_BENCH_JSON flushing is a no-op.
        rec.flush();
    }

    #[test]
    fn timing_and_formatting_helpers() {
        let (value, elapsed) = time_once(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(elapsed.as_secs_f64() >= 0.0);
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        print_header(&["a", "b"]);
        print_row(&["1".into(), "2".into()]);
    }
}
