//! CI bench-regression gate.
//!
//! ```text
//! bench_gate <BENCH_seed.json> <BENCH_ci.json>
//! ```
//!
//! Diffs the CI metric snapshot against the committed seed baseline with the
//! rules in [`ws_bench::gate`], prints the per-metric delta table, appends it
//! to `$GITHUB_STEP_SUMMARY` when that variable is set, and exits non-zero if
//! any tracked metric regressed past the 1.5× limit or the confidence-tier
//! speedup bound is violated.

use std::process::ExitCode;

use ws_bench::gate::{compare, load_metrics};
use ws_bench::json::Json;

fn read_snapshot(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, seed_path, ci_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <BENCH_seed.json> <BENCH_ci.json>");
        return ExitCode::from(2);
    };
    let (seed, ci) = match (read_snapshot(seed_path), read_snapshot(ci_path)) {
        (Ok(seed), Ok(ci)) => (seed, ci),
        (seed, ci) => {
            for result in [seed, ci] {
                if let Err(e) = result {
                    eprintln!("bench_gate: {e}");
                }
            }
            return ExitCode::from(2);
        }
    };

    let report = compare(&load_metrics(&seed), &load_metrics(&ci));
    let table = report.to_markdown();
    println!("{table}");
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !summary_path.is_empty() {
            use std::io::Write;
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&summary_path)
            {
                Ok(mut file) => {
                    let _ = writeln!(file, "{table}");
                }
                Err(e) => eprintln!("bench_gate: cannot append to {summary_path}: {e}"),
            }
        }
    }

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        for delta in report.regressions() {
            let (bench, section, name, metric) = &delta.key;
            eprintln!(
                "bench_gate: {bench}/{section}/{name}/{metric} regressed: \
                 seed {:.6}s -> ci {:.6}s",
                delta.seed_seconds.unwrap_or(f64::NAN),
                delta.ci_seconds.unwrap_or(f64::NAN),
            );
        }
        for failure in &report.tier_failures {
            eprintln!("bench_gate: {failure}");
        }
        ExitCode::FAILURE
    }
}
