//! The bench-regression gate: compare a CI metric snapshot against the
//! committed seed baseline and fail loudly on slowdowns.
//!
//! Both files carry the same per-measurement records — the objects
//! [`crate::Recorder`] emits, keyed by `(bench, section, name, metric)` with a
//! `seconds` value — but wrap them differently: `BENCH_seed.json` stores them
//! under a top-level `"entries"` array, while the CI smoke step collects the
//! per-bench JSONL into a `"metrics"` array.  [`load_metrics`] accepts either.
//!
//! The gate's rules:
//!
//! * a metric present in both files **regresses** when
//!   `ci > seed × RATIO_LIMIT + ABSOLUTE_FLOOR_SECONDS` — the multiplicative
//!   limit catches real slowdowns, the absolute floor keeps micro-benchmarks
//!   in the sub-millisecond range from tripping on scheduler noise;
//! * a metric only in the CI file is **new** (no baseline yet) and passes —
//!   this is how a PR introduces measurements without touching the seed;
//! * a metric only in the seed is **retired** and passes, so benches can be
//!   reshaped (the delta table still lists it for the reviewer);
//! * the `tiers` section additionally enforces the PR 7 acceptance bound
//!   *inside* the CI file: the safe-plan tier must be at least
//!   [`SAFE_SPEEDUP_REQUIRED`]× faster than native exact enumeration on
//!   every recorded variable count;
//! * the `service` section likewise enforces the PR 8 acceptance bound: at
//!   every recorded writer count, the group-commit batcher must be at least
//!   [`GROUP_COMMIT_SPEEDUP_REQUIRED`]× faster than per-record fsync;
//! * the `observability` section enforces the PR 10 acceptance bound: at
//!   every recorded workload size, an observed session must stay within
//!   [`OBS_OVERHEAD_LIMIT`]× of the unobserved baseline (plus the absolute
//!   floor), so instrumentation can never quietly become a tax.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;

/// A CI metric may be at most this multiple of the seed baseline.
pub const RATIO_LIMIT: f64 = 1.5;

/// Additive noise floor: sub-millisecond metrics jitter more than 1.5×.
pub const ABSOLUTE_FLOOR_SECONDS: f64 = 0.005;

/// The safe-plan tier must beat native exact enumeration by this factor.
pub const SAFE_SPEEDUP_REQUIRED: f64 = 3.0;

/// Group commit must beat per-record fsync by this factor (measured over
/// `LatencyVfs`, so the ratio is deterministic across CI hosts).
pub const GROUP_COMMIT_SPEEDUP_REQUIRED: f64 = 2.0;

/// An observed session may cost at most this multiple of the baseline
/// (both sides minimum-of-repeats, plus [`ABSOLUTE_FLOOR_SECONDS`]).
pub const OBS_OVERHEAD_LIMIT: f64 = 1.10;

/// One measurement key: `(bench, section, name, metric)`.
pub type MetricKey = (String, String, String, String);

/// How one metric fared against the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Status {
    /// Present in both files and within the limit.
    Ok,
    /// Present in both files and over the limit.
    Regressed,
    /// Only in the CI file: no baseline yet.
    New,
    /// Only in the seed file: the bench no longer records it.
    Retired,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::Regressed => "REGRESSED",
            Status::New => "new",
            Status::Retired => "retired",
        })
    }
}

/// One row of the delta table.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub key: MetricKey,
    pub seed_seconds: Option<f64>,
    pub ci_seconds: Option<f64>,
    pub status: Status,
}

/// The gate's verdict over a snapshot pair.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub deltas: Vec<Delta>,
    /// Violations of the in-file `tiers` speedup bound, as messages.
    pub tier_failures: Vec<String>,
}

impl Report {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.tier_failures.is_empty() && self.deltas.iter().all(|d| d.status != Status::Regressed)
    }

    /// The rows that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.status == Status::Regressed)
    }

    /// The delta table (and any tier violations) as a Markdown document,
    /// printed to the job log and appended to `$GITHUB_STEP_SUMMARY`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## Bench regression gate\n\n");
        out.push_str(&format!(
            "limit: ci ≤ seed × {RATIO_LIMIT} + {ABSOLUTE_FLOOR_SECONDS}s\n\n"
        ));
        out.push_str("| bench | section | name | metric | seed (s) | ci (s) | ratio | status |\n");
        out.push_str("| --- | --- | --- | --- | --- | --- | --- | --- |\n");
        for delta in &self.deltas {
            let (bench, section, name, metric) = &delta.key;
            let fmt_opt = |v: Option<f64>| match v {
                Some(s) => format!("{s:.6}"),
                None => "—".to_string(),
            };
            let ratio = match (delta.seed_seconds, delta.ci_seconds) {
                (Some(seed), Some(ci)) if seed > 0.0 => format!("{:.2}x", ci / seed),
                _ => "—".to_string(),
            };
            out.push_str(&format!(
                "| {bench} | {section} | {name} | {metric} | {} | {} | {ratio} | {} |\n",
                fmt_opt(delta.seed_seconds),
                fmt_opt(delta.ci_seconds),
                delta.status
            ));
        }
        if !self.tier_failures.is_empty() {
            out.push_str("\n### Acceptance-bound violations\n\n");
            for failure in &self.tier_failures {
                out.push_str(&format!("* {failure}\n"));
            }
        }
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        out.push_str(&format!("\n**{verdict}**\n"));
        out
    }
}

/// Extract the keyed metrics from a parsed snapshot, accepting either the
/// seed layout (`"entries"`) or the CI layout (`"metrics"`).  Records missing
/// a field or with a non-numeric `seconds` are skipped — a half-written line
/// must not take the gate down with a parse panic.
pub fn load_metrics(doc: &Json) -> BTreeMap<MetricKey, f64> {
    let records = doc
        .get("entries")
        .or_else(|| doc.get("metrics"))
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let mut metrics = BTreeMap::new();
    for record in records {
        let field = |k: &str| record.get(k).and_then(Json::as_str).map(str::to_string);
        let (Some(bench), Some(section), Some(name), Some(metric)) = (
            field("bench"),
            field("section"),
            field("name"),
            field("metric"),
        ) else {
            continue;
        };
        let Some(seconds) = record.get("seconds").and_then(Json::as_f64) else {
            continue;
        };
        metrics.insert((bench, section, name, metric), seconds);
    }
    metrics
}

/// Whether a CI measurement violates the regression limit.
pub fn is_regression(seed_seconds: f64, ci_seconds: f64) -> bool {
    ci_seconds > seed_seconds * RATIO_LIMIT + ABSOLUTE_FLOOR_SECONDS
}

/// Run the gate: diff the CI metrics against the seed baseline and check the
/// `tiers` speedup bound inside the CI file.
pub fn compare(seed: &BTreeMap<MetricKey, f64>, ci: &BTreeMap<MetricKey, f64>) -> Report {
    let mut report = Report::default();
    let mut keys: Vec<&MetricKey> = seed.keys().chain(ci.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let (seed_seconds, ci_seconds) = (seed.get(key).copied(), ci.get(key).copied());
        let status = match (seed_seconds, ci_seconds) {
            (Some(s), Some(c)) if is_regression(s, c) => Status::Regressed,
            (Some(_), Some(_)) => Status::Ok,
            (None, Some(_)) => Status::New,
            (Some(_), None) => Status::Retired,
            (None, None) => unreachable!("key came from one of the maps"),
        };
        report.deltas.push(Delta {
            key: key.clone(),
            seed_seconds,
            ci_seconds,
            status,
        });
    }

    // The PR 7 acceptance bound: on every recorded `tiers` row of the CI run,
    // safe-plan evaluation is ≥ SAFE_SPEEDUP_REQUIRED× faster than exact.
    for ((bench, section, name, metric), &safe) in ci {
        if section != "tiers" || metric != "safe_s" {
            continue;
        }
        let exact_key = (
            bench.clone(),
            section.clone(),
            name.clone(),
            "exact_s".to_string(),
        );
        match ci.get(&exact_key) {
            Some(&exact) if safe * SAFE_SPEEDUP_REQUIRED <= exact => {}
            Some(&exact) => report.tier_failures.push(format!(
                "{bench}/{section}/{name}: safe tier {safe:.6}s is not \
                 {SAFE_SPEEDUP_REQUIRED}× faster than exact {exact:.6}s"
            )),
            None => report.tier_failures.push(format!(
                "{bench}/{section}/{name}: safe_s recorded without exact_s"
            )),
        }
    }

    // The PR 8 acceptance bound: on every recorded `service` row of the CI
    // run, the group-commit batcher beats per-record fsync by
    // ≥ GROUP_COMMIT_SPEEDUP_REQUIRED×.
    for ((bench, section, name, metric), &batched) in ci {
        if section != "service" || metric != "group_commit_s" {
            continue;
        }
        let baseline_key = (
            bench.clone(),
            section.clone(),
            name.clone(),
            "every_record_s".to_string(),
        );
        match ci.get(&baseline_key) {
            Some(&every) if batched * GROUP_COMMIT_SPEEDUP_REQUIRED <= every => {}
            Some(&every) => report.tier_failures.push(format!(
                "{bench}/{section}/{name}: group commit {batched:.6}s is not \
                 {GROUP_COMMIT_SPEEDUP_REQUIRED}× faster than per-record fsync {every:.6}s"
            )),
            None => report.tier_failures.push(format!(
                "{bench}/{section}/{name}: group_commit_s recorded without every_record_s"
            )),
        }
    }

    // The PR 10 acceptance bound: on every recorded `observability` row of
    // the CI run, the observed workload stays within OBS_OVERHEAD_LIMIT× of
    // the unobserved baseline (the absolute floor absorbs sub-5ms noise).
    for ((bench, section, name, metric), &observed) in ci {
        if section != "observability" || metric != "observed_s" {
            continue;
        }
        let baseline_key = (
            bench.clone(),
            section.clone(),
            name.clone(),
            "baseline_s".to_string(),
        );
        match ci.get(&baseline_key) {
            Some(&baseline)
                if observed <= baseline * OBS_OVERHEAD_LIMIT + ABSOLUTE_FLOOR_SECONDS => {}
            Some(&baseline) => report.tier_failures.push(format!(
                "{bench}/{section}/{name}: observed {observed:.6}s exceeds                  {OBS_OVERHEAD_LIMIT}× the unobserved baseline {baseline:.6}s"
            )),
            None => report.tier_failures.push(format!(
                "{bench}/{section}/{name}: observed_s recorded without baseline_s"
            )),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(metric: &str) -> MetricKey {
        (
            "ablation_confidence".into(),
            "confidence".into(),
            "n150_d0.1%_t1".into(),
            metric.into(),
        )
    }

    #[test]
    fn loads_both_snapshot_layouts() {
        let seed = Json::parse(
            r#"{"commit": "abc", "entries": [
                {"bench":"b","section":"s","name":"n","metric":"m","seconds":0.5},
                {"bench":"b","section":"s","name":"n","seconds":0.5},
                {"bench":"b","section":"s","name":"n","metric":"bad","seconds":"oops"}
            ]}"#,
        )
        .unwrap();
        let ci = Json::parse(
            r#"{"results": [], "metrics": [
                {"bench":"b","section":"s","name":"n","metric":"m","seconds":0.25}
            ]}"#,
        )
        .unwrap();
        let seed = load_metrics(&seed);
        let ci = load_metrics(&ci);
        // The malformed records are skipped, not fatal.
        assert_eq!(seed.len(), 1);
        assert_eq!(seed[&("b".into(), "s".into(), "n".into(), "m".into())], 0.5);
        assert_eq!(ci.len(), 1);
    }

    #[test]
    fn regression_limit_has_ratio_and_floor() {
        // Under the multiplicative limit.
        assert!(!is_regression(1.0, 1.49));
        // Over it.
        assert!(is_regression(1.0, 1.51));
        // A micro-benchmark jumping 10× but staying under the absolute floor.
        assert!(!is_regression(0.0002, 0.002));
        assert!(is_regression(0.0002, 0.0061));
    }

    #[test]
    fn compare_classifies_and_passes_correctly() {
        let mut seed = BTreeMap::new();
        seed.insert(key("fast_s"), 0.10);
        seed.insert(key("slow_s"), 0.10);
        seed.insert(key("retired_s"), 0.10);
        let mut ci = BTreeMap::new();
        ci.insert(key("fast_s"), 0.11);
        ci.insert(key("slow_s"), 0.50);
        ci.insert(key("new_s"), 9.99);
        let report = compare(&seed, &ci);
        assert!(!report.passed());
        let by_metric: BTreeMap<&str, Status> = report
            .deltas
            .iter()
            .map(|d| (d.key.3.as_str(), d.status))
            .collect();
        assert_eq!(by_metric["fast_s"], Status::Ok);
        assert_eq!(by_metric["slow_s"], Status::Regressed);
        assert_eq!(by_metric["new_s"], Status::New);
        assert_eq!(by_metric["retired_s"], Status::Retired);
        assert_eq!(report.regressions().count(), 1);
        let table = report.to_markdown();
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("**FAIL**"));
    }

    #[test]
    fn tier_bound_is_enforced_inside_the_ci_file() {
        let tier_key = |metric: &str| -> MetricKey {
            (
                "ablation_confidence".into(),
                "tiers".into(),
                "v14".into(),
                metric.into(),
            )
        };
        let seed = BTreeMap::new();
        // Passing: safe is well over 3× faster than exact.
        let mut ci = BTreeMap::new();
        ci.insert(tier_key("safe_s"), 0.001);
        ci.insert(tier_key("exact_s"), 0.100);
        assert!(compare(&seed, &ci).passed());
        // Failing: safe barely beats exact.
        ci.insert(tier_key("safe_s"), 0.050);
        let report = compare(&seed, &ci);
        assert!(!report.passed());
        assert_eq!(report.tier_failures.len(), 1);
        assert!(report.to_markdown().contains("Acceptance-bound"));
        // A safe_s without its exact_s is also a failure.
        ci.remove(&tier_key("exact_s"));
        assert!(!compare(&seed, &ci).passed());
    }

    #[test]
    fn service_bound_is_enforced_inside_the_ci_file() {
        let service_key = |metric: &str| -> MetricKey {
            (
                "ablation_service".into(),
                "service".into(),
                "w8".into(),
                metric.into(),
            )
        };
        let seed = BTreeMap::new();
        // Passing: the batcher is well over 2× faster than per-record fsync.
        let mut ci = BTreeMap::new();
        ci.insert(service_key("group_commit_s"), 0.050);
        ci.insert(service_key("every_record_s"), 0.400);
        assert!(compare(&seed, &ci).passed());
        // Read-scaling metrics in the same section carry no in-file bound.
        ci.insert(service_key("read_1t_s"), 0.100);
        ci.insert(service_key("read_nt_s"), 0.090);
        assert!(compare(&seed, &ci).passed());
        // Failing: group commit barely beats the baseline.
        ci.insert(service_key("group_commit_s"), 0.300);
        let report = compare(&seed, &ci);
        assert!(!report.passed());
        assert_eq!(report.tier_failures.len(), 1);
        assert!(report.to_markdown().contains("per-record fsync"));
        // A group_commit_s without its every_record_s is also a failure.
        ci.remove(&service_key("every_record_s"));
        assert!(!compare(&seed, &ci).passed());
    }

    #[test]
    fn observability_bound_is_enforced_inside_the_ci_file() {
        let obs_key = |metric: &str| -> MetricKey {
            (
                "ablation_observability".into(),
                "observability".into(),
                "query_n400".into(),
                metric.into(),
            )
        };
        let seed = BTreeMap::new();
        // Passing: 8% overhead on a workload large enough to measure.
        let mut ci = BTreeMap::new();
        ci.insert(obs_key("baseline_s"), 0.500);
        ci.insert(obs_key("observed_s"), 0.540);
        assert!(compare(&seed, &ci).passed());
        // Exactly on the limit (plus floor) still passes.
        ci.insert(
            obs_key("observed_s"),
            0.500 * OBS_OVERHEAD_LIMIT + ABSOLUTE_FLOOR_SECONDS,
        );
        assert!(compare(&seed, &ci).passed());
        // Failing: 30% overhead.
        ci.insert(obs_key("observed_s"), 0.650);
        let report = compare(&seed, &ci);
        assert!(!report.passed());
        assert_eq!(report.tier_failures.len(), 1);
        assert!(report.to_markdown().contains("unobserved baseline"));
        // A tiny workload is absorbed by the absolute floor.
        ci.insert(obs_key("baseline_s"), 0.001);
        ci.insert(obs_key("observed_s"), 0.004);
        assert!(compare(&seed, &ci).passed());
        // An observed_s without its baseline_s is a failure.
        ci.remove(&obs_key("baseline_s"));
        assert!(!compare(&seed, &ci).passed());
    }
}
