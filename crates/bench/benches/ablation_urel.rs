//! Ablation: representation growth of join pipelines — WSD component
//! composition vs. U-relation descriptor conjunction.
//!
//! Section 4 notes that the selection with a join condition (`σ_{A=B}`) may
//! compose WSD components and thereby blow the representation up, and points
//! to U-relations as the intensional refinement avoiding this.  This bench
//! quantifies the effect on a self-join workload: a relation of `n` tuples
//! whose join attribute is an or-set of size `d` is joined with itself; we
//! report the representation size (component rows for the WSD, annotated rows
//! for the U-relation) and the evaluation time of both systems.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_urel`

use ws_bench::{is_quick, print_header, print_row, secs, time_once};
use ws_core::{FieldId, Wsd};
use ws_relational::{CmpOp, Predicate, RaExpr, Value};

/// Build a WSD over two relations `L[K, X]` and `R[K, Y]` with `n` tuples
/// each whose `K` attribute is an or-set of size `d`.
fn two_relation_wsd(n: usize, d: i64) -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("L", &["K", "X"], n).unwrap();
    wsd.register_relation("R", &["K", "Y"], n).unwrap();
    for t in 0..n {
        let domain: Vec<Value> = (0..d).map(|v| Value::int((t as i64 % 3) + v)).collect();
        wsd.set_uniform(FieldId::new("L", t, "K"), domain.clone())
            .unwrap();
        wsd.set_certain(FieldId::new("L", t, "X"), Value::int(t as i64))
            .unwrap();
        wsd.set_uniform(FieldId::new("R", t, "K"), domain).unwrap();
        wsd.set_certain(FieldId::new("R", t, "Y"), Value::int(10 + t as i64))
            .unwrap();
    }
    wsd
}

fn wsd_component_rows(wsd: &Wsd) -> usize {
    wsd.components().map(|(_, c)| c.len()).sum()
}

fn join_query() -> RaExpr {
    RaExpr::rel("L")
        .rename("K", "K1")
        .product(RaExpr::rel("R").rename("K", "K2"))
        .select(Predicate::cmp_attr("K1", CmpOp::Eq, "K2"))
        .project(vec!["X", "Y"])
}

fn main() {
    println!("# Join pipelines: WSD composition vs. U-relation descriptors");
    println!("(σ_K1=K2(L × R) with or-set join keys; sizes are representation rows)");
    print_header(&[
        "tuples/rel",
        "or-set size",
        "WSD rows before",
        "WSD rows after join",
        "WSD time (s)",
        "U-rel rows before",
        "U-rel rows after join",
        "U-rel time (s)",
    ]);

    // (4, 4) already composes 65 536 local worlds on the WSD side; larger
    // settings exhaust memory, which is precisely the blow-up the table
    // demonstrates.
    let grid: &[(usize, i64)] = if is_quick() {
        &[(2, 2), (3, 2)]
    } else {
        &[(2, 2), (2, 4), (3, 2), (3, 4), (4, 4)]
    };
    for &(n, d) in grid {
        let wsd = two_relation_wsd(n, d);
        let query = join_query();

        let wsd_before = wsd_component_rows(&wsd);
        let (wsd_after, wsd_time) = {
            let mut scratch = wsd.clone();
            let ((), elapsed) = time_once(|| {
                ws_relational::evaluate_query(&mut scratch, &query, "J")
                    .map(|_| ())
                    .unwrap();
            });
            (wsd_component_rows(&scratch), elapsed)
        };

        let udb = ws_urel::from_wsd(&wsd).unwrap();
        let urel_before = udb.total_rows();
        let (urel_after, urel_time) = {
            let mut scratch = udb.clone();
            let ((), elapsed) = time_once(|| {
                ws_relational::evaluate_query(&mut scratch, &query, "J")
                    .map(|_| ())
                    .unwrap();
            });
            (scratch.total_rows(), elapsed)
        };

        print_row(&[
            n.to_string(),
            d.to_string(),
            wsd_before.to_string(),
            wsd_after.to_string(),
            secs(wsd_time),
            urel_before.to_string(),
            urel_after.to_string(),
            secs(urel_time),
        ]);
    }

    println!();
    println!("# Or-set relations: WSD (linear) vs. ULDB x-relation (exponential) size");
    print_header(&[
        "or-set fields per tuple",
        "WSD component rows",
        "x-relation alternatives",
    ]);
    let field_counts: &[usize] = if is_quick() {
        &[2, 4]
    } else {
        &[2, 4, 6, 8, 10]
    };
    for &fields in field_counts {
        let attrs: Vec<String> = (0..fields).map(|i| format!("A{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let mut orset =
            ws_baselines::OrSetRelation::new(ws_relational::Schema::new("O", &attr_refs).unwrap());
        orset
            .push(
                (0..fields)
                    .map(|_| ws_baselines::OrSet::of(vec![0i64, 1i64]))
                    .collect(),
            )
            .unwrap();
        let wsd = orset.to_wsd().unwrap();
        let uldb = ws_baselines::UldbRelation::from_or_relation(&orset).unwrap();
        print_row(&[
            fields.to_string(),
            wsd_component_rows(&wsd).to_string(),
            uldb.alternative_count().to_string(),
        ]);
    }
}
