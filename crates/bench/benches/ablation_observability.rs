//! Ablation: the observability layer (`ws-obs`) — what does watching cost?
//!
//! The same mixed query workload (prepare, execute, tuple confidence over a
//! synthetic census-shaped WSD) runs twice per size: once on a plain
//! session, once with an [`Observer`] attached — per-operator timing
//! histograms, survival-rate and morsel counters, query spans, and a
//! slow-query threshold armed high enough never to fire (the common
//! production setting).  Both runs use fresh sessions so the plan cache
//! starts cold on each side.
//!
//! The bench gate enforces the PR 10 acceptance bound on the recorded pair:
//! the observed run must stay within
//! [`ws_bench::gate::OBS_OVERHEAD_LIMIT`]× of the baseline (plus the
//! absolute floor that keeps sub-5ms noise from flapping CI).  Each side is
//! the *minimum* of several repeats — the right estimator for an overhead
//! bound, since noise only ever inflates a minimum.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_observability`
//! (`WS_BENCH_QUICK=1` for the CI smoke grid).

use std::sync::Arc;
use std::time::Duration;

use maybms::obs::Observer;
use maybms::{q, AnyBackend, Session};
use ws_bench::{is_quick, print_header, print_row, secs, time_once, Recorder};
use ws_core::{FieldId, Wsd};
use ws_relational::CmpOp;
use ws_relational::{Predicate, Value};

/// A WSD over R[A, B, C] with an uncertain `A` every tenth tuple — the
/// sparse-uncertainty shape the other ablations use.
fn synthetic_wsd(tuples: usize) -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B", "C"], tuples)
        .unwrap();
    for t in 0..tuples {
        for (i, attr) in ["A", "B", "C"].iter().enumerate() {
            let field = FieldId::new("R", t, *attr);
            let base = (t * 3 + i) as i64 % 10;
            if i == 0 && t % 10 == 0 {
                wsd.set_uniform(
                    field,
                    vec![Value::int(base), Value::int(base + 1), Value::int(base + 2)],
                )
                .unwrap();
            } else {
                wsd.set_certain(field, Value::int(base)).unwrap();
            }
        }
    }
    wsd
}

/// The mixed workload: a fresh session, two plans, `rounds` of execute +
/// confidence each.  Returns a use-the-result row count.
fn workload(backend: AnyBackend, observer: Option<&Arc<Observer>>, rounds: usize) -> usize {
    let mut session = Session::new(backend);
    if let Some(observer) = observer {
        session.set_observer(Arc::clone(observer));
    }
    let select = session
        .prepare(
            q("R")
                .select(Predicate::cmp_const("B", CmpOp::Lt, 7i64))
                .project(["A", "B"]),
        )
        .unwrap();
    let project = session.prepare(q("R").project(["A"])).unwrap();
    let mut rows = 0;
    for _ in 0..rounds {
        rows += session.execute(&select).unwrap().count();
        rows += session.confidence(&project).unwrap().len();
    }
    rows
}

/// Minimum wall-clock over `repeats` runs of `f` (noise only inflates).
fn min_time(repeats: usize, mut f: impl FnMut() -> usize) -> (usize, Duration) {
    let mut best = Duration::MAX;
    let mut result = 0;
    for _ in 0..repeats {
        let (rows, elapsed) = time_once(&mut f);
        result = rows;
        best = best.min(elapsed);
    }
    (result, best)
}

fn main() {
    let mut rec = Recorder::new("ablation_observability");
    println!("# Observability: the cost of watching (baseline vs observed session)");

    let sizes: &[usize] = if is_quick() { &[400] } else { &[400, 1200] };
    let repeats = if is_quick() { 3 } else { 5 };
    let rounds = if is_quick() { 30 } else { 60 };

    print_header(&[
        "tuples",
        "rounds",
        "baseline (s)",
        "observed (s)",
        "overhead",
    ]);
    for &tuples in sizes {
        let backend = AnyBackend::from(synthetic_wsd(tuples));
        // Production arming: spans flow, the slow-query ring stays silent.
        let observer = Arc::new(Observer::new());
        observer.set_slow_query_threshold(Some(Duration::from_secs(3600)));

        // Warm both paths once so lazy init lands in neither measurement.
        let warm = workload(backend.clone(), Some(&observer), 2);
        assert!(warm > 0, "the synthetic workload answered nothing");

        let (rows_base, baseline) = min_time(repeats, || workload(backend.clone(), None, rounds));
        let (rows_obs, observed) = min_time(repeats, || {
            workload(backend.clone(), Some(&observer), rounds)
        });
        assert_eq!(rows_base, rows_obs, "observation changed the answers");

        let name = format!("query_n{tuples}");
        rec.record("observability", &name, "baseline_s", baseline);
        rec.record("observability", &name, "observed_s", observed);
        print_row(&[
            tuples.to_string(),
            rounds.to_string(),
            secs(baseline),
            secs(observed),
            format!(
                "{:.3}x",
                observed.as_secs_f64() / baseline.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    rec.flush();
}
