//! Ablation: the plan rewrites of §5 (selection pushdown, operator merging)
//! on the one-world baseline.
//!
//! The paper's query-evaluation optimizations merge products with their join
//! selections and distribute selections/projections to the operands; this
//! bench measures the effect of the equivalent rule-based plan rewriting on
//! the single-world evaluator, using the evaluation queries Q1–Q6 of Figure
//! 29 plus an explicitly join-shaped query, and reports the cost-model
//! estimates next to the measured times.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_optimizer`

use ws_bench::{print_header, print_row, secs, time_once};
use ws_census::CensusScenario;
use ws_relational::{evaluate_set, optimizer, CmpOp, Predicate, RaExpr};

fn main() {
    println!("# Plan optimization on the one-world census baseline");
    print_header(&[
        "query",
        "tuples",
        "rows (plain = optimized)",
        "plain time (s)",
        "optimized time (s)",
        "estimated cost plain",
        "estimated cost optimized",
    ]);

    let scenario = CensusScenario::new(5_000, 0.0, 0xC0FFEE);
    let world = scenario.one_world();

    let mut queries = ws_census::all_queries();
    // An explicitly join-shaped query: married people working in the state of
    // their birth, paired with PhD holders of the same state.
    queries.push((
        "QJ",
        RaExpr::rel(ws_census::RELATION_NAME)
            .select(Predicate::eq_const("MARITAL", 1i64))
            .project(vec!["POWSTATE"])
            .rename("POWSTATE", "P1")
            .product(
                RaExpr::rel(ws_census::RELATION_NAME)
                    .select(Predicate::eq_const("YEARSCH", 17i64))
                    .project(vec!["POWSTATE"])
                    .rename("POWSTATE", "P2"),
            )
            .select(Predicate::cmp_attr("P1", CmpOp::Eq, "P2")),
    ));

    for (name, query) in queries {
        let (plain, plain_time) = time_once(|| evaluate_set(&world, &query).unwrap());
        let plan = optimizer::optimize(&world, &query).unwrap();
        let (optimized, optimized_time) = time_once(|| evaluate_set(&world, &plan).unwrap());
        assert!(plain.set_eq(&optimized), "optimization changed the answer of {name}");
        print_row(&[
            name.to_string(),
            "5000".to_string(),
            plain.len().to_string(),
            secs(plain_time),
            secs(optimized_time),
            format!("{:.0}", optimizer::estimated_cost(&world, &query).unwrap()),
            format!("{:.0}", optimizer::estimated_cost(&world, &plan).unwrap()),
        ]);
    }
}
