//! Ablation: the plan rewrites of §5 (selection pushdown, operator merging)
//! across every backend of the unified query engine.
//!
//! The paper's query-evaluation optimizations merge products with their join
//! selections and distribute selections/projections to the operands.  Since
//! every representation now evaluates queries through the shared
//! `optimize → execute` pipeline, this bench measures the rewriting's effect
//! per backend:
//!
//! * the one-world baseline (with the cost-model estimates of the plans),
//! * world-set decompositions (WSDs),
//! * UWSDTs (where the rewrite additionally enables the hash join), and
//! * U-relations.
//!
//! using the evaluation queries Q1–Q6 of Figure 29 plus an explicitly
//! join-shaped query.  Every timed pair also cross-checks that the optimized
//! and naive plans return the same possible tuples.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_optimizer`

use ws_bench::{print_header, print_row, secs, time_once};
use ws_census::CensusScenario;
use ws_relational::engine::{evaluate_query_with, EngineConfig};
use ws_relational::{evaluate_set, optimizer, CmpOp, Predicate, RaExpr};

/// The Fig. 29 queries plus an explicitly join-shaped query: married people
/// working in the state of their birth, paired with PhD holders of the same
/// state.
fn queries() -> Vec<(&'static str, RaExpr)> {
    let mut queries = ws_census::all_queries();
    queries.push((
        "QJ",
        RaExpr::rel(ws_census::RELATION_NAME)
            .select(Predicate::eq_const("MARITAL", 1i64))
            .project(vec!["POWSTATE"])
            .rename("POWSTATE", "P1")
            .product(
                RaExpr::rel(ws_census::RELATION_NAME)
                    .select(Predicate::eq_const("YEARSCH", 17i64))
                    .project(vec!["POWSTATE"])
                    .rename("POWSTATE", "P2"),
            )
            .select(Predicate::cmp_attr("P1", CmpOp::Eq, "P2")),
    ));
    queries
}

fn one_world_section() {
    println!("# Plan optimization on the one-world census baseline");
    println!(
        "optimized config: {} | naive config: {}",
        EngineConfig::default().summary(),
        EngineConfig::naive().summary()
    );
    print_header(&[
        "query",
        "tuples",
        "rows (plain = optimized)",
        "plain time (s)",
        "optimized time (s)",
        "estimated cost plain",
        "estimated cost optimized",
    ]);

    let scenario = CensusScenario::new(5_000, 0.0, 0xC0FFEE);
    let world = scenario.one_world();

    for (name, query) in queries() {
        let (plain, plain_time) = time_once(|| evaluate_set(&world, &query).unwrap());
        let plan = optimizer::optimize(&world, &query).unwrap();
        let (optimized, optimized_time) = time_once(|| evaluate_set(&world, &plan).unwrap());
        assert!(
            plain.set_eq(&optimized),
            "optimization changed the answer of {name}"
        );
        print_row(&[
            name.to_string(),
            "5000".to_string(),
            plain.len().to_string(),
            secs(plain_time),
            secs(optimized_time),
            format!("{:.0}", optimizer::estimated_cost(&world, &query).unwrap()),
            format!("{:.0}", optimizer::estimated_cost(&world, &plan).unwrap()),
        ]);
    }
}

/// Time one backend under the naive and the optimizing pipeline, verifying
/// that the possible tuples agree.
fn bench_backend<B, P>(
    label: &str,
    name: &str,
    tuples: usize,
    make: impl Fn() -> B,
    query: &RaExpr,
    possible: P,
) where
    B: ws_relational::QueryBackend,
    B::Error: std::fmt::Debug,
    P: Fn(&B, &str) -> Vec<ws_relational::Tuple>,
{
    // Clone and answer extraction stay outside the timed section so the
    // naive-vs-optimized columns compare evaluation alone.
    let mut backend = make();
    let (_, naive_time) = time_once(|| {
        evaluate_query_with(&mut backend, query, "OUT", EngineConfig::naive()).unwrap()
    });
    let mut naive_result = possible(&backend, "OUT");
    naive_result.sort();

    let mut backend = make();
    let (_, optimized_time) = time_once(|| {
        evaluate_query_with(&mut backend, query, "OUT", EngineConfig::default()).unwrap()
    });
    let mut optimized_result = possible(&backend, "OUT");
    optimized_result.sort();
    assert_eq!(
        naive_result, optimized_result,
        "optimization changed the possible answers of {name} on {label}"
    );
    print_row(&[
        label.to_string(),
        name.to_string(),
        tuples.to_string(),
        naive_result.len().to_string(),
        secs(naive_time),
        secs(optimized_time),
    ]);
}

fn representation_section() {
    println!();
    println!("# Optimized vs naive pipeline per representation backend");
    print_header(&[
        "backend",
        "query",
        "tuples",
        "possible rows",
        "naive time (s)",
        "optimized time (s)",
    ]);

    let tuples = 300;
    let scenario = CensusScenario::new(tuples, 0.004, 0xC0FFEE);
    let wsd = scenario.dirty_wsd().unwrap();
    let uwsdt = scenario.dirty_uwsdt().unwrap();
    let udb = ws_urel::from_wsd(&wsd).unwrap();

    for (name, query) in queries() {
        // Join-shaped plans force pairwise component compositions on WSDs —
        // the exponential blow-up §4 points out and U-relations avoid — so
        // the WSD backend sits those out.
        if matches!(name, "Q5" | "QJ") {
            print_row(&[
                "wsd".to_string(),
                name.to_string(),
                tuples.to_string(),
                "—".to_string(),
                "skipped".to_string(),
                "(§4 composition blow-up)".to_string(),
            ]);
        } else {
            bench_backend(
                "wsd",
                name,
                tuples,
                || wsd.clone(),
                &query,
                |backend, out| {
                    ws_core::confidence::possible(backend, out)
                        .unwrap()
                        .rows()
                        .to_vec()
                },
            );
        }
        bench_backend(
            "uwsdt",
            name,
            tuples,
            || uwsdt.clone(),
            &query,
            |backend, out| ws_uwsdt::ops::possible_tuples(backend, out).unwrap(),
        );
        bench_backend(
            "urel",
            name,
            tuples,
            || udb.clone(),
            &query,
            |backend, out| ws_urel::ops::possible_tuples(backend, out).unwrap(),
        );
    }
}

fn main() {
    one_world_section();
    representation_section();
}
