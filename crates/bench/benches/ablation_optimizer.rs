//! Ablation: the plan rewrites of §5 (selection pushdown, operator merging)
//! across every backend of the unified query engine.
//!
//! The paper's query-evaluation optimizations merge products with their join
//! selections and distribute selections/projections to the operands.  Since
//! every representation now evaluates queries through the shared
//! `optimize → execute` pipeline, this bench measures the rewriting's effect
//! per backend:
//!
//! * the one-world baseline — the single-world `Database` backend driven
//!   through the engine's physical operators (with the cost-model estimates
//!   of the plans, and the reference evaluator as an untimed cross-check),
//! * world-set decompositions (WSDs),
//! * UWSDTs (where the rewrite additionally enables the hash join), and
//! * U-relations.
//!
//! using the evaluation queries Q1–Q6 of Figure 29 plus an explicitly
//! join-shaped query.  Every timed pair also cross-checks that the optimized
//! and naive plans return the same possible tuples.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_optimizer`
//! (`WS_BENCH_QUICK=1` for the CI smoke grid; set `WS_BENCH_JSON` to also
//! append machine-readable timings — the format behind `BENCH_seed.json` /
//! `BENCH_ci.json`).

use ws_bench::{is_quick, print_header, print_row, secs, time_once, Recorder};
use ws_census::CensusScenario;
use ws_relational::engine::{evaluate_query_with, EngineConfig};
use ws_relational::{evaluate_set, optimizer, CmpOp, Predicate, RaExpr};

/// The Fig. 29 queries plus an explicitly join-shaped query: married people
/// working in the state of their birth, paired with PhD holders of the same
/// state.
fn queries() -> Vec<(&'static str, RaExpr)> {
    let mut queries = ws_census::all_queries();
    queries.push((
        "QJ",
        RaExpr::rel(ws_census::RELATION_NAME)
            .select(Predicate::eq_const("MARITAL", 1i64))
            .project(vec!["POWSTATE"])
            .rename("POWSTATE", "P1")
            .product(
                RaExpr::rel(ws_census::RELATION_NAME)
                    .select(Predicate::eq_const("YEARSCH", 17i64))
                    .project(vec!["POWSTATE"])
                    .rename("POWSTATE", "P2"),
            )
            .select(Predicate::cmp_attr("P1", CmpOp::Eq, "P2")),
    ));
    queries
}

/// Best-of-N timing for the one-world section: the Database-backend operators
/// run in the hundreds of microseconds, so a single shot is noise-dominated.
const ONE_WORLD_REPS: usize = 5;

fn one_world_section(rec: &mut Recorder) {
    let tuples = if is_quick() { 10_000 } else { 20_000 };
    println!("# Plan optimization on the one-world census baseline (Database backend)");
    println!(
        "optimized config: {} | naive config: {}",
        EngineConfig::default().summary(),
        EngineConfig::naive().summary()
    );
    print_header(&[
        "query",
        "tuples",
        "rows (naive = optimized)",
        "naive time (s)",
        "optimized time (s)",
        "estimated cost plain",
        "estimated cost optimized",
    ]);

    let scenario = CensusScenario::new(tuples, 0.0, 0xC0FFEE);
    let world = scenario.one_world();

    // Best-of-N evaluation through the engine: clones and the reference
    // answer stay outside the timed sections so the timing columns compare
    // engine evaluation alone.
    let run = |query: &RaExpr, config: EngineConfig| {
        let mut best = std::time::Duration::MAX;
        let mut result = None;
        for _ in 0..ONE_WORLD_REPS {
            let mut db = world.clone();
            let (_, elapsed) =
                time_once(|| evaluate_query_with(&mut db, query, "OUT", config).unwrap());
            best = best.min(elapsed);
            result = Some(db.relation("OUT").unwrap().clone());
        }
        let mut result = result.unwrap();
        result.dedup();
        (result, best)
    };

    for (name, query) in queries() {
        let reference = evaluate_set(&world, &query).unwrap();
        let plan = optimizer::optimize(&world, &query).unwrap();

        let (naive_result, naive_time) = run(&query, EngineConfig::naive());
        let (optimized_result, optimized_time) = run(&query, EngineConfig::default());

        assert!(
            reference.set_eq(&naive_result),
            "naive engine evaluation changed the answer of {name}"
        );
        assert!(
            reference.set_eq(&optimized_result),
            "optimization changed the answer of {name}"
        );
        rec.record("one-world", name, "naive_s", naive_time);
        rec.record("one-world", name, "optimized_s", optimized_time);
        print_row(&[
            name.to_string(),
            tuples.to_string(),
            reference.len().to_string(),
            secs(naive_time),
            secs(optimized_time),
            format!("{:.0}", optimizer::estimated_cost(&world, &query).unwrap()),
            format!("{:.0}", optimizer::estimated_cost(&world, &plan).unwrap()),
        ]);
    }
}

/// Time one backend under the naive and the optimizing pipeline, verifying
/// that the possible tuples agree.
#[allow(clippy::too_many_arguments)]
fn bench_backend<B, P>(
    rec: &mut Recorder,
    label: &str,
    name: &str,
    tuples: usize,
    make: impl Fn() -> B,
    query: &RaExpr,
    possible: P,
) where
    B: ws_relational::QueryBackend,
    B::Error: std::fmt::Debug,
    P: Fn(&B, &str) -> Vec<ws_relational::Tuple>,
{
    // Clone and answer extraction stay outside the timed section so the
    // naive-vs-optimized columns compare evaluation alone.
    let mut backend = make();
    let (_, naive_time) = time_once(|| {
        evaluate_query_with(&mut backend, query, "OUT", EngineConfig::naive()).unwrap()
    });
    let mut naive_result = possible(&backend, "OUT");
    naive_result.sort();

    let mut backend = make();
    let (_, optimized_time) = time_once(|| {
        evaluate_query_with(&mut backend, query, "OUT", EngineConfig::default()).unwrap()
    });
    let mut optimized_result = possible(&backend, "OUT");
    optimized_result.sort();
    assert_eq!(
        naive_result, optimized_result,
        "optimization changed the possible answers of {name} on {label}"
    );
    rec.record(label, name, "naive_s", naive_time);
    rec.record(label, name, "optimized_s", optimized_time);
    print_row(&[
        label.to_string(),
        name.to_string(),
        tuples.to_string(),
        naive_result.len().to_string(),
        secs(naive_time),
        secs(optimized_time),
    ]);
}

fn representation_section(rec: &mut Recorder) {
    println!();
    println!("# Optimized vs naive pipeline per representation backend");
    print_header(&[
        "backend",
        "query",
        "tuples",
        "possible rows",
        "naive time (s)",
        "optimized time (s)",
    ]);

    let tuples = if is_quick() { 150 } else { 300 };
    let scenario = CensusScenario::new(tuples, 0.004, 0xC0FFEE);
    let wsd = scenario.dirty_wsd().unwrap();
    let uwsdt = scenario.dirty_uwsdt().unwrap();
    let udb = ws_urel::from_wsd(&wsd).unwrap();

    for (name, query) in queries() {
        // Join-shaped plans force pairwise component compositions on WSDs —
        // the exponential blow-up §4 points out and U-relations avoid — so
        // the WSD backend sits those out.
        if matches!(name, "Q5" | "QJ") {
            print_row(&[
                "wsd".to_string(),
                name.to_string(),
                tuples.to_string(),
                "—".to_string(),
                "skipped".to_string(),
                "(§4 composition blow-up)".to_string(),
            ]);
        } else {
            bench_backend(
                rec,
                "wsd",
                name,
                tuples,
                || wsd.clone(),
                &query,
                |backend, out| {
                    ws_core::confidence::possible(backend, out)
                        .unwrap()
                        .rows()
                        .to_vec()
                },
            );
        }
        bench_backend(
            rec,
            "uwsdt",
            name,
            tuples,
            || uwsdt.clone(),
            &query,
            |backend, out| ws_uwsdt::ops::possible_tuples(backend, out).unwrap(),
        );
        bench_backend(
            rec,
            "urel",
            name,
            tuples,
            || udb.clone(),
            &query,
            |backend, out| ws_urel::ops::possible_tuples(backend, out).unwrap(),
        );
    }
}

fn main() {
    let mut rec = Recorder::new("ablation_optimizer");
    one_world_section(&mut rec);
    representation_section(&mut rec);
    rec.flush();
}
