//! Figure 28: distribution of component sizes (number of placeholders per
//! component) of the chased census relations, for different data sizes and
//! densities.
//!
//! The paper buckets the components into sizes 1, 2, 3 and "4 and more" and
//! observes that the counts drop off very quickly: almost all fields remain
//! independent after cleaning.
//!
//! Run with: `cargo bench -p ws-bench --bench fig28_component_sizes`

use ws_bench::{bench_sizes, print_header, print_row, DENSITIES, DENSITY_LABELS};
use ws_census::{CensusScenario, RELATION_NAME};
use ws_uwsdt::component_size_histogram;
use ws_uwsdt::stats::bucketed_histogram;

fn main() {
    println!("# Figure 28: component-size distribution after the chase");
    print_header(&["tuples", "density", "size 1", "size 2", "size 3", "size 4+"]);
    for &tuples in &bench_sizes() {
        for (i, &density) in DENSITIES.iter().enumerate() {
            let scenario = CensusScenario::new(tuples, density, 0xC0FFEE);
            let uwsdt = scenario.chased_uwsdt().unwrap();
            let histogram = component_size_histogram(&uwsdt, RELATION_NAME).unwrap();
            let buckets = bucketed_histogram(&histogram);
            print_row(&[
                tuples.to_string(),
                DENSITY_LABELS[i].to_string(),
                buckets[0].to_string(),
                buckets[1].to_string(),
                buckets[2].to_string(),
                buckets[3].to_string(),
            ]);
        }
    }
    println!();
    println!("Expected shape (paper): the count drops sharply with the component size —");
    println!("single-placeholder components dominate, size-2 components are two to three");
    println!("orders of magnitude rarer, and larger components are almost absent.");
}
