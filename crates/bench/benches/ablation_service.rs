//! Ablation: the service layer (`ws-server`) — MVCC snapshot read scaling
//! and the group-commit throughput win over per-record fsync.
//!
//! Two sections:
//!
//! * **read_scaling** — the same batch of confidence queries answered (a)
//!   serially, (b) across [`ws_bench::bench_threads`] reader threads, and
//!   (c) serially again while a writer churns durable updates through a
//!   2 ms-per-sync medium.  Every reader works on its own pinned
//!   [`ws_server::StoreSnapshot`], so readers never block each other (the
//!   only shared state is one `Arc` clone per pin) and — the MVCC point —
//!   never wait for a writer parked inside `fsync`: the contended burst
//!   stays close to the idle one even though every concurrent commit
//!   stalls the log for 2 ms.
//! * **group_commit** — eight writer threads race updates into a
//!   [`ws_server::ConcurrentStore`] over a [`ws_storage::LatencyVfs`] that
//!   charges a fixed cost per `sync`.  `EveryRecord` pays that cost once per
//!   update; `GroupCommit` pays it once per coalesced batch.  The bench gate
//!   enforces the PR 8 acceptance bound: the batcher must be at least
//!   [`ws_bench::gate::GROUP_COMMIT_SPEEDUP_REQUIRED`]× faster.
//!
//! The latency wrapper makes the comparison deterministic across CI hosts —
//! on tmpfs a real fsync is nearly free and the batching win would drown in
//! scheduler noise.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_service`
//! (`WS_BENCH_QUICK=1` for the CI smoke grid).

use std::sync::atomic::Ordering;
use std::time::Duration;

use maybms::{q, AnyBackend, Session, UpdateExpr};
use ws_bench::{bench_threads, is_quick, print_header, print_row, secs, time_once, Recorder};
use ws_core::{FieldId, Wsd};
use ws_relational::{Tuple, Value};
use ws_server::ConcurrentStore;
use ws_storage::{LatencyVfs, MemVfs, SyncPolicy, Vfs};

/// A WSD over R[A, B, C] with `tuples` slots and an uncertain `A` every
/// tenth tuple — the sparse-uncertainty shape of the census workload (same
/// generator as `ablation_updates`).
fn synthetic_wsd(tuples: usize) -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B", "C"], tuples)
        .unwrap();
    for t in 0..tuples {
        for (i, attr) in ["A", "B", "C"].iter().enumerate() {
            let field = FieldId::new("R", t, *attr);
            let base = (t * 3 + i) as i64 % 10;
            if i == 0 && t % 10 == 0 {
                wsd.set_uniform(
                    field,
                    vec![Value::int(base), Value::int(base + 1), Value::int(base + 2)],
                )
                .unwrap();
            } else {
                wsd.set_certain(field, Value::int(base)).unwrap();
            }
        }
    }
    wsd
}

/// One read transaction: pin the newest image, open a session over it and
/// answer the projection's tuple confidences.
fn one_read(store: &ConcurrentStore<AnyBackend>) -> usize {
    let snapshot = store.snapshot();
    let mut session = Session::new(snapshot.backend.clone());
    let plan = session.prepare(q("R").project(["A"])).unwrap();
    session.confidence(&plan).unwrap().len()
}

/// Answer `total` read transactions across `threads` readers; returns the
/// number of confidence rows seen (a use-the-result guard).
fn read_burst(store: &ConcurrentStore<AnyBackend>, threads: usize, total: usize) -> usize {
    if threads <= 1 {
        return (0..total).map(|_| one_read(store)).sum();
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..threads {
            let share = total / threads + usize::from(worker < total % threads);
            handles.push(scope.spawn(move || (0..share).map(|_| one_read(store)).sum::<usize>()));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_read_scaling(rec: &mut Recorder) {
    let tuples = if is_quick() { 200 } else { 600 };
    let threads = bench_threads();
    let total = threads * if is_quick() { 3 } else { 6 };

    println!("\n## Snapshot read scaling ({total} confidence queries, R[{tuples} tuples])");
    print_header(&[
        "tuples",
        "queries",
        "threads",
        "serial (s)",
        "parallel (s)",
        "write-contended (s)",
    ]);

    // The store lives on a 2ms-per-sync medium: reads never touch it, but
    // the contended burst's concurrent commits each stall the log on it.
    let latency = LatencyVfs::new(Box::new(MemVfs::new()), Duration::from_millis(2));
    let backend = AnyBackend::from(synthetic_wsd(tuples));
    let store: ConcurrentStore<AnyBackend> =
        ConcurrentStore::create(Box::new(latency), backend, SyncPolicy::EveryRecord).unwrap();

    // Warm both paths once so lazy init does not land in either measurement.
    let rows = one_read(&store);
    assert!(rows > 0, "the synthetic store answered nothing");

    let (serial_rows, serial) = time_once(|| read_burst(&store, 1, total));
    let (parallel_rows, parallel) = time_once(|| read_burst(&store, threads, total));
    assert_eq!(serial_rows, parallel_rows);

    // The same serial burst while a writer commits as fast as the medium
    // lets it.  Readers stay on their pinned snapshots, so they never queue
    // behind the 2ms fsync stalls.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let (contended_rows, contended) = std::thread::scope(|scope| {
        let writer_store = &store;
        let writer_stop = &stop;
        let writer = scope.spawn(move || {
            let mut n = 0i64;
            while !writer_stop.load(Ordering::Relaxed) {
                let update = UpdateExpr::insert(
                    "R",
                    Tuple::from_iter([500_000 + n, 600_000 + n, 700_000 + n]),
                );
                writer_store.update(update).unwrap();
                n += 1;
            }
            n
        });
        let result = time_once(|| read_burst(&store, 1, total));
        stop.store(true, Ordering::Relaxed);
        let committed = writer.join().unwrap();
        assert!(committed > 0, "the churn writer never committed");
        result
    });
    assert!(contended_rows >= serial_rows);

    let name = format!("read_n{tuples}");
    rec.record("service", &name, "read_1t_s", serial);
    rec.record("service", &name, "read_nt_s", parallel);
    rec.record("service", &name, "read_contended_s", contended);
    print_row(&[
        tuples.to_string(),
        total.to_string(),
        threads.to_string(),
        secs(serial),
        secs(parallel),
        secs(contended),
    ]);
    store.close().unwrap();
}

/// Race `writers` threads, each durably applying `per_writer` inserts, and
/// return the wall-clock plus the number of syncs the medium charged.
fn write_storm(policy: SyncPolicy, writers: usize, per_writer: usize) -> (Duration, u64) {
    let latency = LatencyVfs::new(Box::new(MemVfs::new()), Duration::from_millis(2));
    let syncs = latency.sync_counter();
    let vfs: Box<dyn Vfs> = Box::new(latency);
    let backend = AnyBackend::from(synthetic_wsd(50));
    let store: ConcurrentStore<AnyBackend> = ConcurrentStore::create(vfs, backend, policy).unwrap();
    let synced_before = syncs.load(Ordering::Relaxed);

    let (_, elapsed) = time_once(|| {
        std::thread::scope(|scope| {
            for worker in 0..writers {
                let store = &store;
                scope.spawn(move || {
                    for n in 0..per_writer {
                        let row = (worker * per_writer + n) as i64;
                        let update = UpdateExpr::insert(
                            "R",
                            Tuple::from_iter([1_000 + row, 2_000 + row, 3_000 + row]),
                        );
                        store.update(update).unwrap();
                    }
                });
            }
        })
    });

    assert_eq!(store.seq(), (writers * per_writer) as u64);
    let synced = syncs.load(Ordering::Relaxed) - synced_before;
    store.close().unwrap();
    (elapsed, synced)
}

fn bench_group_commit(rec: &mut Recorder) {
    let writers = 8;
    let per_writer = if is_quick() { 8 } else { 25 };
    let total = writers * per_writer;

    println!("\n## Group commit vs per-record fsync ({writers} writers × {per_writer} updates, 2ms/sync)");
    print_header(&["policy", "updates", "syncs", "elapsed (s)", "updates/s"]);

    let name = format!("w{writers}");
    let mut measured = Vec::new();
    let policies = [
        ("every_record", SyncPolicy::EveryRecord),
        (
            "group_commit",
            SyncPolicy::GroupCommit {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
            },
        ),
    ];
    for (label, policy) in policies {
        let (elapsed, synced) = write_storm(policy, writers, per_writer);
        rec.record("service", &name, &format!("{label}_s"), elapsed);
        print_row(&[
            label.to_string(),
            total.to_string(),
            synced.to_string(),
            secs(elapsed),
            format!("{:.0}", total as f64 / elapsed.as_secs_f64().max(1e-9)),
        ]);
        measured.push((label, elapsed, synced));
    }

    // Correctness guard mirroring the gate's acceptance bound: batching must
    // actually coalesce (strictly fewer syncs than updates).
    let (_, _, batched_syncs) = (measured[1].0, measured[1].1, measured[1].2);
    assert!(
        batched_syncs < total as u64,
        "group commit never coalesced: {batched_syncs} syncs for {total} updates"
    );
}

fn main() {
    let mut rec = Recorder::new("ablation_service");
    println!("# Service layer: snapshot read scaling / group-commit throughput");
    bench_read_scaling(&mut rec);
    bench_group_commit(&mut rec);
    rec.flush();
}
