//! Ablation: confidence computation — threads × {exact, approximate}.
//!
//! Section 6 defines (NP-hard) exact confidence computation on tuple-level
//! WSDs; the U-relation extension evaluates the same operator over DNF
//! descriptors, and PR 2 adds (ε, δ)-approximate Monte-Carlo evaluators for
//! both plus a worker pool the per-tuple work fans out on.  This bench
//! measures the time to compute the confidences of all possible tuples of a
//! projection query along two axes:
//!
//! * **threads ∈ {1, N}** — the serial baseline against the machine-sized
//!   pool (`WS_BENCH_THREADS` overrides N); exact results are asserted
//!   bit-identical across thread counts,
//! * **exact vs. (ε, δ)-approximate** — the §6 / DNF algorithms against the
//!   Monte-Carlo estimators at ε = 0.02, δ = 0.01.
//!
//! The UWSDT evaluator (serial only) is kept as the cross-representation
//! reference point.  Run with:
//! `cargo bench -p ws-bench --bench ablation_confidence`
//! (`WS_BENCH_QUICK=1` for the CI smoke grid).

use maybms::{AnyBackend, ConfidenceStrategy, Session};
use ws_bench::{bench_threads, is_quick, print_header, print_row, secs, time_once, Recorder};
use ws_census::CensusScenario;
use ws_core::confidence::approx::ApproxConfig;
use ws_relational::{EngineConfig, RaExpr, Schema, Tuple, WorkerPool};
use ws_urel::{UDatabase, URelation, WsDescriptor};

fn main() {
    let mut rec = Recorder::new("ablation_confidence");
    let par_threads = bench_threads();
    let approx = ApproxConfig::new(0.02, 0.01);
    println!("# Confidence computation: threads x {{exact, approximate}}");
    println!(
        "(census scenarios; query π_CITIZEN,IMMIGR(R); times cover all possible tuples; \
         approximate = Monte-Carlo with ε = {}, δ = {})",
        approx.epsilon, approx.delta
    );
    println!(
        "serial config: {} | parallel config: {}",
        EngineConfig::default().summary(),
        EngineConfig::with_threads(par_threads).summary()
    );
    print_header(&[
        "tuples",
        "density",
        "possible tuples",
        "threads",
        "WSD exact (s)",
        "UWSDT exact, serial (s)",
        "U-rel exact (s)",
        "WSD approx (s)",
        "U-rel approx (s)",
    ]);

    let query = RaExpr::rel(ws_census::RELATION_NAME).project(vec!["CITIZEN", "IMMIGR"]);

    let grid: &[(usize, f64, &str)] = if is_quick() {
        &[(150, 0.001, "0.1%"), (300, 0.001, "0.1%")]
    } else {
        &[
            (200, 0.0005, "0.05%"),
            (200, 0.001, "0.1%"),
            (500, 0.001, "0.1%"),
            (1000, 0.001, "0.1%"),
        ]
    };

    for &(tuples, density, label) in grid {
        let scenario = CensusScenario::new(tuples, density, 0xC0FFEE);
        let wsd = scenario.dirty_wsd().unwrap();

        // Evaluate the query once per representation (timed and recorded, so
        // the JSON snapshot also tracks the engine's evaluation hot path).
        let cell = format!("n{tuples}_d{label}");
        let mut wsd_q = wsd.clone();
        let (out_wsd, t) =
            time_once(|| ws_relational::evaluate_query(&mut wsd_q, &query, "Q").unwrap());
        rec.record("eval", &cell, "wsd_s", t);
        let mut uwsdt = scenario.dirty_uwsdt().unwrap();
        let (out_uw, t) =
            time_once(|| ws_relational::evaluate_query(&mut uwsdt, &query, "Q").unwrap());
        rec.record("eval", &cell, "uwsdt_s", t);
        let mut udb = ws_urel::from_wsd(&wsd).unwrap();
        let (out_u, t) =
            time_once(|| ws_relational::evaluate_query(&mut udb, &query, "Q").unwrap());
        rec.record("eval", &cell, "urel_s", t);

        // The serial UWSDT reference point (no parallel API), once per grid
        // cell.
        let (uw_conf, uw_time) =
            time_once(|| ws_uwsdt::possible_with_confidence(&uwsdt, &out_uw).unwrap());

        let mut serial_exact = None;
        for threads in [1usize, par_threads] {
            let pool = WorkerPool::new(threads);
            let (wsd_conf, wsd_time) = time_once(|| {
                ws_core::confidence::possible_with_confidence_with(&wsd_q, &out_wsd, &pool).unwrap()
            });
            let (u_conf, u_time) =
                time_once(|| ws_urel::possible_with_confidence_with(&udb, &out_u, &pool).unwrap());
            let (_, wsd_mc_time) = time_once(|| {
                ws_core::confidence::approx::possible_with_confidence_with(
                    &wsd_q, &out_wsd, &approx, &pool,
                )
                .unwrap()
            });
            let (_, u_mc_time) = time_once(|| {
                ws_urel::confidence::approx::possible_with_confidence_with(
                    &udb, &out_u, &approx, &pool,
                )
                .unwrap()
            });

            assert_eq!(wsd_conf.len(), uw_conf.len());
            assert_eq!(wsd_conf.len(), u_conf.len());
            // Acceptance gate: exact results are bit-identical across thread
            // counts.
            match &serial_exact {
                None => serial_exact = Some((wsd_conf.clone(), u_conf.clone())),
                Some((wsd_serial, u_serial)) => {
                    assert_eq!(
                        &wsd_conf, wsd_serial,
                        "WSD exact drifted at {threads} threads"
                    );
                    assert_eq!(
                        &u_conf, u_serial,
                        "U-rel exact drifted at {threads} threads"
                    );
                }
            }

            let row = format!("{cell}_t{threads}");
            rec.record("confidence", &row, "wsd_exact_s", wsd_time);
            rec.record("confidence", &row, "uwsdt_exact_s", uw_time);
            rec.record("confidence", &row, "urel_exact_s", u_time);
            rec.record("confidence", &row, "wsd_approx_s", wsd_mc_time);
            rec.record("confidence", &row, "urel_approx_s", u_mc_time);
            print_row(&[
                tuples.to_string(),
                label.to_string(),
                wsd_conf.len().to_string(),
                threads.to_string(),
                secs(wsd_time),
                secs(uw_time),
                secs(u_time),
                secs(wsd_mc_time),
                secs(u_mc_time),
            ]);
        }
    }

    // ----------------------------------------------------------------------
    // Tier ablation: the same hierarchical query answered by each
    // Session::confidence tier.  A tuple-independent relation with n
    // variables all projecting onto one output tuple is the worst case for
    // native exact enumeration (2^n joint assignments) and the best case for
    // the safe-plan tier (one linear 1 − Π(1 − p) pass); the compiled d-tree
    // sits in between (independent components, no Shannon expansion needed).
    // All three must produce bit-identical numbers — the probabilities are
    // dyadic (1/4, 3/4), so no exact algorithm rounds anywhere.
    // ----------------------------------------------------------------------
    println!();
    println!("# Confidence tiers: safe plan vs compiled lineage vs native exact");
    println!("(tuple-independent U-relation, query π_B(σ_A<n(T)); n independent variables)");
    print_header(&[
        "variables",
        "safe (s)",
        "compiled (s)",
        "exact (s)",
        "exact/safe",
    ]);
    let var_counts: &[usize] = if is_quick() {
        &[14, 16]
    } else {
        &[14, 16, 18, 20]
    };
    for &n in var_counts {
        let mut udb = UDatabase::new();
        let mut rel = URelation::new(Schema::new("T", &["A", "B"]).unwrap());
        for i in 0..n {
            let var = format!("x{i}");
            udb.world_table_mut()
                .add_variable(&var, vec![0.25, 0.75])
                .unwrap();
            rel.push(
                Tuple::from_iter([i as i64, 0i64]),
                WsDescriptor::bind(&var, 1),
            )
            .unwrap();
        }
        udb.insert_relation(rel);
        let query = RaExpr::rel("T")
            .select(ws_relational::Predicate::cmp_const(
                "A",
                ws_relational::CmpOp::Lt,
                n as i64,
            ))
            .project(vec!["B"]);

        let timed_tier = |strategy: ConfidenceStrategy| {
            let mut session = Session::over(AnyBackend::from(udb.clone()));
            session.set_confidence_strategy(strategy);
            let prepared = session.prepare(query.clone()).unwrap();
            let (rows, t) = time_once(|| session.confidence(&prepared).unwrap());
            (rows, session.stats(), t)
        };
        let (safe_rows, safe_stats, safe_time) = timed_tier(ConfidenceStrategy::Tiered);
        let (compiled_rows, compiled_stats, compiled_time) =
            timed_tier(ConfidenceStrategy::CompiledOnly);
        let (exact_rows, exact_stats, exact_time) = timed_tier(ConfidenceStrategy::ExactOnly);

        // Each strategy must hit its intended tier and agree bit-for-bit.
        assert_eq!(safe_stats.conf_safe, 1, "safe tier did not fire");
        assert_eq!(
            compiled_stats.conf_compiled, 1,
            "compiled tier did not fire"
        );
        assert_eq!(exact_stats.conf_exact, 1, "exact tier did not fire");
        for rows in [&compiled_rows, &exact_rows] {
            assert_eq!(safe_rows.len(), rows.len());
            for ((ts, cs), (to, co)) in safe_rows.iter().zip(rows.iter()) {
                assert_eq!(ts, to, "tiers disagree on the possible tuples");
                assert_eq!(cs.to_bits(), co.to_bits(), "tiers are not bit-identical");
            }
        }
        // Acceptance gate (quick mode, enforced again by bench_gate on the
        // recorded JSON): the safe tier is at least 3× faster than native
        // exact enumeration on hierarchical queries.
        if is_quick() {
            assert!(
                safe_time.as_secs_f64() * 3.0 <= exact_time.as_secs_f64(),
                "safe tier ({:?}) is not ≥3× faster than exact ({:?}) at n = {n}",
                safe_time,
                exact_time,
            );
        }

        let cell = format!("v{n}");
        rec.record("tiers", &cell, "safe_s", safe_time);
        rec.record("tiers", &cell, "compiled_s", compiled_time);
        rec.record("tiers", &cell, "exact_s", exact_time);
        print_row(&[
            n.to_string(),
            secs(safe_time),
            secs(compiled_time),
            secs(exact_time),
            format!(
                "{:.1}x",
                exact_time.as_secs_f64() / safe_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    rec.flush();
}
