//! Ablation: confidence computation — threads × {exact, approximate}.
//!
//! Section 6 defines (NP-hard) exact confidence computation on tuple-level
//! WSDs; the U-relation extension evaluates the same operator over DNF
//! descriptors, and PR 2 adds (ε, δ)-approximate Monte-Carlo evaluators for
//! both plus a worker pool the per-tuple work fans out on.  This bench
//! measures the time to compute the confidences of all possible tuples of a
//! projection query along two axes:
//!
//! * **threads ∈ {1, N}** — the serial baseline against the machine-sized
//!   pool (`WS_BENCH_THREADS` overrides N); exact results are asserted
//!   bit-identical across thread counts,
//! * **exact vs. (ε, δ)-approximate** — the §6 / DNF algorithms against the
//!   Monte-Carlo estimators at ε = 0.02, δ = 0.01.
//!
//! The UWSDT evaluator (serial only) is kept as the cross-representation
//! reference point.  Run with:
//! `cargo bench -p ws-bench --bench ablation_confidence`
//! (`WS_BENCH_QUICK=1` for the CI smoke grid).

use ws_bench::{bench_threads, is_quick, print_header, print_row, secs, time_once, Recorder};
use ws_census::CensusScenario;
use ws_core::confidence::approx::ApproxConfig;
use ws_relational::{EngineConfig, RaExpr, WorkerPool};

fn main() {
    let mut rec = Recorder::new("ablation_confidence");
    let par_threads = bench_threads();
    let approx = ApproxConfig::new(0.02, 0.01);
    println!("# Confidence computation: threads x {{exact, approximate}}");
    println!(
        "(census scenarios; query π_CITIZEN,IMMIGR(R); times cover all possible tuples; \
         approximate = Monte-Carlo with ε = {}, δ = {})",
        approx.epsilon, approx.delta
    );
    println!(
        "serial config: {} | parallel config: {}",
        EngineConfig::default().summary(),
        EngineConfig::with_threads(par_threads).summary()
    );
    print_header(&[
        "tuples",
        "density",
        "possible tuples",
        "threads",
        "WSD exact (s)",
        "UWSDT exact, serial (s)",
        "U-rel exact (s)",
        "WSD approx (s)",
        "U-rel approx (s)",
    ]);

    let query = RaExpr::rel(ws_census::RELATION_NAME).project(vec!["CITIZEN", "IMMIGR"]);

    let grid: &[(usize, f64, &str)] = if is_quick() {
        &[(150, 0.001, "0.1%"), (300, 0.001, "0.1%")]
    } else {
        &[
            (200, 0.0005, "0.05%"),
            (200, 0.001, "0.1%"),
            (500, 0.001, "0.1%"),
            (1000, 0.001, "0.1%"),
        ]
    };

    for &(tuples, density, label) in grid {
        let scenario = CensusScenario::new(tuples, density, 0xC0FFEE);
        let wsd = scenario.dirty_wsd().unwrap();

        // Evaluate the query once per representation (timed and recorded, so
        // the JSON snapshot also tracks the engine's evaluation hot path).
        let cell = format!("n{tuples}_d{label}");
        let mut wsd_q = wsd.clone();
        let (out_wsd, t) =
            time_once(|| ws_relational::evaluate_query(&mut wsd_q, &query, "Q").unwrap());
        rec.record("eval", &cell, "wsd_s", t);
        let mut uwsdt = scenario.dirty_uwsdt().unwrap();
        let (out_uw, t) =
            time_once(|| ws_relational::evaluate_query(&mut uwsdt, &query, "Q").unwrap());
        rec.record("eval", &cell, "uwsdt_s", t);
        let mut udb = ws_urel::from_wsd(&wsd).unwrap();
        let (out_u, t) =
            time_once(|| ws_relational::evaluate_query(&mut udb, &query, "Q").unwrap());
        rec.record("eval", &cell, "urel_s", t);

        // The serial UWSDT reference point (no parallel API), once per grid
        // cell.
        let (uw_conf, uw_time) =
            time_once(|| ws_uwsdt::possible_with_confidence(&uwsdt, &out_uw).unwrap());

        let mut serial_exact = None;
        for threads in [1usize, par_threads] {
            let pool = WorkerPool::new(threads);
            let (wsd_conf, wsd_time) = time_once(|| {
                ws_core::confidence::possible_with_confidence_with(&wsd_q, &out_wsd, &pool).unwrap()
            });
            let (u_conf, u_time) =
                time_once(|| ws_urel::possible_with_confidence_with(&udb, &out_u, &pool).unwrap());
            let (_, wsd_mc_time) = time_once(|| {
                ws_core::confidence::approx::possible_with_confidence_with(
                    &wsd_q, &out_wsd, &approx, &pool,
                )
                .unwrap()
            });
            let (_, u_mc_time) = time_once(|| {
                ws_urel::confidence::approx::possible_with_confidence_with(
                    &udb, &out_u, &approx, &pool,
                )
                .unwrap()
            });

            assert_eq!(wsd_conf.len(), uw_conf.len());
            assert_eq!(wsd_conf.len(), u_conf.len());
            // Acceptance gate: exact results are bit-identical across thread
            // counts.
            match &serial_exact {
                None => serial_exact = Some((wsd_conf.clone(), u_conf.clone())),
                Some((wsd_serial, u_serial)) => {
                    assert_eq!(
                        &wsd_conf, wsd_serial,
                        "WSD exact drifted at {threads} threads"
                    );
                    assert_eq!(
                        &u_conf, u_serial,
                        "U-rel exact drifted at {threads} threads"
                    );
                }
            }

            let row = format!("{cell}_t{threads}");
            rec.record("confidence", &row, "wsd_exact_s", wsd_time);
            rec.record("confidence", &row, "uwsdt_exact_s", uw_time);
            rec.record("confidence", &row, "urel_exact_s", u_time);
            rec.record("confidence", &row, "wsd_approx_s", wsd_mc_time);
            rec.record("confidence", &row, "urel_approx_s", u_mc_time);
            print_row(&[
                tuples.to_string(),
                label.to_string(),
                wsd_conf.len().to_string(),
                threads.to_string(),
                secs(wsd_time),
                secs(uw_time),
                secs(u_time),
                secs(wsd_mc_time),
                secs(u_mc_time),
            ]);
        }
    }
    rec.flush();
}
