//! Ablation: confidence computation across representations.
//!
//! Section 6 defines confidence computation on (tuple-level) WSDs; the UWSDT
//! layer and the U-relation extension provide the same operator.  This bench
//! measures the time to compute the confidences of all possible tuples of a
//! projection query as the amount of uncertainty grows, and compares the
//! exact U-relation evaluator against its Monte-Carlo estimator.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_confidence`

use ws_bench::{print_header, print_row, secs, time_once};
use ws_census::CensusScenario;
use ws_core::interval::IntervalView;
use ws_relational::RaExpr;

fn main() {
    println!("# Confidence computation: WSD vs. UWSDT vs. U-relations (exact and Monte-Carlo)");
    println!("(census scenarios; query π_CITIZEN,IMMIGR(R); times include all possible tuples)");
    print_header(&[
        "tuples",
        "density",
        "possible tuples",
        "WSD conf (s)",
        "UWSDT conf (s)",
        "U-rel exact (s)",
        "U-rel MC 2k samples (s)",
        "interval bounds (s)",
    ]);

    let query = RaExpr::rel(ws_census::RELATION_NAME).project(vec!["CITIZEN", "IMMIGR"]);

    for &(tuples, density, label) in &[
        (200usize, 0.0005f64, "0.05%"),
        (200, 0.001, "0.1%"),
        (500, 0.001, "0.1%"),
        (1000, 0.001, "0.1%"),
    ] {
        let scenario = CensusScenario::new(tuples, density, 0xC0FFEE);

        // WSD view of the same scenario (built from the or-set noise).
        let wsd = scenario.dirty_wsd().unwrap();

        // Evaluate the query on each representation.
        let mut wsd_q = wsd.clone();
        let out_wsd = ws_core::ops::evaluate_query(&mut wsd_q, &query, "Q").unwrap();
        let (wsd_conf, wsd_time) =
            time_once(|| ws_core::confidence::possible_with_confidence(&wsd_q, &out_wsd).unwrap());

        let mut uwsdt = scenario.dirty_uwsdt().unwrap();
        let out_uw = ws_uwsdt::evaluate_query(&mut uwsdt, &query, "Q").unwrap();
        let (uw_conf, uw_time) =
            time_once(|| ws_uwsdt::possible_with_confidence(&uwsdt, &out_uw).unwrap());

        let mut udb = ws_urel::from_wsd(&wsd).unwrap();
        let out_u = ws_urel::evaluate_query(&mut udb, &query, "Q").unwrap();
        let (u_conf, u_time) =
            time_once(|| ws_urel::possible_with_confidence(&udb, &out_u).unwrap());
        let (_, mc_time) = time_once(|| {
            for (tuple, _) in &u_conf {
                ws_urel::approx_conf(&udb, &out_u, tuple, 2000, 7).unwrap();
            }
        });

        let (_, interval_time) = time_once(|| {
            let view = IntervalView::with_margin(&wsd_q, &out_wsd, 0.05).unwrap();
            view.possible_with_bounds().unwrap()
        });

        assert_eq!(wsd_conf.len(), uw_conf.len());
        assert_eq!(wsd_conf.len(), u_conf.len());

        print_row(&[
            tuples.to_string(),
            label.to_string(),
            wsd_conf.len().to_string(),
            secs(wsd_time),
            secs(uw_time),
            secs(u_time),
            secs(mc_time),
            secs(interval_time),
        ]);
    }
}
