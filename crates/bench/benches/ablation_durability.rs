//! Ablation: the cost of durability per backend — snapshot save (encode) and
//! load (decode + validate), WAL record append, and full recovery (newest
//! snapshot + WAL-tail replay) throughput.
//!
//! All groups run over the in-memory medium so the numbers isolate the
//! codec/replay work of `ws-storage` from disk hardware; the WAL group uses
//! `Wal::append` directly (framing + CRC + medium append), and the recovery
//! group opens a pre-built store image per iteration.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_durability`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms::{AnyBackend, Durable, Persist, UpdateExpr};
use std::time::Duration;
use ws_bench::is_quick;
use ws_core::{FieldId, Wsd};
use ws_relational::{Predicate, Tuple, Value};
use ws_storage::snapshot::write_snapshot;
use ws_storage::vfs::MemVfs;
use ws_storage::wal::Wal;

/// A WSD over R[A, B, C] with `tuples` slots and an uncertain `A` every
/// tenth tuple — the sparse-uncertainty shape of the census workload (same
/// generator as `ablation_updates`).
fn synthetic_wsd(tuples: usize) -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B", "C"], tuples)
        .unwrap();
    for t in 0..tuples {
        for (i, attr) in ["A", "B", "C"].iter().enumerate() {
            let field = FieldId::new("R", t, *attr);
            let base = (t * 3 + i) as i64 % 10;
            if i == 0 && t % 10 == 0 {
                wsd.set_uniform(
                    field,
                    vec![Value::int(base), Value::int(base + 1), Value::int(base + 2)],
                )
                .unwrap();
            } else {
                wsd.set_certain(field, Value::int(base)).unwrap();
            }
        }
    }
    wsd
}

/// One world of the WSD without enumerating the others.
fn one_world(wsd: &Wsd) -> ws_relational::Database {
    let mut db = ws_relational::Database::new();
    for name in wsd.relation_names() {
        let meta = wsd.meta(name).unwrap();
        let mut rel = ws_relational::Relation::new(meta.schema(name));
        for t in meta.live_tuples() {
            let values: Vec<Value> = meta
                .attrs
                .iter()
                .map(|a| {
                    wsd.possible_values(&FieldId::new(name, t, a.as_ref()))
                        .unwrap()
                        .into_iter()
                        .next()
                        .unwrap()
                })
                .collect();
            rel.push(Tuple::new(values)).unwrap();
        }
        db.insert_relation(rel);
    }
    db
}

/// The decomposed backends plus the single-world floor (the explicit
/// world-enumeration oracle is excluded — the synthetic sizes describe far
/// too many worlds to materialize).
fn backends(wsd: &Wsd) -> Vec<(&'static str, AnyBackend)> {
    vec![
        ("database", AnyBackend::from(one_world(wsd))),
        ("wsd", AnyBackend::from(wsd.clone())),
        ("uwsdt", AnyBackend::from(ws_uwsdt::from_wsd(wsd).unwrap())),
        ("urel", AnyBackend::from(ws_urel::from_wsd(wsd).unwrap())),
    ]
}

/// The update batch every WAL/recovery iteration logs and replays.
fn update_batch(tuples: usize) -> Vec<UpdateExpr> {
    vec![
        UpdateExpr::insert("R", Tuple::from_iter([9_000i64, 9_001, 9_002])),
        UpdateExpr::insert_possible("R", Tuple::from_iter([9_100i64, 9_101, 9_102]), 0.5),
        UpdateExpr::delete("R", Predicate::eq_const("B", 4i64)),
        UpdateExpr::modify(
            "R",
            Predicate::eq_const("A", (tuples as i64) % 7),
            vec![("C".to_string(), Value::int(-1))],
        ),
    ]
}

/// A pre-built store image: snapshot generation 0 plus a logged batch
/// (applied through the durable write path so the log is authentic).
fn store_image(backend: &AnyBackend, updates: &[UpdateExpr]) -> MemVfs {
    let vfs = MemVfs::new();
    let mut durable = Durable::create(Box::new(vfs.clone()), backend.clone()).unwrap();
    for update in updates {
        if matches!(backend, AnyBackend::Db(_))
            && matches!(update, UpdateExpr::InsertPossible { prob, .. } if *prob < 1.0)
        {
            continue; // a single world cannot split
        }
        maybms::apply_update(&mut durable, update).unwrap();
    }
    vfs
}

fn bench_durability(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let sizes: &[usize] = if is_quick() { &[50] } else { &[50, 200, 500] };
    for &tuples in sizes {
        let wsd = synthetic_wsd(tuples);
        let updates = update_batch(tuples);
        for (name, backend) in backends(&wsd) {
            // Snapshot save: full state encode + framing + atomic write.
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/snapshot_save"), tuples),
                &backend,
                |b, backend| {
                    b.iter(|| {
                        let mut vfs = MemVfs::new();
                        write_snapshot(&mut vfs, 0, backend).unwrap();
                        vfs.bytes("snapshot-0000000000000000.ws").unwrap().len()
                    })
                },
            );
            // Snapshot load: decode + structural validation.
            let image = backend.encode_to_vec();
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/snapshot_load"), tuples),
                &image,
                |b, image| {
                    b.iter(|| AnyBackend::decode_from_slice(image).unwrap());
                },
            );
            // WAL append: frame + checksum + medium append per record.
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/wal_append"), tuples),
                &updates,
                |b, updates| {
                    b.iter(|| {
                        let mut vfs = MemVfs::new();
                        let mut wal = Wal::reset(&mut vfs, 0).unwrap();
                        let mut bytes = 0usize;
                        for update in updates.iter() {
                            bytes += wal.append(&mut vfs, update).unwrap();
                        }
                        bytes
                    })
                },
            );
            // Recovery: newest snapshot + replay of the logged batch.
            let store = store_image(&backend, &updates);
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/recovery"), tuples),
                &store,
                |b, store| {
                    b.iter(|| {
                        let recovered =
                            Durable::<AnyBackend>::open(Box::new(store.fork())).unwrap();
                        recovered.stats().recovered_records
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
