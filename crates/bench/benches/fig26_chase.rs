//! Figure 26: time for chasing the twelve dependencies of Figure 25 on
//! census UWSDTs of various sizes and noise densities.
//!
//! The paper plots chase time (log–log) against the number of tuples
//! (0.1M–12.5M) for densities 0.005%–0.1% and observes linear growth in both
//! the number of tuples and the density.  This harness reproduces the series
//! on the scaled-down sweep (override sizes with `WS_BENCH_SIZES=...`).
//!
//! Run with: `cargo bench -p ws-bench --bench fig26_chase`

use ws_bench::{bench_sizes, print_header, print_row, secs, time_once, DENSITIES, DENSITY_LABELS};
use ws_census::{census_dependencies, CensusScenario, RELATION_NAME};
use ws_uwsdt::stats_for;

fn main() {
    println!("# Figure 25: the dependencies used for cleaning");
    for dependency in census_dependencies() {
        println!("  {dependency}");
    }
    println!();
    println!("# Figure 26: chase time vs. #tuples and density (seconds)");
    print_header(&[
        "tuples",
        "density",
        "placeholders",
        "|C| before",
        "|C| after",
        "#comp>1 after",
        "chase time [s]",
    ]);
    for &tuples in &bench_sizes() {
        for (i, &density) in DENSITIES.iter().enumerate() {
            let scenario = CensusScenario::new(tuples, density, 0xC0FFEE);
            let mut uwsdt = scenario
                .dirty_uwsdt()
                .expect("census scenario construction cannot fail");
            let before = stats_for(&uwsdt, RELATION_NAME).unwrap();
            let deps = census_dependencies();
            let (result, elapsed) = time_once(|| ws_uwsdt::chase::chase(&mut uwsdt, &deps));
            result.expect("the census data always has a consistent world");
            let after = stats_for(&uwsdt, RELATION_NAME).unwrap();
            print_row(&[
                tuples.to_string(),
                DENSITY_LABELS[i].to_string(),
                before.placeholders.to_string(),
                before.c_size.to_string(),
                after.c_size.to_string(),
                after.components_multi.to_string(),
                secs(elapsed),
            ]);
        }
    }
    println!();
    println!("Expected shape (paper): time grows roughly linearly with the tuple count and");
    println!("with the density; the number of multi-placeholder components stays a small");
    println!("fraction (≈1-2%) of all components even at the highest density.");
}
