//! Ablation: the lineage layer — extraction, annotated evaluation, and the
//! d-tree compiler against brute-force joint enumeration.
//!
//! The tiered `Session::confidence` strategy (PR 7) rests on four pieces of
//! machinery whose costs this bench isolates on the census workload:
//!
//! * **extract** — mapping the WSD onto finite-domain lineage variables
//!   ([`maybms::lineage::wsd_lineage`]),
//! * **eval** — the annotated executor propagating one clause per derivation
//!   ([`ws_relational::lineage::evaluate_lineage`]),
//! * **dtree** — compiling every output tuple's DNF with the
//!   Shannon-expansion compiler and shared memo
//!   ([`ws_relational::lineage::DtreeCompiler`]),
//! * **enumerate** — the same DNFs by brute-force joint enumeration over the
//!   relevant variables ([`ws_relational::lineage::enumerate_probability`]),
//!   the baseline the compiler must beat as components grow.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_lineage`
//! (`WS_BENCH_QUICK=1` for the CI smoke grid).

use std::collections::BTreeSet;

use ws_bench::{is_quick, print_header, print_row, secs, time_once, Recorder};
use ws_census::CensusScenario;
use ws_relational::lineage::{enumerate_probability, evaluate_lineage, DtreeCompiler};
use ws_relational::RaExpr;

fn main() {
    let mut rec = Recorder::new("ablation_lineage");
    println!("# Lineage layer: extract / annotated eval / d-tree vs enumeration");
    println!("(census scenarios; query π_CITIZEN,IMMIGR(R) evaluated over the extracted lineage)");
    print_header(&[
        "tuples",
        "density",
        "vars",
        "output tuples",
        "extract (s)",
        "eval (s)",
        "d-tree (s)",
        "enumerate (s)",
        "memo hits",
    ]);

    let query = RaExpr::rel(ws_census::RELATION_NAME).project(vec!["CITIZEN", "IMMIGR"]);
    let relations: BTreeSet<String> = [ws_census::RELATION_NAME.to_string()].into();

    let grid: &[(usize, f64, &str)] = if is_quick() {
        &[(150, 0.001, "0.1%"), (300, 0.001, "0.1%")]
    } else {
        &[
            (200, 0.001, "0.1%"),
            (500, 0.001, "0.1%"),
            (1000, 0.001, "0.1%"),
            (1000, 0.0005, "0.05%"),
        ]
    };

    for &(tuples, density, label) in grid {
        let scenario = CensusScenario::new(tuples, density, 0xC0FFEE);
        let wsd = scenario.dirty_wsd().unwrap();
        let cell = format!("n{tuples}_d{label}");

        let (lineage, extract_time) =
            time_once(|| maybms::lineage::wsd_lineage(&wsd, &relations).unwrap());
        rec.record("lineage", &cell, "extract_s", extract_time);

        let (output, eval_time) = time_once(|| evaluate_lineage(&lineage, &query).unwrap());
        rec.record("lineage", &cell, "eval_s", eval_time);
        let dnfs = output.dnfs();

        let mut compiler = DtreeCompiler::new(lineage.vars());
        let (compiled, dtree_time) = time_once(|| {
            dnfs.iter()
                .map(|(tuple, dnf)| (tuple.clone(), compiler.probability(dnf).unwrap()))
                .collect::<Vec<_>>()
        });
        rec.record("lineage", &cell, "dtree_s", dtree_time);

        let (enumerated, enum_time) = time_once(|| {
            dnfs.iter()
                .map(|(tuple, dnf)| {
                    (
                        tuple.clone(),
                        enumerate_probability(dnf, lineage.vars(), 1 << 24).unwrap(),
                    )
                })
                .collect::<Vec<_>>()
        });
        rec.record("lineage", &cell, "enumerate_s", enum_time);

        // Correctness gate: the compiler and the brute-force enumeration are
        // two independent exact algorithms over the same DNFs.
        assert_eq!(compiled.len(), enumerated.len());
        for ((tc, pc), (te, pe)) in compiled.iter().zip(&enumerated) {
            assert_eq!(tc, te);
            assert!(
                (pc - pe).abs() < 1e-9,
                "d-tree and enumeration disagree on {tc}: {pc} vs {pe}"
            );
        }

        print_row(&[
            tuples.to_string(),
            label.to_string(),
            lineage.vars().len().to_string(),
            dnfs.len().to_string(),
            secs(extract_time),
            secs(eval_time),
            secs(dtree_time),
            secs(enum_time),
            compiler.memo_hits().to_string(),
        ]);
    }
    rec.flush();
}
