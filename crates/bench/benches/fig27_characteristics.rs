//! Figure 27: UWSDT characteristics of the chased census relation and of the
//! answers to the queries Q1–Q6, per noise density.
//!
//! The paper reports, for the 12.5M-tuple data set and each density, the
//! number of components (`#comp`), the number of components with more than
//! one placeholder (`#comp>1`), the size of the component relation (`|C|`)
//! and the size of the template relation (`|R|`) — first for the chased
//! relation, then for every query answer.  This harness prints the same rows
//! for the largest configured size (override with `WS_BENCH_SIZES=...`).
//!
//! Run with: `cargo bench -p ws-bench --bench fig27_characteristics`

use ws_bench::{bench_sizes, print_header, print_row, DENSITIES, DENSITY_LABELS};
use ws_census::{all_queries, CensusScenario, RELATION_NAME};
use ws_relational::evaluate_query;
use ws_uwsdt::{stats_for, UwsdtStats};

fn row(label: &str, density: &str, stats: &UwsdtStats) -> Vec<String> {
    vec![
        label.to_string(),
        density.to_string(),
        stats.components.to_string(),
        stats.components_multi.to_string(),
        stats.c_size.to_string(),
        stats.template_rows.to_string(),
    ]
}

fn main() {
    let tuples = *bench_sizes().iter().max().expect("size list is non-empty");
    println!("# Figure 27: UWSDT characteristics for {tuples} tuples");
    print_header(&["stage", "density", "#comp", "#comp>1", "|C|", "|R|"]);
    for (i, &density) in DENSITIES.iter().enumerate() {
        let scenario = CensusScenario::new(tuples, density, 0xC0FFEE);
        let dirty = scenario.dirty_uwsdt().unwrap();
        print_row(&row(
            "initial",
            DENSITY_LABELS[i],
            &stats_for(&dirty, RELATION_NAME).unwrap(),
        ));
        let mut uwsdt = scenario.chased_uwsdt().unwrap();
        print_row(&row(
            "after chase",
            DENSITY_LABELS[i],
            &stats_for(&uwsdt, RELATION_NAME).unwrap(),
        ));
        for (label, query) in all_queries() {
            let out = format!("{label}_OUT");
            evaluate_query(&mut uwsdt, &query, &out).unwrap();
            print_row(&row(
                &format!("after {label}"),
                DENSITY_LABELS[i],
                &stats_for(&uwsdt, &out).unwrap(),
            ));
        }
    }
    println!();
    println!("Expected shape (paper): the number of components of every query answer is a");
    println!("small fraction of the input's, grows linearly with the density, and the answer");
    println!("template |R| stays close to the size of the same answer on a single world;");
    println!("query evaluation merges far fewer components than the chase does.");
}
