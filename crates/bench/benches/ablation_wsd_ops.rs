//! Ablation: micro-benchmarks (Criterion) of the WSD-level building blocks —
//! the operator algorithms of Figure 9, normalization (Figure 20), the chase
//! (Figure 24) and confidence computation (Figure 17) — on synthetic
//! world-sets of increasing size.
//!
//! These are not figures of the paper; they quantify the design choices
//! DESIGN.md calls out (cost of composing components, payoff of
//! decomposition, confidence vs. world enumeration).
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_wsd_ops`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ws_bench::is_quick;
use ws_core::chase::{chase, Dependency, EqualityGeneratingDependency, FunctionalDependency};
use ws_core::confidence::TupleLevelView;
use ws_core::normalize;
use ws_core::{FieldId, Wsd};
use ws_relational::{CmpOp, Predicate, RaExpr, Tuple, Value};

/// A WSD over R[A, B, C] with `tuples` tuple slots and an uncertain field
/// every `spacing` tuples (or-set of three values).
fn synthetic_wsd(tuples: usize, spacing: usize) -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B", "C"], tuples)
        .unwrap();
    for t in 0..tuples {
        for (i, attr) in ["A", "B", "C"].iter().enumerate() {
            let field = FieldId::new("R", t, *attr);
            let base = (t * 3 + i) as i64 % 10;
            if i == 0 && t % spacing == 0 {
                wsd.set_uniform(
                    field,
                    vec![Value::int(base), Value::int(base + 1), Value::int(base + 2)],
                )
                .unwrap();
            } else {
                wsd.set_certain(field, Value::int(base)).unwrap();
            }
        }
    }
    wsd
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsd_operators");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let sizes: &[usize] = if is_quick() {
        &[50, 200]
    } else {
        &[50, 200, 500]
    };
    for &tuples in sizes {
        let wsd = synthetic_wsd(tuples, 5);
        group.bench_with_input(BenchmarkId::new("select_const", tuples), &wsd, |b, wsd| {
            b.iter(|| {
                let mut w = wsd.clone();
                ws_core::ops::select_const(&mut w, "R", "P", "A", CmpOp::Gt, &Value::int(3))
                    .unwrap();
            })
        });
        group.bench_with_input(
            BenchmarkId::new("select_attr_attr", tuples),
            &wsd,
            |b, wsd| {
                b.iter(|| {
                    let mut w = wsd.clone();
                    ws_core::ops::select_attr(&mut w, "R", "P", "A", CmpOp::Eq, "B").unwrap();
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("project", tuples), &wsd, |b, wsd| {
            b.iter(|| {
                let mut w = wsd.clone();
                ws_core::ops::project(&mut w, "R", "P", &["A", "B"]).unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("union_self", tuples), &wsd, |b, wsd| {
            b.iter(|| {
                let mut w = wsd.clone();
                ws_relational::evaluate_query(
                    &mut w,
                    &RaExpr::rel("R")
                        .select(Predicate::eq_const("B", 1i64))
                        .union(RaExpr::rel("R").select(Predicate::eq_const("C", 2i64))),
                    "P",
                )
                .unwrap();
            })
        });
    }
    group.finish();
}

fn bench_normalization_and_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsd_maintenance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // The FD chase composes components of tuples that share key values; past
    // ~100 tuples on this synthetic grid the compositions grow exponentially
    // (multi-GB at 200), so the sweep stops where the bench still terminates.
    let compose_sizes: &[usize] = if is_quick() { &[50] } else { &[50, 100] };
    for &tuples in compose_sizes {
        let wsd = synthetic_wsd(tuples, 4);
        group.bench_with_input(BenchmarkId::new("normalize", tuples), &wsd, |b, wsd| {
            b.iter(|| {
                let mut w = wsd.clone();
                // De-normalize a little, then re-normalize.
                w.compose_fields(&[FieldId::new("R", 0, "A"), FieldId::new("R", 0, "B")])
                    .unwrap();
                normalize::normalize(&mut w).unwrap();
            })
        });
        let deps = vec![
            Dependency::Egd(EqualityGeneratingDependency::implies(
                "R",
                "A",
                1i64,
                "B",
                CmpOp::Ne,
                4i64,
            )),
            Dependency::Fd(FunctionalDependency::new("R", vec!["A"], vec!["C"])),
        ];
        group.bench_with_input(BenchmarkId::new("chase", tuples), &wsd, |b, wsd| {
            b.iter(|| {
                let mut w = wsd.clone();
                let _ = chase(&mut w, &deps);
            })
        });
        group.bench_with_input(BenchmarkId::new("confidence", tuples), &wsd, |b, wsd| {
            b.iter(|| {
                let view = TupleLevelView::new(wsd, "R").unwrap();
                view.conf(&Tuple::from_iter([0i64, 1, 2])).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators, bench_normalization_and_chase);
criterion_main!(benches);
