//! Ablation: per-backend throughput of the update language — certain and
//! possible inserts, predicated deletes/modifications and conditioning —
//! applied through `maybms::Session::apply` on every decomposed
//! representation (the explicit world-enumeration oracle is left out: its
//! cost is the paper's point, not a useful axis here).
//!
//! This quantifies the representational trade-off the update subsystem
//! exposes: WSDs/UWSDTs pay component composition + re-decomposition on
//! predicated writes, U-relations pay world-table DNF rewriting only when
//! conditioning, and the single-world database is the "0% uncertainty"
//! floor.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_updates`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms::{AnyBackend, Session, UpdateExpr};
use std::time::Duration;
use ws_bench::is_quick;
use ws_core::{FieldId, Wsd};
use ws_relational::{CmpOp, Dependency, EqualityGeneratingDependency, Predicate, Tuple, Value};

/// A WSD over R[A, B, C] with `tuples` slots and an uncertain `A` every
/// `spacing` tuples (an or-set of three values) — the sparse-uncertainty
/// shape of the census workload.
fn synthetic_wsd(tuples: usize, spacing: usize) -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B", "C"], tuples)
        .unwrap();
    for t in 0..tuples {
        for (i, attr) in ["A", "B", "C"].iter().enumerate() {
            let field = FieldId::new("R", t, *attr);
            let base = (t * 3 + i) as i64 % 10;
            if i == 0 && t % spacing == 0 {
                wsd.set_uniform(
                    field,
                    vec![Value::int(base), Value::int(base + 1), Value::int(base + 2)],
                )
                .unwrap();
            } else {
                wsd.set_certain(field, Value::int(base)).unwrap();
            }
        }
    }
    wsd
}

/// One world of the WSD without enumerating the (astronomically many)
/// others: every field certainized to its smallest possible value.
fn one_world(wsd: &Wsd) -> ws_relational::Database {
    let mut db = ws_relational::Database::new();
    for name in wsd.relation_names() {
        let meta = wsd.meta(name).unwrap();
        let mut rel = ws_relational::Relation::new(meta.schema(name));
        for t in meta.live_tuples() {
            let values: Vec<Value> = meta
                .attrs
                .iter()
                .map(|a| {
                    wsd.possible_values(&FieldId::new(name, t, a.as_ref()))
                        .unwrap()
                        .into_iter()
                        .next()
                        .unwrap()
                })
                .collect();
            if !values.iter().any(Value::is_bottom) {
                rel.push(Tuple::new(values)).unwrap();
            }
        }
        db.insert_relation(rel);
    }
    db
}

/// The same world-set behind every updatable backend (the explicit
/// world-enumeration oracle is excluded — the synthetic sizes describe far
/// too many worlds to enumerate).
fn backends(wsd: &Wsd) -> Vec<(&'static str, AnyBackend)> {
    vec![
        ("database", AnyBackend::from(one_world(wsd))),
        ("wsd", AnyBackend::from(wsd.clone())),
        ("uwsdt", AnyBackend::from(ws_uwsdt::from_wsd(wsd).unwrap())),
        ("urel", AnyBackend::from(ws_urel::from_wsd(wsd).unwrap())),
    ]
}

fn updates_suite(tuples: usize) -> Vec<(&'static str, UpdateExpr)> {
    vec![
        (
            "insert_certain",
            UpdateExpr::insert("R", Tuple::from_iter([9_000i64, 9_001, 9_002])),
        ),
        (
            "insert_possible",
            UpdateExpr::insert_possible("R", Tuple::from_iter([9_100i64, 9_101, 9_102]), 0.5),
        ),
        (
            "delete_certain_pred",
            UpdateExpr::delete("R", Predicate::eq_const("B", 4i64)),
        ),
        (
            "delete_uncertain_pred",
            UpdateExpr::delete("R", Predicate::eq_const("A", 3i64)),
        ),
        (
            "modify_uncertain_pred",
            UpdateExpr::modify(
                "R",
                Predicate::cmp_const("A", CmpOp::Ge, (tuples as i64) % 7),
                vec![("C".to_string(), Value::int(-1))],
            ),
        ),
        (
            "condition_egd",
            UpdateExpr::condition(vec![Dependency::Egd(
                EqualityGeneratingDependency::implies("R", "A", 3i64, "B", CmpOp::Ge, 0i64),
            )]),
        ),
    ]
}

fn bench_update_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let sizes: &[usize] = if is_quick() { &[50] } else { &[50, 200, 500] };
    for &tuples in sizes {
        let wsd = synthetic_wsd(tuples, 10);
        for (backend_name, backend) in backends(&wsd) {
            for (update_name, update) in updates_suite(tuples) {
                if backend_name == "database"
                    && matches!(&update, UpdateExpr::InsertPossible { prob, .. } if *prob < 1.0)
                {
                    continue; // a single world cannot split
                }
                group.bench_with_input(
                    BenchmarkId::new(format!("{backend_name}/{update_name}"), tuples),
                    &(&backend, &update),
                    |b, (backend, update)| {
                        b.iter(|| {
                            let mut session = Session::over((*backend).clone());
                            session.apply(update).unwrap();
                            session.stats().updates_applied
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_update_throughput);
criterion_main!(benches);
