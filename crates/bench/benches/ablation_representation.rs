//! Ablation: representation sizes across the systems the paper discusses —
//! explicit world-set relations, or-set readings, WSDs, WSDTs and UWSDTs —
//! plus the payoff of the normalization steps (compress + decompose).
//!
//! This quantifies the motivation of §1/§3: the explicit representation grows
//! with the number of worlds (exponentially in the number of uncertain
//! fields), while the decomposed representations grow only with the amount of
//! uncertainty.
//!
//! Run with: `cargo bench -p ws-bench --bench ablation_representation`

use ws_bench::{print_header, print_row, secs, time_once};
use ws_census::CensusScenario;
use ws_core::{normalize, WorldSetRelation, Wsdt};
use ws_uwsdt::stats_for;

/// Approximate in-memory footprint of a UWSDT census relation: template cells
/// plus component-table entries (each counted as one field).
fn uwsdt_cells(stats: &ws_uwsdt::UwsdtStats) -> usize {
    stats.template_rows * ws_census::ATTRIBUTE_COUNT + stats.c_size + 2 * stats.placeholders
}

fn main() {
    println!("# Representation size: explicit worlds vs. decompositions");
    println!("(small scenarios so that the explicit world-set relation can be materialized)");
    print_header(&[
        "tuples",
        "uncertain fields",
        "worlds",
        "world-set relation cells",
        "WSD cells",
        "WSDT cells",
        "UWSDT cells",
    ]);
    for &(tuples, density) in &[(20usize, 0.003f64), (30, 0.003), (40, 0.003), (50, 0.004)] {
        let scenario = CensusScenario::new(tuples, density, 7);
        let uwsdt = scenario.dirty_uwsdt().unwrap();
        let stats = stats_for(&uwsdt, ws_census::RELATION_NAME).unwrap();

        // Build the WSD view of the same data.
        let noise = scenario.noise();
        let wsd = scenario.dirty_wsd().unwrap();
        // The explicit world-set relation has one row per world and one column
        // per field of the inlined schema (it is never materialized here — the
        // cell count follows from the definition in §3).  Materialize a small
        // sample to exercise the inline encoding.
        let world_count = wsd.world_count();
        let explicit_cells =
            world_count.saturating_mul((tuples * ws_census::ATTRIBUTE_COUNT) as u128);
        if world_count <= 512 {
            let worlds = wsd.rep_with_limit(512).unwrap();
            let wsr = WorldSetRelation::from_world_set(&worlds).unwrap();
            assert_eq!(wsr.arity(), tuples * ws_census::ATTRIBUTE_COUNT);
        }
        let wsd_cells: usize = wsd
            .components()
            .map(|(_, c)| c.len() * (c.width() + 1))
            .sum();
        let wsdt = Wsdt::from_wsd(&wsd).unwrap();
        let wsdt_cells: usize = wsdt.template_rows() * ws_census::ATTRIBUTE_COUNT
            + wsdt
                .components
                .iter()
                .map(|c| c.len() * (c.width() + 1))
                .sum::<usize>();
        print_row(&[
            tuples.to_string(),
            noise.len().to_string(),
            world_count.to_string(),
            explicit_cells.to_string(),
            wsd_cells.to_string(),
            wsdt_cells.to_string(),
            uwsdt_cells(&stats).to_string(),
        ]);
    }

    println!();
    println!("# Normalization payoff: compress + decompose after artificial composition");
    print_header(&[
        "tuples",
        "components before",
        "components after compose",
        "components after normalize",
        "normalize time [s]",
    ]);
    for &tuples in &[50usize, 100, 200] {
        let scenario = CensusScenario::new(tuples, 0.02, 13);
        let noise = scenario.noise();
        let mut wsd = scenario.dirty_wsd().unwrap();
        let before = wsd.component_count();
        // Artificially compose pairs of uncertain fields (as a join-heavy
        // query or an unlucky chase order would).
        let uncertain: Vec<ws_core::FieldId> = noise
            .iter()
            .map(|f| ws_core::FieldId::new("R", f.tuple, f.attr.as_str()))
            .collect();
        for pair in uncertain.chunks(2) {
            if pair.len() == 2 {
                wsd.compose_fields(&[pair[0].clone(), pair[1].clone()])
                    .unwrap();
            }
        }
        let composed = wsd.component_count();
        let ((), elapsed) = time_once(|| normalize::normalize(&mut wsd).unwrap());
        print_row(&[
            tuples.to_string(),
            before.to_string(),
            composed.to_string(),
            wsd.component_count().to_string(),
            secs(elapsed),
        ]);
    }
    println!();
    println!("Expected shape: the explicit representation grows with the number of worlds");
    println!("(exponential in the uncertain fields) while WSD/WSDT/UWSDT sizes grow only");
    println!("with the amount of uncertainty; normalization recovers the maximal");
    println!("decomposition (independent fields split back into singleton components).");
}
