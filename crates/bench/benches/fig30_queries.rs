//! Figure 30 (a)–(f): evaluation time of the queries Q1–Q6 on chased census
//! UWSDTs of various sizes and densities, including the 0%-density
//! single-world baseline.
//!
//! The paper's headline result: the evaluation time on UWSDTs follows very
//! closely the evaluation time on one world (the "0%" series), because almost
//! all processing happens on the template relation and the component tables
//! stay tiny.
//!
//! Run with: `cargo bench -p ws-bench --bench fig30_queries`

use maybms::Session;
use std::time::Duration;
use ws_bench::{bench_sizes, print_header, print_row, secs, time_once, DENSITIES, DENSITY_LABELS};
use ws_census::{all_queries, CensusScenario, RELATION_NAME};
use ws_relational::evaluate;
use ws_uwsdt::stats_for;

fn main() {
    println!("# Figure 29: the queries");
    for (label, query) in all_queries() {
        println!("  {label} := {query}");
    }
    println!();
    println!("# Figure 30: query evaluation time (seconds) on chased UWSDTs vs. one world");
    print_header(&[
        "query",
        "tuples",
        "density",
        "answer |R|",
        "answer #comp",
        "uwsdt [s]",
        "one-world [s]",
        "ratio",
    ]);
    for &tuples in &bench_sizes() {
        let baseline_scenario = CensusScenario::new(tuples, 0.0, 0xC0FFEE);
        let one_world = baseline_scenario.one_world();
        // The 0% baseline per query.
        let mut baseline: Vec<(String, Duration, usize)> = Vec::new();
        for (label, query) in all_queries() {
            let (result, elapsed) = time_once(|| evaluate(&one_world, &query).unwrap());
            baseline.push((label.to_string(), elapsed, result.len()));
        }
        for (label, elapsed, rows) in &baseline {
            print_row(&[
                label.clone(),
                tuples.to_string(),
                "0% (one world)".to_string(),
                rows.to_string(),
                "0".to_string(),
                "-".to_string(),
                secs(*elapsed),
                "1.00".to_string(),
            ]);
        }
        for (i, &density) in DENSITIES.iter().enumerate() {
            let scenario = CensusScenario::new(tuples, density, 0xC0FFEE);
            let uwsdt = scenario.chased_uwsdt().unwrap();
            let _ = stats_for(&uwsdt, RELATION_NAME).unwrap();
            // One session per chased UWSDT: prepare runs the optimizer once
            // per query, execute replays the cached physical plan.
            let mut session = Session::new(uwsdt);
            for (j, (label, query)) in all_queries().into_iter().enumerate() {
                let prepared = session.prepare(query).unwrap();
                let (out, elapsed) = time_once(|| session.materialize(&prepared).unwrap());
                let stats = stats_for(session.backend(), &out).unwrap();
                let base = baseline[j].1.as_secs_f64().max(1e-9);
                print_row(&[
                    label.to_string(),
                    tuples.to_string(),
                    DENSITY_LABELS[i].to_string(),
                    stats.template_rows.to_string(),
                    stats.components.to_string(),
                    secs(elapsed),
                    secs(baseline[j].1),
                    format!("{:.2}", elapsed.as_secs_f64() / base),
                ]);
            }
            println!(
                "  [{} @ {}] {}",
                tuples,
                DENSITY_LABELS[i],
                session.summary()
            );
        }
    }
    println!();
    println!("Expected shape (paper): for every query the UWSDT time stays within a small");
    println!("constant factor of the one-world time at every density, and both grow");
    println!("linearly with the number of tuples; Q5 (the join) is the most expensive.");
}
