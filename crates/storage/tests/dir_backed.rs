//! The filesystem half of the durability story: the same create → update →
//! crash → recover cycle the in-memory crash suite proves, but against a
//! real directory (`CARGO_TARGET_TMPDIR`), including on-disk torn tails,
//! snapshot corruption fallback, and the atomic-rename checkpoint.

use std::path::PathBuf;
use ws_core::Wsd;
use ws_relational::{Predicate, Tuple, Value, WriteBackend};
use ws_storage::vfs::{DirVfs, Vfs};
use ws_storage::wal::WAL_FILE;
use ws_storage::{Durable, Persist, StorageError};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn dir_vfs_implements_the_medium_contract() {
    let dir = scratch_dir("dir_vfs_contract");
    let mut vfs = DirVfs::open(&dir).unwrap();
    assert_eq!(vfs.read("a").unwrap(), None);
    vfs.write_atomic("a", b"hello").unwrap();
    vfs.append("a", b" world").unwrap();
    vfs.sync("a").unwrap();
    assert_eq!(vfs.read("a").unwrap().unwrap(), b"hello world");
    vfs.truncate("a", 5).unwrap();
    assert_eq!(vfs.read("a").unwrap().unwrap(), b"hello");
    // An atomic overwrite invalidates the cached append handle.
    vfs.write_atomic("a", b"fresh").unwrap();
    vfs.append("a", b"!").unwrap();
    assert_eq!(vfs.read("a").unwrap().unwrap(), b"fresh!");
    assert!(vfs.list().unwrap().contains(&"a".to_string()));
    vfs.remove("a").unwrap();
    vfs.remove("a").unwrap(); // idempotent
    assert_eq!(vfs.read("a").unwrap(), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_store_directory_survives_reopen_checkpoint_and_torn_tail() {
    let dir = scratch_dir("durable_cycle");
    let wsd = ws_core::wsd::example_census_wsd();

    // Create, update, checkpoint, update again, drop without closing.
    let expected = {
        let mut durable = Durable::create_dir(&dir, wsd.clone()).unwrap();
        durable
            .insert_certain(
                "R",
                &Tuple::from_iter([Value::int(500), Value::text("Davis"), Value::int(3)]),
            )
            .unwrap();
        durable.checkpoint().unwrap();
        durable
            .delete_where("R", &Predicate::eq_const("N", "Brown"))
            .unwrap();
        durable.sync().unwrap();
        durable.into_inner().rep().unwrap()
    };

    // Reopen: snapshot generation 1 plus a one-record WAL tail.
    let recovered = Durable::<Wsd>::open_dir(&dir).unwrap();
    assert_eq!(recovered.generation(), 1);
    assert_eq!(recovered.stats().recovered_records, 1);
    let got = recovered.inner().rep().unwrap();
    assert!(expected.same_worlds(&got) && expected.same_distribution(&got, 0.0));
    let baseline_bytes = recovered.inner().encode_to_vec();
    drop(recovered);

    // Tear the WAL's last record on disk: recovery truncates it away and
    // lands on the checkpointed state.
    let wal_path = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 2]).unwrap();
    let recovered = Durable::<Wsd>::open_dir(&dir).unwrap();
    assert_eq!(recovered.stats().recovered_records, 0);
    assert!(recovered.stats().torn_bytes_truncated > 0);
    assert_ne!(
        recovered.inner().encode_to_vec(),
        baseline_bytes,
        "the torn delete must not have replayed"
    );
    drop(recovered);

    // Corrupt the newest snapshot: recovery falls back to generation 0 and
    // the (now intact-again-after-truncation) WAL for generation 1 is
    // rejected rather than replayed against the wrong base.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| n.starts_with("snapshot-"))
        .collect();
    assert_eq!(names.len(), 2, "generations 0 and 1 on disk: {names:?}");
    let newest = names.iter().max().unwrap();
    let mut snap = std::fs::read(dir.join(newest)).unwrap();
    let mid = snap.len() / 2;
    snap[mid] ^= 0x10;
    std::fs::write(dir.join(newest), &snap).unwrap();
    let err = Durable::<Wsd>::open_dir(&dir).unwrap_err();
    assert!(
        matches!(err, StorageError::Corrupt(_)),
        "replaying a generation-1 WAL onto the generation-0 snapshot would \
         double-apply history; got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn close_is_the_drop_with_result_teardown() {
    let dir = scratch_dir("durable_close");
    let wsd = ws_core::wsd::example_census_wsd();
    let mut durable = Durable::create_dir(&dir, wsd).unwrap();
    durable
        .insert_certain(
            "R",
            &Tuple::from_iter([Value::int(7), Value::text("Eve"), Value::int(1)]),
        )
        .unwrap();
    let backend = durable.close().unwrap();
    assert_eq!(backend.meta("R").unwrap().tuple_count, 3);
    // The synced store reopens to the same state.
    let recovered = Durable::<Wsd>::open_dir(&dir).unwrap();
    assert_eq!(recovered.inner().meta("R").unwrap().tuple_count, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A real-directory medium whose WAL writes can be made to fail on demand —
/// the minimal fault injector for driving a store into the poisoned state
/// (checkpoint snapshot durable, log reset failed) on disk.
#[derive(Debug)]
struct SabotagedDir {
    inner: DirVfs,
    fail_wal_writes: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl Vfs for SabotagedDir {
    fn read(&mut self, name: &str) -> ws_storage::error::Result<Option<Vec<u8>>> {
        self.inner.read(name)
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> ws_storage::error::Result<()> {
        if name == WAL_FILE
            && self
                .fail_wal_writes
                .load(std::sync::atomic::Ordering::SeqCst)
        {
            return Err(StorageError::io("injected: the log write went dark"));
        }
        self.inner.write_atomic(name, bytes)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> ws_storage::error::Result<()> {
        self.inner.append(name, bytes)
    }

    fn truncate(&mut self, name: &str, len: u64) -> ws_storage::error::Result<()> {
        self.inner.truncate(name, len)
    }

    fn sync(&mut self, name: &str) -> ws_storage::error::Result<()> {
        self.inner.sync(name)
    }

    fn remove(&mut self, name: &str) -> ws_storage::error::Result<()> {
        self.inner.remove(name)
    }

    fn list(&mut self) -> ws_storage::error::Result<Vec<String>> {
        self.inner.list()
    }
}

#[test]
fn closing_a_poisoned_directory_store_reports_the_cause_chain() {
    let dir = scratch_dir("durable_poisoned_close");
    let wsd = ws_core::wsd::example_census_wsd();
    let fail_wal_writes = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let vfs = SabotagedDir {
        inner: DirVfs::open(&dir).unwrap(),
        fail_wal_writes: fail_wal_writes.clone(),
    };
    let mut durable = Durable::create(Box::new(vfs), wsd.clone()).unwrap();
    durable
        .insert_certain(
            "R",
            &Tuple::from_iter([Value::int(9), Value::text("Frank"), Value::int(2)]),
        )
        .unwrap();

    // Checkpoint with the WAL write sabotaged: the snapshot lands on disk,
    // the log reset fails, and the store poisons itself.
    fail_wal_writes.store(true, std::sync::atomic::Ordering::SeqCst);
    let checkpoint_err = durable.checkpoint().unwrap_err();
    assert!(
        checkpoint_err.to_string().contains("went dark"),
        "got: {checkpoint_err}"
    );
    fail_wal_writes.store(false, std::sync::atomic::Ordering::SeqCst);

    // Regression: close() must surface the poison diagnosis, not swallow it
    // behind a successful final sync.
    let close_err = durable.close().unwrap_err();
    let msg = close_err.to_string();
    assert!(msg.contains("closing a poisoned store"), "got: {msg}");
    assert!(msg.contains("could not be reset"), "got: {msg}");
    assert!(msg.contains("went dark"), "got: {msg}");

    // The crash point is recoverable: the durable snapshot wins, the stale
    // older-generation WAL is discarded, nothing double-applies.
    let recovered = Durable::<Wsd>::open_dir(&dir).unwrap();
    assert_eq!(recovered.generation(), 1);
    assert_eq!(recovered.stats().recovered_records, 0);
    assert_eq!(recovered.inner().meta("R").unwrap().tuple_count, 3);
    let _ = std::fs::remove_dir_all(&dir);
}
