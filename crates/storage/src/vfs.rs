//! The storage medium abstraction.
//!
//! Durability code never touches `std::fs` directly — it goes through the
//! tiny [`Vfs`] trait, with two implementations:
//!
//! * [`DirVfs`] — one real directory.  `write_atomic` is the classic
//!   crash-safe sequence *write temp file → fsync → rename over the target →
//!   fsync the directory*, and WAL appends keep one open handle per file.
//! * [`MemVfs`] — an in-memory directory with **fault injection**: a byte
//!   budget after which writes are torn mid-way, exactly like a crash that
//!   interrupts an append.  The differential crash-recovery suite uses it to
//!   simulate a power cut after every WAL-record prefix without ever
//!   touching a disk.
//!
//! A third implementation, [`LatencyVfs`], wraps any medium and charges a
//! fixed, deterministic latency per `sync` — the cost model the group-commit
//! benchmarks use to show fsync amortization without depending on the CI
//! host's disk.
//!
//! File *names* are flat (no subdirectories); the durability layer only ever
//! uses its own fixed names (`wal.log`, `snapshot-*.ws`).

use crate::error::{Result, StorageError};
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A flat, crash-aware file namespace.
///
/// `Send` is a supertrait so a `Box<dyn Vfs>` (and the [`crate::Durable`]
/// owning it) can move onto a dedicated committer thread — the shape the
/// concurrent service's group-commit batcher takes.
pub trait Vfs: Send {
    /// Read a whole file; `None` if it does not exist.
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>>;

    /// Atomically replace a file's contents: after this returns, a crash at
    /// any point leaves either the old bytes or the new bytes, never a mix.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Append bytes to a file (created if absent).  *Not* atomic — a crash
    /// can tear the tail, which is exactly what the WAL's per-record CRC and
    /// open-time truncation recover from.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Truncate a file to `len` bytes (used to drop a torn WAL tail).
    fn truncate(&mut self, name: &str, len: u64) -> Result<()>;

    /// Flush a file's bytes to stable storage (fsync).
    fn sync(&mut self, name: &str) -> Result<()>;

    /// Remove a file if it exists.
    fn remove(&mut self, name: &str) -> Result<()>;

    /// The names currently present, in sorted order.
    fn list(&mut self) -> Result<Vec<String>>;
}

// ---------------------------------------------------------------------------
// The real directory.
// ---------------------------------------------------------------------------

/// A [`Vfs`] over one filesystem directory (created on construction).
#[derive(Debug)]
pub struct DirVfs {
    dir: PathBuf,
    /// Cached append handles (the WAL appends record by record; reopening
    /// the file per record would double the syscall cost of every update).
    handles: HashMap<String, File>,
}

impl DirVfs {
    /// Open (creating if needed) a directory as a storage namespace.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StorageError::io(format!("create {}: {e}", dir.display())))?;
        Ok(DirVfs {
            dir,
            handles: HashMap::new(),
        })
    }

    /// The directory this namespace lives in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Fsync the directory itself so a rename survives a crash.
    fn sync_dir(&self) -> Result<()> {
        let dir = File::open(&self.dir)
            .map_err(|e| StorageError::io(format!("open dir {}: {e}", self.dir.display())))?;
        dir.sync_all()
            .map_err(|e| StorageError::io(format!("fsync dir {}: {e}", self.dir.display())))
    }
}

impl Vfs for DirVfs {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::io(format!("read {name}: {e}"))),
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.handles.remove(name);
        let tmp = self.path(&format!("{name}.tmp"));
        let target = self.path(name);
        let mut f = File::create(&tmp)
            .map_err(|e| StorageError::io(format!("create {}: {e}", tmp.display())))?;
        f.write_all(bytes)
            .map_err(|e| StorageError::io(format!("write {}: {e}", tmp.display())))?;
        f.sync_all()
            .map_err(|e| StorageError::io(format!("fsync {}: {e}", tmp.display())))?;
        drop(f);
        std::fs::rename(&tmp, &target).map_err(|e| {
            StorageError::io(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                target.display()
            ))
        })?;
        self.sync_dir()
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        if !self.handles.contains_key(name) {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name))
                .map_err(|e| StorageError::io(format!("open {name} for append: {e}")))?;
            self.handles.insert(name.to_string(), f);
        }
        let f = self.handles.get_mut(name).expect("just inserted");
        f.write_all(bytes)
            .map_err(|e| StorageError::io(format!("append {name}: {e}")))?;
        f.flush()
            .map_err(|e| StorageError::io(format!("flush {name}: {e}")))
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<()> {
        self.handles.remove(name);
        let f = OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| StorageError::io(format!("open {name} for truncate: {e}")))?;
        f.set_len(len)
            .map_err(|e| StorageError::io(format!("truncate {name}: {e}")))?;
        f.sync_all()
            .map_err(|e| StorageError::io(format!("fsync {name}: {e}")))
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        if let Some(f) = self.handles.get_mut(name) {
            return f
                .sync_all()
                .map_err(|e| StorageError::io(format!("fsync {name}: {e}")));
        }
        match File::open(self.path(name)) {
            Ok(f) => f
                .sync_all()
                .map_err(|e| StorageError::io(format!("fsync {name}: {e}"))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::io(format!("open {name} for fsync: {e}"))),
        }
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        self.handles.remove(name);
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::io(format!("remove {name}: {e}"))),
        }
    }

    fn list(&mut self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| StorageError::io(format!("list {}: {e}", self.dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io(format!("list entry: {e}")))?;
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                if let Ok(name) = entry.file_name().into_string() {
                    out.push(name);
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// The in-memory, fault-injecting directory.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemState {
    files: BTreeMap<String, Vec<u8>>,
    /// Remaining write budget in bytes; `None` = unlimited.  When a write
    /// exceeds it, the budget's worth of bytes land (a *torn* write) and the
    /// operation errors — the moral equivalent of the power going out.
    budget: Option<usize>,
    /// `sync` calls observed (the group-commit tests count fsyncs).
    syncs: u64,
}

/// An in-memory [`Vfs`].  Clones share the same underlying state, so a test
/// can keep a handle for inspection (or byte surgery) while a
/// [`crate::Durable`] owns another.
#[derive(Clone, Debug, Default)]
pub struct MemVfs {
    state: Arc<Mutex<MemState>>,
}

impl MemVfs {
    /// An empty in-memory namespace with no fault injection.
    pub fn new() -> Self {
        MemVfs::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().expect("MemVfs poisoned")
    }

    /// Arm the fault injector: after `bytes` more written bytes, writes tear.
    pub fn set_write_budget(&self, bytes: Option<usize>) {
        self.lock().budget = bytes;
    }

    /// A copy of a file's bytes, if present.
    pub fn bytes(&self, name: &str) -> Option<Vec<u8>> {
        self.lock().files.get(name).cloned()
    }

    /// Overwrite a file directly (test byte surgery; bypasses the budget).
    pub fn put(&self, name: &str, bytes: Vec<u8>) {
        self.lock().files.insert(name.to_string(), bytes);
    }

    /// How many `sync` calls this namespace has seen — the group-commit
    /// tests assert one fsync per batch rather than one per record.
    pub fn sync_count(&self) -> u64 {
        self.lock().syncs
    }

    /// A deep, *independent* copy of the current state (the "disk image" a
    /// simulated crash freezes): further writes through `self` do not affect
    /// the copy.
    pub fn fork(&self) -> MemVfs {
        let state = self.lock();
        MemVfs {
            state: Arc::new(Mutex::new(MemState {
                files: state.files.clone(),
                budget: None,
                syncs: 0,
            })),
        }
    }

    /// Charge `want` bytes against the budget; returns how many may land.
    fn charge(state: &mut MemState, want: usize) -> (usize, bool) {
        match state.budget {
            None => (want, true),
            Some(left) if left >= want => {
                state.budget = Some(left - want);
                (want, true)
            }
            Some(left) => {
                state.budget = Some(0);
                (left, false)
            }
        }
    }
}

impl Vfs for MemVfs {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.lock().files.get(name).cloned())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut state = self.lock();
        let (_, ok) = MemVfs::charge(&mut state, bytes.len());
        if !ok {
            // Atomic contract: a torn atomic write leaves the old contents.
            return Err(StorageError::io(format!(
                "injected fault during atomic write of {name}"
            )));
        }
        state.files.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut state = self.lock();
        let (landed, ok) = MemVfs::charge(&mut state, bytes.len());
        let file = state.files.entry(name.to_string()).or_default();
        file.extend_from_slice(&bytes[..landed]);
        if ok {
            Ok(())
        } else {
            Err(StorageError::io(format!(
                "injected fault tore an append to {name} after {landed} byte(s)"
            )))
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<()> {
        let mut state = self.lock();
        match state.files.get_mut(name) {
            Some(file) => {
                file.truncate(len as usize);
                Ok(())
            }
            None => Err(StorageError::io(format!("truncate missing file {name}"))),
        }
    }

    fn sync(&mut self, _name: &str) -> Result<()> {
        self.lock().syncs += 1;
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        self.lock().files.remove(name);
        Ok(())
    }

    fn list(&mut self) -> Result<Vec<String>> {
        Ok(self.lock().files.keys().cloned().collect())
    }
}

// ---------------------------------------------------------------------------
// The fixed-latency medium.
// ---------------------------------------------------------------------------

/// A [`Vfs`] wrapper that charges a fixed wall-clock latency per `sync`.
///
/// Real fsync cost varies wildly across CI hosts (tmpfs makes it nearly
/// free), so the group-commit throughput comparison runs on this wrapper
/// instead: `EveryRecord` pays the latency once per update, a batcher pays
/// it once per batch, and the ratio between the two is deterministic.
pub struct LatencyVfs {
    inner: Box<dyn Vfs>,
    sync_delay: Duration,
    syncs: Arc<AtomicU64>,
}

impl LatencyVfs {
    /// Wrap `inner`, stalling every `sync` for `sync_delay`.
    pub fn new(inner: Box<dyn Vfs>, sync_delay: Duration) -> Self {
        LatencyVfs {
            inner,
            sync_delay,
            syncs: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A shared handle onto the sync counter (usable after the wrapper moved
    /// into a `Box<dyn Vfs>` on another thread).
    pub fn sync_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.syncs)
    }
}

impl std::fmt::Debug for LatencyVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyVfs")
            .field("sync_delay", &self.sync_delay)
            .field("syncs", &self.syncs.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Vfs for LatencyVfs {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>> {
        self.inner.read(name)
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.inner.write_atomic(name, bytes)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.inner.append(name, bytes)
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<()> {
        self.inner.truncate(name, len)
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.sync_delay);
        self.inner.sync(name)
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        self.inner.remove(name)
    }

    fn list(&mut self) -> Result<Vec<String>> {
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_basic_operations() {
        let mut vfs = MemVfs::new();
        assert_eq!(vfs.read("a").unwrap(), None);
        vfs.write_atomic("a", b"hello").unwrap();
        vfs.append("a", b" world").unwrap();
        assert_eq!(vfs.read("a").unwrap().unwrap(), b"hello world");
        vfs.truncate("a", 5).unwrap();
        assert_eq!(vfs.read("a").unwrap().unwrap(), b"hello");
        assert!(vfs.truncate("missing", 0).is_err());
        vfs.append("b", b"x").unwrap();
        assert_eq!(vfs.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        vfs.remove("a").unwrap();
        assert_eq!(vfs.list().unwrap(), vec!["b".to_string()]);
        vfs.sync("b").unwrap();
    }

    #[test]
    fn mem_vfs_tears_appends_at_the_budget() {
        let mut vfs = MemVfs::new();
        vfs.append("wal", b"1234").unwrap();
        vfs.set_write_budget(Some(3));
        let err = vfs.append("wal", b"abcdef").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        // Exactly 3 of the 6 bytes landed: a torn tail.
        assert_eq!(vfs.bytes("wal").unwrap(), b"1234abc");
        // Atomic writes refuse to tear: old contents survive.
        assert!(vfs.write_atomic("wal", b"replacement").is_err());
        assert_eq!(vfs.bytes("wal").unwrap(), b"1234abc");
    }

    #[test]
    fn mem_vfs_fork_is_independent() {
        let mut vfs = MemVfs::new();
        vfs.append("wal", b"abc").unwrap();
        let frozen = vfs.fork();
        vfs.append("wal", b"def").unwrap();
        assert_eq!(frozen.bytes("wal").unwrap(), b"abc");
        assert_eq!(vfs.bytes("wal").unwrap(), b"abcdef");
    }

    #[test]
    fn mem_vfs_counts_syncs() {
        let mut vfs = MemVfs::new();
        assert_eq!(vfs.sync_count(), 0);
        vfs.append("wal", b"x").unwrap();
        vfs.sync("wal").unwrap();
        vfs.sync("wal").unwrap();
        assert_eq!(vfs.sync_count(), 2);
        // Clones share the counter along with the files.
        assert_eq!(vfs.clone().sync_count(), 2);
    }

    #[test]
    fn latency_vfs_delegates_and_counts_syncs() {
        let mem = MemVfs::new();
        let mut vfs = LatencyVfs::new(Box::new(mem.clone()), Duration::from_millis(0));
        let counter = vfs.sync_counter();
        vfs.append("wal", b"abc").unwrap();
        vfs.sync("wal").unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        // The write went through to the wrapped medium.
        assert_eq!(mem.bytes("wal").unwrap(), b"abc");
        assert_eq!(mem.sync_count(), 1);
    }

    // `DirVfs` is exercised against a real directory in
    // `tests/dir_backed.rs` (integration tests get `CARGO_TARGET_TMPDIR`).
}
